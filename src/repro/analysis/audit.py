"""The trace invariant auditor: build contexts, run the registry.

Entry points:

* :func:`audit_simulation` — audit a finished
  :class:`repro.sim.simulation.SimulationResult` whose run recorded a
  trace (``collect_trace=True`` or ``SimulationConfig(audit=True)``);
* :func:`audit_history` — audit a bare :class:`repro.core.model.History`
  with the history-level invariants only;
* :func:`audit_context` — run selected invariants over a hand-built
  :class:`repro.analysis.invariants.AuditContext` (how the regression
  tests inject deliberately corrupted traces).

This module deliberately never imports :mod:`repro.sim` at runtime — the
simulation result, trace recorder and config are consumed duck-typed — so
the simulator can call the auditor without an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..core.model import History
from .diagnostics import AuditReport, Diagnostic
from .invariants import (
    HISTORY_INVARIANTS,
    INVARIANTS,
    AuditContext,
    invariant_ids,
)

if TYPE_CHECKING:
    from ..sim.simulation import SimulationResult

__all__ = [
    "AuditContext",
    "audit_context",
    "audit_history",
    "audit_simulation",
    "context_from_simulation",
]


def _select(invariants: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if invariants is None:
        return invariant_ids()
    unknown = [i for i in invariants if i not in INVARIANTS]
    if unknown:
        raise ValueError(
            f"unknown invariant id(s) {unknown!r}; registered: "
            f"{list(invariant_ids())}"
        )
    return tuple(invariants)


def audit_context(
    ctx: AuditContext,
    *,
    invariants: Optional[Sequence[str]] = None,
    config_hash: Optional[str] = None,
) -> AuditReport:
    """Run the selected (default: all) invariants over a context."""
    checked = _select(invariants)
    diagnostics: List[Diagnostic] = []
    for invariant_id in checked:
        diagnostics.extend(INVARIANTS[invariant_id](ctx))
    return AuditReport(
        checked=checked,
        diagnostics=tuple(diagnostics),
        config_hash=config_hash,
    )


def context_from_simulation(result: "SimulationResult") -> AuditContext:
    """Build an audit context from a finished simulation run.

    The run must have recorded a trace; enable it with
    ``SimulationConfig(audit=True)`` or ``run_simulation(...,
    collect_trace=True)``.
    """
    trace = result.trace
    if trace is None:
        raise ValueError(
            "simulation recorded no trace; run with SimulationConfig(audit=True) "
            "or run_simulation(..., collect_trace=True)"
        )
    config = result.config
    database = result.server.database
    return AuditContext(
        num_objects=database.num_objects,
        arithmetic=config.arithmetic(),
        broadcasts=tuple(getattr(trace, "cycles", ())),
        commit_log=database.commit_log,
        client_commits=tuple(trace.client_commits),
        history=trace.build_history(database),
        cache_enabled=config.cache_currency_bound is not None,
    )


def audit_simulation(
    result: "SimulationResult",
    *,
    invariants: Optional[Sequence[str]] = None,
) -> AuditReport:
    """Audit a finished simulation run (all invariants by default)."""
    fingerprint = getattr(result.config, "fingerprint", None)
    return audit_context(
        context_from_simulation(result),
        invariants=invariants,
        config_hash=fingerprint() if callable(fingerprint) else None,
    )


def audit_history(
    history: History,
    *,
    invariants: Optional[Sequence[str]] = None,
) -> AuditReport:
    """Audit a bare history with the history-level invariants.

    Accepts exactly the histories :func:`repro.core.certify.certify_history`
    certifies: the soundness invariant runs APPROX and replays every
    extracted certificate.
    """
    ctx = AuditContext(history=history)
    return audit_context(
        ctx,
        invariants=HISTORY_INVARIANTS if invariants is None else invariants,
    )
