"""Static analysis: protocol invariant auditing and a repo-specific lint.

Two independent layers share this package:

* the **trace invariant auditor** (:mod:`repro.analysis.audit`,
  :mod:`repro.analysis.invariants`) — a registry of machine-checkable
  invariants run over recorded simulation traces and
  :class:`repro.core.model.History` objects.  Deciding update consistency
  is NP-complete and the shipped protocols are only *sufficient* tests, so
  every audited run is independently cross-examined: control-matrix
  monotonicity, matrix/broadcast-slot agreement, client-validation
  soundness (APPROX + replay certificates), read/delta coherence, and
  serialization-graph acyclicity, each violation reported as a structured
  :class:`repro.analysis.diagnostics.Diagnostic` with a minimized witness;

* the **custom lint pass** (:mod:`repro.analysis.lint`,
  :mod:`repro.analysis.rules`) — AST rules enforcing the repo's own
  correctness conventions (determinism, encapsulation of protocol state,
  no float equality, mandatory ``__all__``), runnable as
  ``python -m repro.analysis.lint``.

Neither layer imports :mod:`repro.sim` at runtime, so the simulator can
invoke the auditor without an import cycle.
"""

from .audit import (
    AuditContext,
    audit_context,
    audit_history,
    audit_simulation,
    context_from_simulation,
)
from .diagnostics import AuditReport, Diagnostic
from .invariants import INVARIANTS, invariant, invariant_ids

__all__ = [
    "AuditContext",
    "AuditReport",
    "Diagnostic",
    "INVARIANTS",
    "audit_context",
    "audit_history",
    "audit_simulation",
    "context_from_simulation",
    "invariant",
    "invariant_ids",
]
