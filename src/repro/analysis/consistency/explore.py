"""Small-scope schedule model checker for the broadcast protocols.

Exhaustively enumerates every interleaving of a tiny broadcast
configuration — a handful of update transactions assigned to commit
cycles, and read-only clients whose per-read broadcast cycles range over
all non-decreasing sequences — then *executes* each schedule against the
real protocol validators (:mod:`repro.core.validators`) driven by the real
incremental control matrix (:mod:`repro.core.control_matrix`), rebuilds
the induced history, and certifies it with the consistency checkers.

Two pacing modes per scope:

* ``paced`` — consecutive reads at most one cycle apart: the fault-free
  regime where a client catches every broadcast;
* ``faulty`` — unbounded gaps between reads: a client that dozed through
  cycles, lost broadcasts, or waited out a server crash sees exactly such
  a schedule, so doze/loss faults are subsumed by free gap choice.

What is asserted, per the paper's actual claims:

* **every protocol** (F-Matrix, R-Matrix, Datacycle): each committed
  reader's *perceived* sub-history — its LIVE set plus itself — certifies
  serializable (*update consistency*), and the whole reconstructed
  history passes the existing Theorem 3 criterion
  (:func:`repro.core.legality.legality_report`), tying the new checkers
  to the old machinery on every enumerated execution;
* **Datacycle only**: the full committed history (all readers at once)
  certifies serializable — its strict read condition pins every reader to
  a single snapshot point, giving global serializability.

F-Matrix and R-Matrix deliberately do **not** promise global
serializability — nor even serializability of ``H_update ∪ {reader}``
over *all* updates: a reader may perceive an affects-closed subset of
the updates that is not a prefix of the commit order (e.g. see a later
blind write while missing an earlier independent one).  The exploration
counts those executions (``global_non_serializable``) instead of failing
on them — their existence at the smallest scope is itself a reproduction
of the paper's "update consistency is weaker than serializability"
remark.

Run as a module for the CI smoke target::

    python -m repro.analysis.consistency.explore --scope smallest --output out.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...core.control_matrix import ControlMatrix
from ...core.legality import legality_report
from ...core.model import History, Operation, T0
from ...core.readsfrom import live_set
from ...core.model import commit as commit_op
from ...core.model import read as read_op
from ...core.model import write as write_op
from ...core.validators import ControlSnapshot, make_validator
from .checkers import Verdict, check_serializability
from .histories import TransactionalHistory

__all__ = [
    "EXPLORED_PROTOCOLS",
    "SCOPES",
    "ExplorationReport",
    "ProtocolStats",
    "Scope",
    "ScopeResult",
    "UpdateTemplate",
    "Violation",
    "explore_scope",
    "main",
]

EXPLORED_PROTOCOLS: Tuple[str, ...] = ("f-matrix", "r-matrix", "datacycle")


@dataclass(frozen=True)
class UpdateTemplate:
    """One update transaction shape: objects read, objects written."""

    reads: Tuple[int, ...]
    writes: Tuple[int, ...]


@dataclass(frozen=True)
class Scope:
    """One exhaustively explored configuration."""

    name: str
    num_objects: int
    num_cycles: int
    updates: Tuple[UpdateTemplate, ...]
    readers: Tuple[Tuple[int, ...], ...]

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.readers)} readers, {self.num_objects} "
            f"objects, {len(self.updates)} updates, {self.num_cycles} cycles"
        )


#: the two standard scopes; ``smallest`` is the CI smoke configuration
SCOPES: Dict[str, Scope] = {
    "smallest": Scope(
        name="smallest",
        num_objects=2,
        num_cycles=3,
        updates=(
            UpdateTemplate(reads=(), writes=(0,)),
            UpdateTemplate(reads=(0,), writes=(1,)),
        ),
        readers=((0, 1), (1, 0)),
    ),
    "small": Scope(
        name="small",
        num_objects=3,
        num_cycles=3,
        updates=(
            UpdateTemplate(reads=(), writes=(0, 1)),
            UpdateTemplate(reads=(0,), writes=(2,)),
            UpdateTemplate(reads=(2,), writes=(0,)),
        ),
        readers=((0, 1), (1, 2), (2, 0)),
    ),
}


@dataclass(frozen=True)
class Violation:
    """One schedule whose execution failed certification."""

    protocol: str
    mode: str
    schedule: str
    scope: str
    verdict: Verdict

    def format(self) -> str:
        lines = [f"[{self.protocol}/{self.mode}] {self.scope}: {self.schedule}"]
        if self.verdict.witness is not None:
            lines.append("  " + self.verdict.witness.format().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "mode": self.mode,
            "schedule": self.schedule,
            "scope": self.scope,
            "verdict": self.verdict.to_dict(),
        }


@dataclass(frozen=True)
class ProtocolStats:
    """Aggregates for one (protocol, mode) sweep over a scope."""

    protocol: str
    mode: str
    executions: int
    committed_readers: int
    aborted_readers: int
    global_serializable: int
    global_non_serializable: int
    violations: Tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "mode": self.mode,
            "executions": self.executions,
            "committed_readers": self.committed_readers,
            "aborted_readers": self.aborted_readers,
            "global_serializable": self.global_serializable,
            "global_non_serializable": self.global_non_serializable,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass(frozen=True)
class ScopeResult:
    scope: Scope
    stats: Tuple[ProtocolStats, ...]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.stats)


@dataclass(frozen=True)
class ExplorationReport:
    results: Tuple[ScopeResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def format(self) -> str:
        lines: List[str] = []
        for result in self.results:
            lines.append(result.scope.describe())
            for s in result.stats:
                status = "OK" if s.ok else f"FAIL ({len(s.violations)} violations)"
                lines.append(
                    f"  {s.protocol:>9s}/{s.mode:<6s} {s.executions:5d} schedules  "
                    f"readers {s.committed_readers} committed / "
                    f"{s.aborted_readers} aborted  "
                    f"global-SER {s.global_serializable}/"
                    f"{s.global_serializable + s.global_non_serializable}  {status}"
                )
                for violation in s.violations:
                    lines.append("    " + violation.format().replace("\n", "\n    "))
        lines.append(
            "RESULT: " + ("all executions certify" if self.ok else "VIOLATIONS FOUND")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "results": [
                {
                    "scope": r.scope.describe(),
                    "stats": [s.to_dict() for s in r.stats],
                }
                for r in self.results
            ],
        }


# ----------------------------------------------------------------------
# schedule enumeration
# ----------------------------------------------------------------------
def _read_schedules(
    num_reads: int, num_cycles: int, max_gap: Optional[int]
) -> List[Tuple[int, ...]]:
    """All non-decreasing read-cycle sequences, optionally gap-bounded."""
    out: List[Tuple[int, ...]] = []
    for combo in itertools.combinations_with_replacement(
        range(1, num_cycles + 1), num_reads
    ):
        if max_gap is not None and any(
            b - a > max_gap for a, b in zip(combo, combo[1:])
        ):
            continue
        out.append(combo)
    return out


def _commit_assignments(scope: Scope) -> List[Tuple[int, ...]]:
    """Every assignment of a commit cycle to each update template."""
    return list(
        itertools.product(range(1, scope.num_cycles + 1), repeat=len(scope.updates))
    )


@dataclass(frozen=True)
class _Prepared:
    """Everything about one commit assignment the readers don't change."""

    assignment: Tuple[int, ...]
    commit_order: Tuple[int, ...]  # template indices, serialization order
    snapshots: Tuple[ControlSnapshot, ...]  # index c-1 = beginning of cycle c
    value_writer: Tuple[Tuple[str, ...], ...]  # [cycle-1][obj] -> writer tid


def _prepare(scope: Scope, assignment: Tuple[int, ...]) -> _Prepared:
    """Run the server side once: matrix snapshots + version provenance.

    A template assigned commit cycle ``c`` commits *during* cycle ``c``,
    so it is visible to snapshots of cycles > ``c`` (the broadcast image
    is frozen at the beginning of each cycle) — matching the simulator's
    freeze-then-broadcast ordering.
    """
    commit_order = tuple(
        sorted(range(len(assignment)), key=lambda idx: (assignment[idx], idx))
    )
    matrix = ControlMatrix(scope.num_objects)
    current: List[str] = [T0] * scope.num_objects
    snapshots: List[ControlSnapshot] = []
    value_writer: List[Tuple[str, ...]] = []
    applied = 0
    order = list(commit_order)
    for cycle in range(1, scope.num_cycles + 1):
        while applied < len(order) and assignment[order[applied]] < cycle:
            idx = order[applied]
            template = scope.updates[idx]
            matrix.apply_commit(
                assignment[idx], template.reads, template.writes
            )
            for obj in template.writes:
                current[obj] = f"u{idx}"
            applied += 1
        frozen = matrix.snapshot()
        snapshots.append(
            ControlSnapshot(
                cycle=cycle,
                matrix=frozen,
                vector=frozen.max(axis=1),
            )
        )
        value_writer.append(tuple(current))
    return _Prepared(assignment, commit_order, tuple(snapshots), tuple(value_writer))


@dataclass(frozen=True)
class _ReaderOutcome:
    committed: bool
    reads: Tuple[Tuple[int, int, str], ...]  # (obj, cycle, writer)


def _run_reader(
    protocol: str,
    objects: Sequence[int],
    cycles: Sequence[int],
    prepared: _Prepared,
) -> _ReaderOutcome:
    """Execute one read-only transaction against the real validator."""
    validator = make_validator(protocol)
    validator.begin()
    reads: List[Tuple[int, int, str]] = []
    for obj, cycle in zip(objects, cycles):
        snapshot = prepared.snapshots[cycle - 1]
        if not validator.validate_read(obj, snapshot):
            return _ReaderOutcome(False, tuple(reads))
        reads.append((obj, cycle, prepared.value_writer[cycle - 1][obj]))
    return _ReaderOutcome(True, tuple(reads))


def _build_history(
    scope: Scope,
    prepared: _Prepared,
    outcomes: Sequence[Tuple[str, _ReaderOutcome]],
) -> History:
    """The induced history: update blocks in commit order, reads by provenance."""
    blocks: List[List[Operation]] = [[]]
    block_of: Dict[str, int] = {T0: 0}
    for idx in prepared.commit_order:
        template = scope.updates[idx]
        tid = f"u{idx}"
        ops: List[Operation] = []
        for obj in template.reads:
            ops.append(read_op(tid, str(obj)))
        for obj in template.writes:
            ops.append(write_op(tid, str(obj)))
        ops.append(commit_op(tid, cycle=prepared.assignment[idx]))
        blocks.append(ops)
        block_of[tid] = len(blocks) - 1

    inserts: Dict[int, List[Operation]] = {}
    tail: List[Operation] = []
    for tid, outcome in outcomes:
        if not outcome.committed:
            continue
        for obj, cycle, writer in outcome.reads:
            inserts.setdefault(block_of[writer], []).append(
                read_op(tid, str(obj), cycle=cycle)
            )
        tail.append(commit_op(tid))

    ops_out: List[Operation] = []
    for index, block in enumerate(blocks):
        ops_out.extend(block)
        ops_out.extend(inserts.get(index, ()))
    ops_out.extend(tail)
    return History(ops_out, strict=False)


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def _sweep(
    scope: Scope, protocol: str, mode: str, max_gap: Optional[int]
) -> ProtocolStats:
    executions = 0
    committed_readers = 0
    aborted_readers = 0
    global_ser = 0
    global_non_ser = 0
    violations: List[Violation] = []
    per_reader_schedules = [
        _read_schedules(len(reads), scope.num_cycles, max_gap)
        for reads in scope.readers
    ]
    reader_cert_cache: Dict[Tuple[Tuple[int, ...], int, Tuple[Tuple[int, int, str], ...]], bool] = {}

    for assignment in _commit_assignments(scope):
        prepared = _prepare(scope, assignment)
        for combo in itertools.product(*per_reader_schedules):
            executions += 1
            outcomes: List[Tuple[str, _ReaderOutcome]] = []
            for ridx, cycles in enumerate(combo):
                outcome = _run_reader(
                    protocol, scope.readers[ridx], cycles, prepared
                )
                outcomes.append((f"r{ridx}", outcome))
                if outcome.committed:
                    committed_readers += 1
                else:
                    aborted_readers += 1

            history = _build_history(scope, prepared, outcomes)
            committed = [tid for tid, oc in outcomes if oc.committed]
            updates = [f"u{idx}" for idx in prepared.commit_order]
            schedule_desc = (
                f"commits={assignment} reads="
                + ";".join(
                    f"{tid}@{cycles}" for (tid, _oc), cycles in zip(outcomes, combo)
                )
            )

            # update consistency: each committed reader's perceived
            # sub-history (LIVE set ∪ itself) must certify serializable
            for ridx, (tid, outcome) in enumerate(outcomes):
                if not outcome.committed:
                    continue
                key = (assignment, ridx, outcome.reads)
                cached = reader_cert_cache.get(key)
                if cached is None:
                    reader_scope = set(live_set(history, tid)) | {tid}
                    verdict = check_serializability(
                        TransactionalHistory(history.projection(reader_scope))
                    )
                    reader_cert_cache[key] = verdict.ok
                    if not verdict.ok:
                        violations.append(
                            Violation(
                                protocol, mode, schedule_desc, scope.name, verdict
                            )
                        )
                elif not cached:
                    pass  # violation already recorded for this provenance

            # cross-engine check: the Theorem 3 criterion (update VSR +
            # per-reader polygraph) must accept every execution
            legality = legality_report(history)
            if not legality.legal:
                violations.append(
                    Violation(
                        protocol,
                        mode,
                        schedule_desc + " [legality_report rejected: "
                        f"update_vsr={legality.update_view_serializable} "
                        f"rejected_readers={legality.rejected_readers}]",
                        scope.name,
                        Verdict("serializability", False),
                    )
                )

            # global serializability: promised by Datacycle, counted elsewhere
            global_verdict = check_serializability(
                TransactionalHistory(history.projection(updates + committed))
            )
            if global_verdict.ok:
                global_ser += 1
            else:
                global_non_ser += 1
                if protocol == "datacycle":
                    violations.append(
                        Violation(
                            protocol, mode, schedule_desc, scope.name, global_verdict
                        )
                    )
    return ProtocolStats(
        protocol,
        mode,
        executions,
        committed_readers,
        aborted_readers,
        global_ser,
        global_non_ser,
        tuple(violations[:20]),
    )


def explore_scope(
    scope: Scope, protocols: Sequence[str] = EXPLORED_PROTOCOLS
) -> ScopeResult:
    """Exhaustively execute and certify one scope, paced and faulty."""
    stats: List[ProtocolStats] = []
    for protocol in protocols:
        stats.append(_sweep(scope, protocol, "paced", max_gap=1))
        stats.append(_sweep(scope, protocol, "faulty", max_gap=None))
    return ScopeResult(scope, tuple(stats))


def explore(scope_names: Sequence[str]) -> ExplorationReport:
    results = []
    for name in scope_names:
        try:
            scope = SCOPES[name]
        except KeyError:
            raise ValueError(
                f"unknown scope {name!r}; choose from {sorted(SCOPES)}"
            ) from None
        results.append(explore_scope(scope))
    return ExplorationReport(tuple(results))


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.consistency.explore",
        description="Exhaustive small-scope certification of the broadcast protocols.",
    )
    parser.add_argument(
        "--scope",
        action="append",
        choices=sorted(SCOPES) + ["all"],
        help="scope(s) to explore (default: smallest); repeatable",
    )
    parser.add_argument(
        "--output", type=str, default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    names = args.scope or ["smallest"]
    if "all" in names:
        names = sorted(SCOPES)
    report = explore(names)
    print(report.format())
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.output}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    sys.exit(main())
