"""Offline transactional-consistency certification (Biswas–Enea style).

Submodules:

* :mod:`~repro.analysis.consistency.histories` — ``⟨T, so, wr⟩`` adapter
  over :class:`repro.core.model.History`, with modulo-aware commit-cycle
  decoding and session derivation.
* :mod:`~repro.analysis.consistency.checkers` — per-level checkers
  (read committed, read atomic, causal, prefix, snapshot isolation,
  serializability) with anomaly witnesses.
* :mod:`~repro.analysis.consistency.certifier` — verdict reports, plus
  the paper's update-consistency certification for broadcast runs.
* :mod:`~repro.analysis.consistency.explore` — small-scope schedule model
  checker: exhaustively enumerates tiny broadcast interleavings and
  certifies every Datacycle/R-Matrix/F-Matrix execution.
"""

from .certifier import (
    ConsistencyReport,
    UpdateConsistencyReport,
    certify,
    certify_update_consistency,
)
from .checkers import LEVELS, AnomalyWitness, Verdict, WitnessEdge, check_level
from .histories import TransactionalHistory, decode_commit_cycles, derive_sessions

__all__ = [
    "LEVELS",
    "AnomalyWitness",
    "ConsistencyReport",
    "TransactionalHistory",
    "UpdateConsistencyReport",
    "Verdict",
    "WitnessEdge",
    "certify",
    "certify_update_consistency",
    "check_level",
    "decode_commit_cycles",
    "derive_sessions",
]
