"""Histories in the Biswas–Enea abstract format: ``⟨T, so, wr⟩``.

"On the Complexity of Checking Transactional Consistency" (PAPERS.md)
formalises a history as a set of transactions ``T``, a union-of-total-orders
*session order* ``so``, and a *write-read* relation ``wr_x(t1, t2)``
("``t2`` reads ``x`` from ``t1``").  Isolation levels are then properties of
the commit orders ``co ⊇ so ∪ wr`` that exist for the history.

:class:`TransactionalHistory` adapts this repository's positional
:class:`~repro.core.model.History` to that format: the wr relation comes
from the positional reads-from (committed-value semantics), and sessions
are supplied explicitly — derived from transaction-id prefixes and
broadcast cycle numbers for simulator traces, or empty for bare histories.

Commit-cycle annotations may arrive *encoded* under the modulo timestamp
window (:class:`~repro.core.cycles.ModuloCycles`); :func:`decode_commit_cycles`
recovers absolute cycles by anchor-walking the residues, so session orders
derived from cycle numbers stay correct across wrap-around.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ...core.cycles import CycleArithmetic
from ...core.model import History, T0, Transaction

__all__ = [
    "TransactionalHistory",
    "WRPair",
    "decode_commit_cycles",
    "derive_sessions",
]

#: One write-read fact: (writer, reader, object).  ``writer`` may be ``t0``.
WRPair = Tuple[str, str, str]

#: Transaction ids of the form ``cl<N>.<tid>`` belong to client ``cl<N>``.
_CLIENT_TID = re.compile(r"^(cl\d+)\.")


class TransactionalHistory:
    """A committed history plus its session order — ``⟨T, so, wr⟩``.

    ``sessions`` is a sequence of transaction-id sequences; each sequence
    contributes the total order of its members to ``so``.  A transaction
    may appear in several sessions (``so`` is a union of orders), but at
    most once per session.  Ids that are absent from the committed
    projection (aborted or unknown) are dropped, which is what lets trace
    adapters pass raw per-client records through unfiltered.
    """

    def __init__(self, history: History, sessions: Sequence[Sequence[str]] = ()):
        self.history = history.committed_projection()
        committed = set(self.history.transactions)
        cleaned: List[Tuple[str, ...]] = []
        for session in sessions:
            kept: List[str] = []
            seen: Set[str] = set()
            for tid in session:
                if tid not in committed:
                    continue
                if tid in seen:
                    raise ValueError(f"transaction {tid!r} repeats within a session")
                seen.add(tid)
                kept.append(tid)
            if len(kept) > 1:
                cleaned.append(tuple(kept))
        self.sessions: Tuple[Tuple[str, ...], ...] = tuple(cleaned)

    # ------------------------------------------------------------------
    @property
    def tids(self) -> Tuple[str, ...]:
        """Committed transaction ids, in order of first appearance."""
        return self.history.transaction_ids

    def transaction(self, tid: str) -> Transaction:
        return self.history.transaction(tid)

    # ------------------------------------------------------------------
    def wr_pairs(self) -> Tuple[WRPair, ...]:
        """All ``wr_x(t1, t2)`` facts; ``t1`` is ``t0`` for initial reads."""
        return tuple(
            (writer, reader, obj)
            for (reader, obj), writer in sorted(self.history.reads_from.items())
        )

    def so_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """Every ordered pair ``(t1, t2)`` with ``t1`` before ``t2`` in a session."""
        pairs: Set[Tuple[str, str]] = set()
        for session in self.sessions:
            for i, earlier in enumerate(session):
                for later in session[i + 1 :]:
                    if earlier != later:
                        pairs.add((earlier, later))
        return frozenset(pairs)

    def so_edges(self) -> Tuple[Tuple[str, str], ...]:
        """Consecutive-in-session pairs (the transitive reduction of so)."""
        edges: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        for session in self.sessions:
            for earlier, later in zip(session, session[1:]):
                if (earlier, later) not in seen:
                    seen.add((earlier, later))
                    edges.append((earlier, later))
        return tuple(edges)

    def writers_of(self) -> Dict[str, Tuple[str, ...]]:
        """Object -> committed transactions writing it (``t0`` excluded)."""
        writers: Dict[str, List[str]] = {}
        seen: Set[Tuple[str, str]] = set()
        for op in self.history:
            if op.is_write and (op.obj or "", op.txn) not in seen:
                seen.add((op.obj or "", op.txn))
                writers.setdefault(op.obj or "", []).append(op.txn)
        return {obj: tuple(tids) for obj, tids in writers.items()}

    def read_events(self, tid: str) -> Tuple[Tuple[str, str], ...]:
        """``(obj, writer)`` for ``tid``'s reads, in program order."""
        rf = self.history.reads_from
        return tuple(
            (op.obj or "", rf[(tid, op.obj or "")])
            for op in self.history.operations_of(tid)
            if op.is_read
        )

    # ------------------------------------------------------------------
    def restrict(self, tids: Sequence[str]) -> "TransactionalHistory":
        """The sub-history over ``tids``, sessions projected accordingly."""
        keep = set(tids)
        projected = [
            [tid for tid in session if tid in keep] for session in self.sessions
        ]
        return TransactionalHistory(self.history.projection(keep), projected)

    def __repr__(self) -> str:
        return (
            f"TransactionalHistory(|T|={len(self.tids)}, "
            f"sessions={len(self.sessions)})"
        )


def decode_commit_cycles(
    history: History, arithmetic: Optional[CycleArithmetic] = None
) -> Dict[str, int]:
    """Absolute commit cycle per committed transaction, modulo-aware.

    Commit annotations written by the simulator are absolute, but histories
    recorded off the wire carry residues modulo the timestamp window.  With
    a windowed ``arithmetic``, residues are anchor-walked in history order:
    commits are monotone non-decreasing in absolute cycles and consecutive
    commits lie within one window of each other (the paper's ``max_cycles``
    bound), so each residue decodes to the smallest absolute cycle ≥ the
    previous commit with that residue.  Without a window (``None`` or
    :class:`~repro.core.cycles.UnboundedCycles`) annotations pass through
    unchanged.  Transactions without a commit-cycle annotation are omitted.
    """
    window = getattr(arithmetic, "window", None)
    cycles: Dict[str, int] = {}
    previous = 0
    for op in history:
        if not op.is_commit or op.cycle is None:
            continue
        if window is None:
            absolute = op.cycle
        else:
            absolute = previous + ((op.cycle - previous) % window)
        cycles[op.txn] = absolute
        previous = absolute
    return cycles


def derive_sessions(
    history: History, arithmetic: Optional[CycleArithmetic] = None
) -> Tuple[Tuple[str, ...], ...]:
    """Per-client sessions inferred from tid prefixes and cycle numbers.

    Simulator transaction ids of the form ``cl<N>.<tid>`` group by client;
    within a client, program order is recovered from decoded commit cycles
    (ties broken by history position — a client runs its transactions
    sequentially, so commit cycles are non-decreasing along its session).
    Transactions without a client prefix (server-resident ones) form no
    session here: the broadcast protocols do not promise session guarantees
    across the server's interleaved commit order, only per client.
    """
    cycles = decode_commit_cycles(history, arithmetic)
    position = {tid: idx for idx, tid in enumerate(history.transaction_ids)}
    groups: Dict[str, List[str]] = {}
    for tid in history.transaction_ids:
        match = _CLIENT_TID.match(tid)
        if match is not None:
            groups.setdefault(match.group(1), []).append(tid)
    sessions: List[Tuple[str, ...]] = []
    for client in sorted(groups):
        members = groups[client]
        members.sort(key=lambda tid: (cycles.get(tid, 0), position[tid]))
        if len(members) > 1:
            sessions.append(tuple(members))
    return tuple(sessions)
