"""The offline consistency certifier: verdicts-with-witnesses per level.

Two entry points:

* :func:`certify` — check a history (bare or sessioned) against one or
  more isolation levels, producing a :class:`ConsistencyReport` whose FAIL
  verdicts render through :mod:`repro.analysis.diagnostics`.
* :func:`certify_update_consistency` — the paper's actual correctness
  claim for the broadcast protocols (Sec. 4, "update consistency"): the
  committed update sub-history is serializable, and so is its extension by
  each committed read-only transaction *individually*.  Global
  serializability of the full history is strictly stronger and is **not**
  promised by F-Matrix/R-Matrix (two readers may observe incomparable
  serialization orders); Datacycle's single-snapshot-point semantics do
  promise it, which the small-scope model checker
  (:mod:`repro.analysis.consistency.explore`) verifies exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...core.model import History
from ...core.readsfrom import live_set
from ..diagnostics import Diagnostic
from .checkers import LEVELS, Verdict, check_level, check_serializability
from .histories import TransactionalHistory

__all__ = [
    "ConsistencyReport",
    "UpdateConsistencyReport",
    "certify",
    "certify_update_consistency",
    "verdict_diagnostic",
]

HistoryLike = Union[History, TransactionalHistory]


def _as_transactional(history: HistoryLike) -> TransactionalHistory:
    if isinstance(history, TransactionalHistory):
        return history
    return TransactionalHistory(history)


def verdict_diagnostic(verdict: Verdict) -> Optional[Diagnostic]:
    """Render a FAIL verdict as an auditor :class:`Diagnostic`."""
    if verdict.ok or verdict.witness is None:
        return None
    witness = verdict.witness
    return Diagnostic(
        invariant=f"consistency/{verdict.level}",
        message=witness.description,
        transactions=witness.transactions,
        witness="\n".join(
            ([" -> ".join(witness.cycle)] if witness.cycle else [])
            + [edge.format() for edge in witness.edges]
        )
        or None,
    )


@dataclass(frozen=True)
class ConsistencyReport:
    """Verdicts for one history across the requested levels."""

    verdicts: Tuple[Verdict, ...]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def verdict(self, level: str) -> Verdict:
        for v in self.verdicts:
            if v.level == level:
                return v
        raise KeyError(level)

    @property
    def levels(self) -> Tuple[str, ...]:
        return tuple(v.level for v in self.verdicts)

    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        out: List[Diagnostic] = []
        for v in self.verdicts:
            diag = verdict_diagnostic(v)
            if diag is not None:
                out.append(diag)
        return tuple(out)

    def format(self) -> str:
        lines: List[str] = []
        for v in self.verdicts:
            lines.append(f"{v.level}: {'PASS' if v.ok else 'FAIL'}")
            if v.witness is not None:
                lines.append("  " + v.witness.format().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {"ok": self.ok, "verdicts": [v.to_dict() for v in self.verdicts]}


def certify(
    history: HistoryLike, levels: Sequence[str] = LEVELS
) -> ConsistencyReport:
    """Check ``history`` against each requested isolation level.

    ``levels`` defaults to all six supported levels, weakest to strongest;
    unknown level names raise :class:`ValueError` before any checker runs.
    """
    th = _as_transactional(history)
    for level in levels:
        if level not in LEVELS:
            raise ValueError(
                f"unknown consistency level {level!r}; expected one of {LEVELS}"
            )
    return ConsistencyReport(tuple(check_level(th, level) for level in levels))


# ----------------------------------------------------------------------
# the paper's correctness claim for broadcast runs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdateConsistencyReport:
    """Update consistency of a broadcast run, checked reader by reader.

    ``update_verdict`` certifies the committed update sub-history
    serializable; ``reader_verdicts`` certifies, per committed read-only
    transaction ``t``, the projection onto ``LIVE_H(t) ∪ {t}`` — the
    updates whose effects ``t`` actually perceives — serializable.  The
    LIVE-set scope and the absence of session order are both deliberate:
    update consistency promises each reader a state produced by *some*
    affects-closed subset of the updates, not a prefix of the commit
    order, which is exactly the guarantee Theorem 3 formalises (and the
    small-scope model checker demonstrates that F-Matrix accepts
    executions where ``H_update ∪ {t}`` over *all* updates is not
    serializable).
    """

    update_verdict: Verdict
    reader_verdicts: Tuple[Tuple[str, Verdict], ...]

    @property
    def ok(self) -> bool:
        return self.update_verdict.ok and all(
            v.ok for _tid, v in self.reader_verdicts
        )

    def failures(self) -> Tuple[Tuple[str, Verdict], ...]:
        bad = []
        if not self.update_verdict.ok:
            bad.append(("<updates>", self.update_verdict))
        bad.extend((tid, v) for tid, v in self.reader_verdicts if not v.ok)
        return tuple(bad)

    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        out: List[Diagnostic] = []
        for scope, verdict in self.failures():
            diag = verdict_diagnostic(verdict)
            if diag is not None:
                out.append(
                    Diagnostic(
                        invariant="consistency/update-serializable",
                        message=f"scope {scope}: {diag.message}",
                        transactions=diag.transactions,
                        witness=diag.witness,
                    )
                )
        return tuple(out)

    def format(self) -> str:
        lines = [
            "updates: " + ("PASS" if self.update_verdict.ok else "FAIL"),
            f"readers: {len(self.reader_verdicts)} checked, "
            f"{sum(0 if v.ok else 1 for _t, v in self.reader_verdicts)} failed",
        ]
        for scope, verdict in self.failures():
            if verdict.witness is not None:
                lines.append(f"  {scope}:")
                lines.append("    " + verdict.witness.format().replace("\n", "\n    "))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "updates": self.update_verdict.to_dict(),
            "readers": {tid: v.to_dict() for tid, v in self.reader_verdicts},
        }


def certify_update_consistency(history: HistoryLike) -> UpdateConsistencyReport:
    """Certify a broadcast run update-consistent (Sec. 4 / Theorem 3).

    The update sub-history must be serializable, and each committed
    read-only transaction must embed into *some* serialization of the
    updates it perceives (its LIVE set).
    """
    th = _as_transactional(history)
    committed = th.history
    updates = [
        tid for tid in committed.transaction_ids
        if committed.transaction(tid).is_update
    ]
    readers = [
        tid for tid in committed.transaction_ids
        if committed.transaction(tid).is_read_only
    ]
    update_verdict = check_serializability(
        TransactionalHistory(committed.projection(updates))
    )
    reader_verdicts: List[Tuple[str, Verdict]] = []
    for reader in readers:
        scope = set(live_set(committed, reader)) | {reader}
        sub = TransactionalHistory(committed.projection(scope))
        reader_verdicts.append((reader, check_serializability(sub)))
    return UpdateConsistencyReport(update_verdict, tuple(reader_verdicts))
