"""Isolation-level checkers over ``⟨T, so, wr⟩`` histories.

Biswas & Enea characterise each level by a single axiom scheme: a history
satisfies the level iff there is a strict total *commit order* ``co``
containing ``so ∪ wr`` such that

    for every ``wr_x(t1, t2)`` and every ``t3 ≠ t1`` writing ``x``:
        ``t3 R t2   ⟹   t3 →co t1``

where the relation ``R`` depends on the level:

========================  =====================================  ==========
level                     ``R``                                  complexity
========================  =====================================  ==========
read committed            "a po-earlier read of ``t2`` saw       polynomial
                          ``t3``" (event level)
read atomic               ``so ∪ wr`` (one step)                 polynomial
causal                    ``(so ∪ wr)+``                         polynomial
prefix                    ``co ∘ (so ∪ wr)*``                    NP-complete
snapshot isolation        ``co ∘ (so ∪ wr)*`` + write-conflict   NP-complete
                          ordering
serializability           ``co``                                 NP-complete
========================  =====================================  ==========

For the polynomial levels ``R`` does not mention ``co``, so the forced
``t3 → t1`` edges are fixed and the level holds iff ``so ∪ wr ∪ forced``
is acyclic.  Serializability is exactly polygraph acyclicity
(:mod:`repro.core.polygraph`); prefix consistency and snapshot isolation
reduce to polygraph acyclicity over *split* transactions — each ``t``
becomes ``t[r]`` (its reads) and ``t[w]`` (its writes) with ``t[r]``
before ``t[w]``, and SI additionally keeps conflicting writers from
overlapping.  Every FAIL verdict carries an :class:`AnomalyWitness` naming
the offending transactions, the edges, and the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...core.model import T0
from ...core.polygraph import Bipath, Polygraph, PolygraphRefutation
from ...core.serialgraph import Digraph
from .histories import TransactionalHistory

__all__ = [
    "LEVELS",
    "AnomalyWitness",
    "Verdict",
    "WitnessEdge",
    "check_level",
    "check_read_committed",
    "check_read_atomic",
    "check_causal",
    "check_prefix",
    "check_snapshot_isolation",
    "check_serializability",
]

#: Supported levels, weakest to strongest.
LEVELS: Tuple[str, ...] = (
    "read-committed",
    "read-atomic",
    "causal",
    "prefix",
    "snapshot-isolation",
    "serializability",
)

_READ_PART = "[r]"
_WRITE_PART = "[w]"


@dataclass(frozen=True)
class WitnessEdge:
    """One ordering fact in a witness: ``src`` must precede ``dst``.

    ``kind`` names the origin: ``so`` (session order), ``wr`` (reads-from),
    ``rw`` (anti-dependency: reader before overwriter), ``ww`` (forced
    writer ordering), ``init`` (``t0`` precedes everything), ``split``
    (a transaction's reads precede its own writes).
    """

    src: str
    dst: str
    kind: str
    obj: Optional[str] = None

    def format(self) -> str:
        label = self.kind if self.obj is None else f"{self.kind}[{self.obj}]"
        return f"{self.src} --{label}--> {self.dst}"


@dataclass(frozen=True)
class AnomalyWitness:
    """A minimal explanation of why a level does not hold."""

    level: str
    description: str
    cycle: Tuple[str, ...] = ()
    edges: Tuple[WitnessEdge, ...] = ()
    transactions: Tuple[str, ...] = ()

    def format(self) -> str:
        lines = [self.description]
        if self.cycle:
            lines.append("cycle: " + " -> ".join(self.cycle))
        for edge in self.edges:
            lines.append("  " + edge.format())
        if self.transactions:
            lines.append("transactions: " + ", ".join(self.transactions))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "description": self.description,
            "cycle": list(self.cycle),
            "edges": [
                {"src": e.src, "dst": e.dst, "kind": e.kind, "obj": e.obj}
                for e in self.edges
            ],
            "transactions": list(self.transactions),
        }


@dataclass(frozen=True)
class Verdict:
    """PASS/FAIL for one level, with a witness on FAIL.

    On PASS for the search-based levels, ``order`` carries a certifying
    commit order (a topological order of an acyclic compatible digraph).
    """

    level: str
    ok: bool
    witness: Optional[AnomalyWitness] = None
    order: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"level": self.level, "ok": self.ok}
        if self.witness is not None:
            payload["witness"] = self.witness.to_dict()
        if self.order:
            payload["order"] = list(self.order)
        return payload


# ----------------------------------------------------------------------
# shared scaffolding
# ----------------------------------------------------------------------
class _LabeledGraph:
    """A digraph whose edges remember the witness fact that created them."""

    def __init__(self, nodes: Sequence[str]):
        self.graph = Digraph(nodes)
        self.labels: Dict[Tuple[str, str], WitnessEdge] = {}

    def add(self, src: str, dst: str, kind: str, obj: Optional[str] = None) -> None:
        if src == dst:
            return
        self.graph.add_edge(src, dst)
        self.labels.setdefault((src, dst), WitnessEdge(src, dst, kind, obj))

    def cycle_witness(self, level: str, description: str) -> Optional[AnomalyWitness]:
        if self.graph.is_acyclic():
            return None
        cycle = tuple(self.graph.find_cycle() or ())
        edges = tuple(
            self.labels[(a, b)]
            for a, b in zip(cycle, cycle[1:])
            if (a, b) in self.labels
        )
        return AnomalyWitness(
            level,
            description,
            cycle=cycle,
            edges=edges,
            transactions=_distinct_txns(cycle),
        )


def _distinct_txns(nodes: Sequence[str]) -> Tuple[str, ...]:
    seen: Dict[str, None] = {}
    for node in nodes:
        seen.setdefault(_base_tid(node), None)
    return tuple(seen)


def _base_tid(node: str) -> str:
    """Collapse a split-transaction part back to its transaction id."""
    if node.endswith(_READ_PART) or node.endswith(_WRITE_PART):
        return node[: -len(_READ_PART)]
    return node


def _polynomial_graph(th: TransactionalHistory) -> _LabeledGraph:
    """Base graph for the polynomial levels: ``t0``-init ∪ so ∪ wr."""
    graph = _LabeledGraph([T0] + list(th.tids))
    for tid in th.tids:
        graph.add(T0, tid, "init")
    for earlier, later in th.so_edges():
        graph.add(earlier, later, "so")
    for writer, reader, obj in th.wr_pairs():
        if writer != T0:
            graph.add(writer, reader, "wr", obj)
    return graph


# ----------------------------------------------------------------------
# polynomial levels: read committed, read atomic, causal
# ----------------------------------------------------------------------
def check_read_committed(th: TransactionalHistory) -> Verdict:
    """Event-level RC: reads observe committed values, monotonically.

    The forced edge ``t3 → t1`` fires when some *program-order earlier*
    read of the same transaction observed ``t3``.
    """
    graph = _polynomial_graph(th)
    for reader in th.tids:
        prior: List[str] = []
        for obj, writer in th.read_events(reader):
            for t3 in prior:
                if t3 != writer and obj in th.transaction(t3).write_set:
                    graph.add(t3, writer, "ww", obj)
            if writer != T0 and writer not in prior:
                prior.append(writer)
    return _poly_verdict(
        "read-committed",
        graph,
        "read-committed violated: a transaction's reads cannot be "
        "explained by any single commit order",
    )


def check_read_atomic(th: TransactionalHistory) -> Verdict:
    """RA: the forced edge fires when ``t3 (so ∪ wr) t2``."""
    predecessors = _one_step_predecessors(th)
    graph = _polynomial_graph(th)
    _add_forced_edges(th, graph, predecessors)
    return _poly_verdict(
        "read-atomic",
        graph,
        "read-atomic violated: a transaction observes a fractured or "
        "stale set of writes",
    )


def check_causal(th: TransactionalHistory) -> Verdict:
    """CC: the forced edge fires when ``t3 (so ∪ wr)+ t2``."""
    predecessors = _transitive_predecessors(th)
    graph = _polynomial_graph(th)
    _add_forced_edges(th, graph, predecessors)
    return _poly_verdict(
        "causal",
        graph,
        "causal consistency violated: a read contradicts a causally "
        "earlier write",
    )


def _one_step_predecessors(th: TransactionalHistory) -> Dict[str, Set[str]]:
    preds: Dict[str, Set[str]] = {tid: set() for tid in th.tids}
    for earlier, later in th.so_pairs():
        preds[later].add(earlier)
    for writer, reader, _obj in th.wr_pairs():
        if writer != T0:
            preds[reader].add(writer)
    return preds


def _transitive_predecessors(th: TransactionalHistory) -> Dict[str, Set[str]]:
    one_step = _one_step_predecessors(th)
    graph = Digraph(th.tids)
    for tid, preds in one_step.items():
        for pred in preds:
            graph.add_edge(pred, tid)
    order = graph.topological_order()
    if order is None:
        # so ∪ wr itself is cyclic: the base-graph acyclicity check fails
        # regardless of forced edges, so one-step predecessors suffice.
        return one_step
    closed: Dict[str, Set[str]] = {}
    for tid in order:
        result = set(one_step.get(tid, ()))
        for pred in one_step.get(tid, ()):
            result |= closed.get(pred, set())
        closed[tid] = result
    return closed

def _add_forced_edges(
    th: TransactionalHistory,
    graph: _LabeledGraph,
    predecessors: Dict[str, Set[str]],
) -> None:
    writers = th.writers_of()
    for writer, reader, obj in th.wr_pairs():
        for t3 in writers.get(obj, ()):
            if t3 in (writer, reader):
                continue
            if t3 in predecessors[reader]:
                graph.add(t3, writer, "ww", obj)


def _poly_verdict(level: str, graph: _LabeledGraph, description: str) -> Verdict:
    witness = graph.cycle_witness(level, description)
    if witness is None:
        order = graph.graph.topological_order() or []
        return Verdict(level, True, order=tuple(t for t in order if t != T0))
    return Verdict(level, False, witness=witness)


# ----------------------------------------------------------------------
# search levels: serializability, prefix, snapshot isolation
# ----------------------------------------------------------------------
def _candidate_orders(th: TransactionalHistory) -> List[Tuple[str, ...]]:
    """Likely serialization witnesses, checked in linear time before search.

    Two guesses cover the histories this repository actually certifies:

    1. plain history-appearance order — exact for serial update
       sub-histories (the server's commit log *is* a serialization);
    2. appearance order of the writing transactions with each read-only
       transaction inserted at its snapshot point — the slot where every
       one of its reads observes the then-latest version.  Session order
       only raises a reader's slot floor, matching the monotone snapshots
       a broadcast client actually sees.

    Candidates are guesses, not answers: :meth:`Polygraph.satisfied_by`
    verifies them against every arc and bipath, and the checkers fall back
    to the exhaustive search when both fail.
    """
    tids = list(th.tids)
    candidates: List[Tuple[str, ...]] = [tuple(tids)]

    updates = [t for t in tids if th.transaction(t).write_set]
    readers = [t for t in tids if not th.transaction(t).write_set]
    if not readers or not updates:
        return candidates
    pos = {tid: i for i, tid in enumerate(updates)}
    writers = th.writers_of()
    so_preds: Dict[str, List[str]] = {}
    for earlier, later in th.so_edges():
        so_preds.setdefault(later, []).append(earlier)

    # Process readers in session order (appearance order breaks ties):
    # a reader's slot floor depends on its so-predecessors' slots, so
    # those must be assigned first.
    appearance = {tid: i for i, tid in enumerate(tids)}
    session_key: Dict[str, Tuple[int, int]] = {}
    for s_idx, session in enumerate(th.sessions):
        for m_idx, member in enumerate(session):
            session_key.setdefault(member, (s_idx, m_idx))
    fallback = (len(th.sessions), 0)
    readers = sorted(
        readers, key=lambda t: session_key.get(t, fallback) + (appearance[t],)
    )

    count = len(updates)
    slots: Dict[str, int] = {}
    for reader in readers:
        lo, hi = 0, count
        for obj, writer in th.read_events(reader):
            obj_writers = [t for t in writers.get(obj, ()) if t in pos]
            if writer == T0:
                if obj_writers:
                    hi = min(hi, pos[obj_writers[0]])
                continue
            if writer not in pos:
                return candidates
            lo = max(lo, pos[writer] + 1)
            later_writes = [pos[t] for t in obj_writers if pos[t] > pos[writer]]
            if later_writes:
                hi = min(hi, min(later_writes))
        for pred in so_preds.get(reader, ()):
            if pred in pos:
                lo = max(lo, pos[pred] + 1)
            elif pred in slots:
                lo = max(lo, slots[pred])
        if lo > hi:
            return candidates  # no consistent snapshot point: let search decide
        slots[reader] = lo

    by_slot: Dict[int, List[str]] = {}
    for reader in readers:  # session order keeps same-slot so intact
        by_slot.setdefault(slots[reader], []).append(reader)
    merged: List[str] = []
    for i in range(count + 1):
        merged.extend(by_slot.get(i, ()))
        if i < count:
            merged.append(updates[i])
    candidates.append(tuple(merged))
    return candidates


def _split_nodes(order: Sequence[str]) -> Tuple[str, ...]:
    expanded: List[str] = []
    for tid in order:
        expanded.append(tid + _READ_PART)
        expanded.append(tid + _WRITE_PART)
    return tuple(expanded)


def check_serializability(th: TransactionalHistory) -> Verdict:
    """SER: polygraph acyclicity over whole transactions."""
    poly = Polygraph(th.tids)
    labels: Dict[Tuple[str, str], WitnessEdge] = {}

    def arc(src: str, dst: str, kind: str, obj: Optional[str] = None) -> None:
        if src != dst:
            poly.add_arc(src, dst)
            labels.setdefault((src, dst), WitnessEdge(src, dst, kind, obj))

    for earlier, later in th.so_edges():
        arc(earlier, later, "so")
    writers = th.writers_of()
    for writer, reader, obj in th.wr_pairs():
        if writer == T0:
            for t3 in writers.get(obj, ()):
                if t3 != reader:
                    arc(reader, t3, "rw", obj)
            continue
        arc(writer, reader, "wr", obj)
        for t3 in writers.get(obj, ()):
            if t3 in (writer, reader):
                continue
            poly.add_bipath(Bipath((t3, writer), (reader, t3)))
            labels.setdefault((t3, writer), WitnessEdge(t3, writer, "ww", obj))
            labels.setdefault((reader, t3), WitnessEdge(reader, t3, "rw", obj))
    return _search_verdict(
        "serializability",
        poly,
        labels,
        split=False,
        candidates=_candidate_orders(th),
    )


def check_prefix(th: TransactionalHistory) -> Verdict:
    """PC: split-transaction polygraph, no write-conflict bipaths."""
    poly, labels = _split_polygraph(th, conflict_bipaths=False)
    return _search_verdict(
        "prefix", poly, labels, split=True, candidates=_candidate_orders(th)
    )


def check_snapshot_isolation(th: TransactionalHistory) -> Verdict:
    """SI: split-transaction polygraph plus write-conflict bipaths."""
    poly, labels = _split_polygraph(th, conflict_bipaths=True)
    return _search_verdict(
        "snapshot-isolation",
        poly,
        labels,
        split=True,
        candidates=_candidate_orders(th),
    )


def _split_polygraph(
    th: TransactionalHistory, *, conflict_bipaths: bool
) -> Tuple[Polygraph, Dict[Tuple[str, str], WitnessEdge]]:
    """Biswas–Enea split-transaction reduction for PC and SI.

    Each transaction ``t`` becomes ``t[r]`` (the snapshot point where its
    reads take effect) and ``t[w]`` (its commit point).  so/wr edges run
    write-part → read-part, so a chain through split nodes alternates
    "commits before snapshot of".  SI adds, per pair of transactions
    writing a common object, a bipath forcing one to commit before the
    other takes its snapshot — conflicting writers must not overlap.
    """
    nodes: List[str] = []
    for tid in th.tids:
        nodes.append(tid + _READ_PART)
        nodes.append(tid + _WRITE_PART)
    poly = Polygraph(nodes)
    labels: Dict[Tuple[str, str], WitnessEdge] = {}

    def arc(src: str, dst: str, kind: str, obj: Optional[str] = None) -> None:
        if src != dst:
            poly.add_arc(src, dst)
            labels.setdefault((src, dst), WitnessEdge(src, dst, kind, obj))

    for tid in th.tids:
        arc(tid + _READ_PART, tid + _WRITE_PART, "split")
    for earlier, later in th.so_edges():
        arc(earlier + _WRITE_PART, later + _READ_PART, "so")

    writers = th.writers_of()
    for writer, reader, obj in th.wr_pairs():
        if writer == T0:
            for t3 in writers.get(obj, ()):
                if t3 != reader:
                    arc(reader + _READ_PART, t3 + _WRITE_PART, "rw", obj)
            continue
        arc(writer + _WRITE_PART, reader + _READ_PART, "wr", obj)
        for t3 in writers.get(obj, ()):
            if t3 in (writer, reader):
                continue
            first = (t3 + _WRITE_PART, writer + _WRITE_PART)
            second = (reader + _READ_PART, t3 + _WRITE_PART)
            poly.add_bipath(Bipath(first, second))
            labels.setdefault(first, WitnessEdge(first[0], first[1], "ww", obj))
            labels.setdefault(second, WitnessEdge(second[0], second[1], "rw", obj))

    if conflict_bipaths:
        for obj, tids in sorted(writers.items()):
            for i, ta in enumerate(tids):
                for tb in tids[i + 1 :]:
                    first = (ta + _WRITE_PART, tb + _READ_PART)
                    second = (tb + _WRITE_PART, ta + _READ_PART)
                    poly.add_bipath(Bipath(first, second))
                    labels.setdefault(
                        first, WitnessEdge(first[0], first[1], "ww", obj)
                    )
                    labels.setdefault(
                        second, WitnessEdge(second[0], second[1], "ww", obj)
                    )
    return poly, labels


_DESCRIPTIONS = {
    "serializability": "not serializable: every candidate commit order "
    "closes a dependency cycle",
    "prefix": "prefix consistency violated: transactions observe "
    "incomparable prefixes of the commit order",
    "snapshot-isolation": "snapshot isolation violated: no assignment of "
    "snapshot/commit points avoids a dependency cycle",
}


def _search_verdict(
    level: str,
    poly: Polygraph,
    labels: Dict[Tuple[str, str], WitnessEdge],
    *,
    split: bool,
    candidates: Sequence[Tuple[str, ...]] = (),
) -> Verdict:
    # Fast path: a verified candidate order certifies acyclicity without
    # the exponential search — essential for whole-run histories, where
    # the commit log (with readers at their snapshot points) is almost
    # always a witness.
    for candidate in candidates:
        nodes = _split_nodes(candidate) if split else candidate
        if poly.satisfied_by(nodes):
            return Verdict(level, True, order=tuple(candidate))

    solution = poly.acyclic_witness()
    if solution is not None:
        order = solution.topological_order() or []
        if split:
            commit_order = tuple(
                _base_tid(node) for node in order if node.endswith(_WRITE_PART)
            )
        else:
            commit_order = tuple(order)
        return Verdict(level, True, order=commit_order)

    refutation = poly.refutation()
    if refutation is None:  # pragma: no cover - refutation mirrors the search
        refutation = PolygraphRefutation("search-exhausted")
    witness = _refutation_witness(level, refutation, labels)
    return Verdict(level, False, witness=witness)


def _refutation_witness(
    level: str,
    refutation: PolygraphRefutation,
    labels: Dict[Tuple[str, str], WitnessEdge],
) -> AnomalyWitness:
    description = _DESCRIPTIONS[level]

    def edges_of(cycle: Sequence[str]) -> List[WitnessEdge]:
        return [
            labels[(a, b)] for a, b in zip(cycle, cycle[1:]) if (a, b) in labels
        ]

    if refutation.kind == "arc-cycle":
        return AnomalyWitness(
            level,
            description + " (dependency cycle over forced edges)",
            cycle=refutation.cycle,
            edges=tuple(edges_of(refutation.cycle)),
            transactions=_distinct_txns(refutation.cycle),
        )
    if refutation.kind == "bipath-blocked":
        edges: List[WitnessEdge] = []
        edges.extend(edges_of(refutation.first_cycle))
        edges.extend(edges_of(refutation.second_cycle))
        bipath = refutation.bipath
        detail = ""
        if bipath is not None:
            detail = (
                f" (both orderings of {bipath.first[0]} vs {bipath.second[0]}"
                " close a cycle)"
            )
        return AnomalyWitness(
            level,
            description + detail,
            cycle=refutation.first_cycle or refutation.second_cycle,
            edges=tuple(dict.fromkeys(edges)),
            transactions=_distinct_txns(refutation.nodes()),
        )
    return AnomalyWitness(
        level,
        description + " (refuted by exhaustive search over version orders)",
    )


_CHECKERS = {
    "read-committed": check_read_committed,
    "read-atomic": check_read_atomic,
    "causal": check_causal,
    "prefix": check_prefix,
    "snapshot-isolation": check_snapshot_isolation,
    "serializability": check_serializability,
}


def check_level(th: TransactionalHistory, level: str) -> Verdict:
    """Run one level checker; ``level`` must be a member of :data:`LEVELS`."""
    try:
        checker = _CHECKERS[level]
    except KeyError:
        raise ValueError(
            f"unknown consistency level {level!r}; expected one of {LEVELS}"
        ) from None
    return checker(th)
