"""Registry of machine-checkable protocol invariants.

Each invariant is a function from an :class:`AuditContext` to a stream of
:class:`repro.analysis.diagnostics.Diagnostic` violations, registered via
the :func:`invariant` decorator under a stable id.  The auditor
(:mod:`repro.analysis.audit`) builds the context from a recorded
simulation trace (or a bare :class:`repro.core.model.History`) and runs
every applicable invariant.

The shipped invariants and the paper facts they police:

``control-monotonicity``
    The control state's time structure is respected across successive
    broadcast cycles.  Individual ``C(i, j)`` cells may drop when a new
    writer of ``ob_j`` replaces the column with its own live set's maxima
    (Theorem 2), but three facts always hold: the per-object
    last-committed-write timestamp (``max_j C(i, j)``; the vector itself
    for the reduced protocols) never decreases from one cycle to the
    next; no entry names a cycle at or after the one whose snapshot
    carries it (entries are commit cycles of already-committed
    transactions); and in the full matrix every entry of column ``j`` is
    dominated by the diagonal ``C(j, j)`` — members of ``LIVE_H(t_j)``
    committed no later than ``t_j`` itself.  Under modulo timestamps,
    anchored decoding is sound only within one wrap window of the
    snapshot, so the monotone quantity is taken from the broadcast data
    slots' absolute commit cycles instead and the two anchored-entry
    checks are skipped (one is vacuous under anchoring, one undecodable).

``control-agreement``
    Per cycle, the broadcast control information agrees with the
    broadcast data slots: the per-object last-committed-write cycle
    derivable from the matrix (``max_j C(i, j)``, attained on the
    diagonal), the vector, or the grouped matrix must equal the commit
    cycle carried by the object's broadcast version (Sec. 3.2.2's
    one-group reduction argument).  Under modulo timestamps the check
    compares wire residues exactly — the vector (or matrix diagonal)
    must equal the residue of the version's absolute commit cycle; the
    grouped matrix exposes no per-object residue cell, so it is exempt.

``wrap-gap-safety``
    No committed client read-only transaction validated reads spanning a
    full modulo window or more.  Re-anchored wire timestamps are
    ambiguous across such a wrap gap (Sec. 3.2.2's ``max_cycles``
    bound is ``2**timestamp_bits - 1``), so a commit across one means
    the client-side staleness guard failed — validation may have
    accepted an aliased, arbitrarily old control entry.  Vacuous for
    unbounded arithmetic.

``validation-soundness``
    Every client-accepted read-only transaction must be APPROX-consistent
    in the reconstructed global history (Theorems 1 and 9 say each
    protocol accepts only APPROX schedules), and the serialization
    certificates must survive an independent serial-replay verification
    (:mod:`repro.core.certify`).  A rejection is reported with the
    serialization-graph cycle as witness, minimized by projection, and
    cross-examined against the exact polygraph test
    (:mod:`repro.core.polygraph`) to distinguish a genuine inconsistency
    from APPROX conservatism.

``read-coherence``
    Client-observed versions cohere with the broadcast: reads and
    versions align one to one, every observed version was committed
    before the cycle whose snapshot validated it, its writer exists in
    the server commit log (or is ``t0``), and — when the cycle's image
    was recorded — the version equals what that cycle actually carried
    (catches cache bugs serving phantom versions).

``delta-coherence``
    Delta-encoding the run's matrix snapshots and decoding them back
    reproduces every snapshot exactly (the Sec. 3.2.1 "transmit only
    changes" extension must be lossless).  A gap in the cycle sequence
    (a crash outage's dead air) restarts the stream: the revived
    server's encoder state did not survive, so the first post-gap frame
    is an anchor and the receiver re-synchronises on it.

``update-serializability``
    The committed update sub-history of the reconstructed history is
    conflict serializable (the server commits update transactions
    serially, so a cycle here means the trace/rebuild machinery or the
    server executor is broken), witnessed by a conflict-graph cycle.

``commit-log-order``
    The server commit log is internally ordered: strictly increasing
    commit sequence numbers, non-decreasing commit cycles, no duplicate
    transaction ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..broadcast.delta import DeltaDecoder, DeltaEncoder, DesyncError
from ..core.approx import approx_report
from ..core.certify import (
    CertificationError,
    certify_history,
    verify_reader_certificate,
    verify_update_certificate,
)
from ..core.cycles import CycleArithmetic, ModuloCycles, UnboundedCycles
from ..core.model import History, T0
from ..core.polygraph import reader_polygraph
from ..core.serialgraph import conflict_graph, reader_serialization_graph
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # no runtime dependency on the simulator or server
    from ..broadcast.program import BroadcastCycle
    from ..server.database import CommitRecord
    from ..sim.trace import ClientCommitRecord

__all__ = [
    "AuditContext",
    "Invariant",
    "INVARIANTS",
    "invariant",
    "invariant_ids",
    "HISTORY_INVARIANTS",
]


@dataclass(frozen=True)
class AuditContext:
    """Everything one audited run exposes to the invariants.

    A context built from a bare history populates only ``history`` (and
    ``num_objects`` when derivable); trace-level invariants detect the
    missing pieces and skip themselves.
    """

    num_objects: int = 0
    arithmetic: CycleArithmetic = field(default_factory=UnboundedCycles)
    #: per-cycle broadcast images in ascending cycle order (may be empty)
    broadcasts: Tuple["BroadcastCycle", ...] = ()
    #: server commit log in serialization order (may be empty)
    commit_log: Tuple["CommitRecord", ...] = ()
    #: committed client read-only transactions (may be empty)
    client_commits: Tuple["ClientCommitRecord", ...] = ()
    #: reconstructed global history, when available
    history: Optional[History] = None
    #: whether the audited run served reads from a quasi-cache
    cache_enabled: bool = False


Invariant = Callable[[AuditContext], Iterator[Diagnostic]]

#: the global invariant registry: id -> checker
INVARIANTS: Dict[str, Invariant] = {}

#: ids of invariants meaningful for a bare History (no trace required)
HISTORY_INVARIANTS: Tuple[str, ...] = (
    "validation-soundness",
    "update-serializability",
)


def invariant(invariant_id: str) -> Callable[[Invariant], Invariant]:
    """Register a checker under ``invariant_id`` (decorator)."""

    def register(fn: Invariant) -> Invariant:
        if invariant_id in INVARIANTS:
            raise ValueError(f"duplicate invariant id {invariant_id!r}")
        INVARIANTS[invariant_id] = fn
        return fn

    return register


def invariant_ids() -> Tuple[str, ...]:
    """All registered invariant ids, in registration order."""
    return tuple(INVARIANTS)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _decode(encoded: np.ndarray, cycle: int, arithmetic: CycleArithmetic) -> np.ndarray:
    """Absolute cycle numbers for a control array frozen at ``cycle``.

    Unbounded arithmetic stores absolute values already; modulo arithmetic
    re-anchors each residue to the most recent absolute cycle ≤ ``cycle - 1``
    — the snapshot freezes at the cycle's start, so every entry is the
    commit cycle of an *earlier* cycle's transaction.  Sound while entries
    lie within one window of the snapshot, the paper's standing assumption.
    """
    if isinstance(arithmetic, ModuloCycles):
        window = arithmetic.window
        reference = cycle - 1
        return reference - ((reference - encoded) % window)
    return encoded


def _control_array(snapshot: object) -> Optional[np.ndarray]:
    """The control payload of a snapshot, whichever shape it carries."""
    for name in ("matrix", "grouped", "vector"):
        array = getattr(snapshot, name, None)
        if array is not None:
            return array
    return None


def _last_write_values(
    snapshot: object, cycle: int, arithmetic: CycleArithmetic
) -> Optional[np.ndarray]:
    """Per-object last-committed-write cycle implied by the control info."""
    matrix = getattr(snapshot, "matrix", None)
    if matrix is not None:
        return _decode(matrix, cycle, arithmetic).max(axis=1)
    grouped = getattr(snapshot, "grouped", None)
    if grouped is not None:
        return _decode(grouped, cycle, arithmetic).max(axis=1)
    vector = getattr(snapshot, "vector", None)
    if vector is not None:
        return _decode(vector, cycle, arithmetic)
    return None


def _minimize_cycle_witness(
    history: History, cycle_nodes: Sequence[str]
) -> Optional[str]:
    """Project the history onto a graph cycle's transactions.

    If the projection still exhibits a conflict-graph cycle, its compact
    notation is a minimized, self-contained witness.
    """
    nodes = [n for n in dict.fromkeys(cycle_nodes) if n != T0]
    if not nodes:
        return None
    projected = history.projection(nodes)
    if conflict_graph(projected).is_acyclic():
        return None
    return projected.to_notation()


def _last_write_regressions(
    previous: Tuple[int, np.ndarray],
    broadcast: "BroadcastCycle",
    last_write: np.ndarray,
) -> Iterator[Diagnostic]:
    """Diagnostics for per-object last-write cycles that went backwards."""
    prev_cycle, prev_last_write = previous
    if last_write.shape != prev_last_write.shape:
        return
    dropped = np.nonzero(last_write < prev_last_write)[0]
    if dropped.size:
        obj = int(dropped[0])
        yield Diagnostic(
            invariant="control-monotonicity",
            message=(
                f"last-committed-write timestamp decreased "
                f"between cycles {prev_cycle} and "
                f"{broadcast.cycle} ({dropped.size} object(s) "
                "affected)"
            ),
            cycle=broadcast.cycle,
            objects=tuple(int(o) for o in dropped[:8]),
            witness=(
                f"last write of object {obj}: cycle "
                f"{int(prev_last_write[obj])} per the cycle-"
                f"{prev_cycle} broadcast but cycle "
                f"{int(last_write[obj])} per the cycle-"
                f"{broadcast.cycle} broadcast"
            ),
        )


def _agreement_residues(
    arithmetic: ModuloCycles, broadcast: "BroadcastCycle", actual: np.ndarray
) -> Iterator[Diagnostic]:
    """Residue-exact control/data agreement for modulo timestamps.

    The vector (or the full matrix's diagonal) carries the last-write
    timestamp of each object directly, so its wire residue must equal
    ``commit_cycle % window`` of the version broadcast alongside it.
    """
    snapshot = broadcast.snapshot
    matrix = getattr(snapshot, "matrix", None)
    if matrix is not None:
        implied = np.diagonal(matrix)
        cell = "C(i,i)"
    else:
        vector = getattr(snapshot, "vector", None)
        if vector is None:
            return  # grouped (or no control info): no per-object residue
        implied = vector
        cell = "TS(i)"
    expected = arithmetic.encode_array(actual)
    if implied.shape != expected.shape:
        yield Diagnostic(
            invariant="control-agreement",
            message=(
                f"control info covers {implied.shape[0]} objects but the "
                f"broadcast carries {expected.shape[0]}"
            ),
            cycle=broadcast.cycle,
        )
        return
    mismatched = np.nonzero(implied != expected)[0]
    if mismatched.size:
        obj = int(mismatched[0])
        yield Diagnostic(
            invariant="control-agreement",
            message=(
                f"control residue disagrees with broadcast slots on "
                f"{mismatched.size} object(s)"
            ),
            cycle=broadcast.cycle,
            objects=tuple(int(o) for o in mismatched[:8]),
            transactions=(broadcast.versions[obj].writer,),
            witness=(
                f"object {obj}: {cell} = {int(implied[obj])} but the "
                f"broadcast version was committed at cycle "
                f"{int(actual[obj])} ≡ {int(expected[obj])} "
                f"(mod {arithmetic.window}) by "
                f"{broadcast.versions[obj].writer!r}"
            ),
        )


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------

@invariant("control-monotonicity")
def check_control_monotonicity(ctx: AuditContext) -> Iterator[Diagnostic]:
    """Control-state time structure holds cycle over cycle.

    Cells of ``C`` may legitimately drop when a fresh writer replaces a
    column (Theorem 2), so the monotone quantity is the per-object
    last-write timestamp.  Additionally no entry may lie in the future of
    its snapshot, and matrix columns are dominated by their diagonal.

    Under :class:`ModuloCycles` the anchored decode aliases for entries
    older than one window, so on long runs with small windows the decoded
    comparisons would flag healthy control state.  There the per-object
    last write is taken from the data slots' absolute commit cycles
    (which also catches a recovered server resurrecting stale versions),
    and the two anchored-entry checks are skipped: anchoring can never
    place an entry at or past its reference, and the column/diagonal
    comparison is undecodable beyond the window.
    """
    modulo = isinstance(ctx.arithmetic, ModuloCycles)
    previous: Optional[Tuple[int, np.ndarray]] = None
    for broadcast in ctx.broadcasts:
        snapshot = broadcast.snapshot
        if modulo:
            if not broadcast.versions:
                continue
            last_write = np.array(
                [v.commit_cycle for v in broadcast.versions], dtype=np.int64
            )
            if previous is not None:
                yield from _last_write_regressions(previous, broadcast, last_write)
            previous = (broadcast.cycle, last_write)
            continue
        array = _control_array(snapshot)
        if array is None:
            continue
        decoded = _decode(array, broadcast.cycle, ctx.arithmetic)

        ahead = np.argwhere(decoded >= broadcast.cycle)
        if ahead.size:
            first = tuple(int(x) for x in ahead[0])
            i = first[0]
            j = first[1] if len(first) > 1 else i
            yield Diagnostic(
                invariant="control-monotonicity",
                message=(
                    f"control entry names cycle {int(decoded[tuple(first)])} "
                    f"inside the snapshot frozen at the start of cycle "
                    f"{broadcast.cycle} ({ahead.shape[0]} cell(s) affected); "
                    "entries are commit cycles of already-committed "
                    "transactions"
                ),
                cycle=broadcast.cycle,
                objects=(i, j),
                witness=(
                    f"C({i},{j}) = {int(decoded[tuple(first)])} >= snapshot "
                    f"cycle {broadcast.cycle}"
                ),
            )

        if getattr(snapshot, "matrix", None) is not None:
            diag = np.diagonal(decoded)
            undominated = np.argwhere(decoded > diag[np.newaxis, :])
            if undominated.size:
                i, j = (int(x) for x in undominated[0])
                yield Diagnostic(
                    invariant="control-monotonicity",
                    message=(
                        "matrix column exceeds its diagonal "
                        f"({undominated.shape[0]} cell(s) affected); members "
                        "of LIVE(t_j) committed no later than t_j"
                    ),
                    cycle=broadcast.cycle,
                    objects=(i, j),
                    witness=(
                        f"C({i},{j}) = {int(decoded[i, j])} > C({j},{j}) = "
                        f"{int(diag[j])} at cycle {broadcast.cycle}"
                    ),
                )

        last_write = decoded.max(axis=1) if decoded.ndim == 2 else decoded
        if previous is not None:
            yield from _last_write_regressions(previous, broadcast, last_write)
        previous = (broadcast.cycle, last_write)


@invariant("control-agreement")
def check_control_agreement(ctx: AuditContext) -> Iterator[Diagnostic]:
    """Control info agrees with the commit cycles on the broadcast slots.

    Under :class:`ModuloCycles` the absolute comparison is unavailable
    beyond one window, but the wire residues themselves are exact: the
    vector entry (or full-matrix diagonal cell) for each object must
    equal the residue of its version's absolute commit cycle.  The
    grouped matrix's per-object value is a maximum over group columns —
    maxima do not commute with residues — so it carries no directly
    comparable cell and is exempt; the row-vs-diagonal domination check
    is likewise skipped as undecodable.
    """
    modulo = isinstance(ctx.arithmetic, ModuloCycles)
    for broadcast in ctx.broadcasts:
        if not broadcast.versions:
            continue
        actual = np.array(
            [v.commit_cycle for v in broadcast.versions], dtype=np.int64
        )
        if modulo:
            yield from _agreement_residues(ctx.arithmetic, broadcast, actual)
            continue
        implied = _last_write_values(
            broadcast.snapshot, broadcast.cycle, ctx.arithmetic
        )
        if implied is None:
            continue
        if implied.shape != actual.shape:
            yield Diagnostic(
                invariant="control-agreement",
                message=(
                    f"control info covers {implied.shape[0]} objects but the "
                    f"broadcast carries {actual.shape[0]}"
                ),
                cycle=broadcast.cycle,
            )
            continue
        mismatched = np.nonzero(implied != actual)[0]
        if mismatched.size:
            obj = int(mismatched[0])
            yield Diagnostic(
                invariant="control-agreement",
                message=(
                    f"control info disagrees with broadcast slots on "
                    f"{mismatched.size} object(s)"
                ),
                cycle=broadcast.cycle,
                objects=tuple(int(o) for o in mismatched[:8]),
                transactions=(broadcast.versions[obj].writer,),
                witness=(
                    f"object {obj}: control implies last write at cycle "
                    f"{int(implied[obj])} but the broadcast version was "
                    f"committed at cycle {int(actual[obj])} by "
                    f"{broadcast.versions[obj].writer!r}"
                ),
            )
        matrix = getattr(broadcast.snapshot, "matrix", None)
        if matrix is not None:
            decoded = _decode(matrix, broadcast.cycle, ctx.arithmetic)
            diag = np.diagonal(decoded)
            off = np.nonzero(diag != decoded.max(axis=1))[0]
            if off.size:
                obj = int(off[0])
                yield Diagnostic(
                    invariant="control-agreement",
                    message=(
                        "matrix diagonal does not dominate its row "
                        f"({off.size} row(s)); the last writer of an object "
                        "must be in its own live set"
                    ),
                    cycle=broadcast.cycle,
                    objects=tuple(int(o) for o in off[:8]),
                    witness=(
                        f"row {obj}: C({obj},{obj}) = {int(diag[obj])} < "
                        f"max_j C({obj},j) = {int(decoded[obj].max())}"
                    ),
                )


@invariant("wrap-gap-safety")
def check_wrap_gap_safety(ctx: AuditContext) -> Iterator[Diagnostic]:
    """No committed read-only transaction validated across a wrap gap.

    Under modulo timestamps a transaction whose reads span a full window
    (``2**timestamp_bits`` cycles) or more compared re-anchored control
    entries that are ambiguous relative to its earliest read — the
    paper's ``max_cycles`` bound, which the client-side staleness guard
    (:class:`repro.client.runtime.ReadOnlyTransactionRuntime`) enforces
    by aborting instead.  A commit across the gap means that guard was
    bypassed or broken.  Vacuous for unbounded arithmetic.
    """
    arithmetic = ctx.arithmetic
    if not isinstance(arithmetic, ModuloCycles):
        return
    window = arithmetic.window
    for record in ctx.client_commits:
        cycles = [cycle for _obj, cycle in record.reads]
        if not cycles:
            continue
        first, last = min(cycles), max(cycles)
        if last - first >= window:
            yield Diagnostic(
                invariant="wrap-gap-safety",
                message=(
                    f"committed read-only transaction validated reads "
                    f"spanning {last - first} cycles, at least the full "
                    f"modulo window of {window}; re-anchored timestamps "
                    "are ambiguous across a wrap gap"
                ),
                cycle=last,
                transactions=(record.tid,),
                witness=(
                    f"{record.tid} read at cycles {first}..{last}; "
                    f"window {window} allows spans up to {window - 1}"
                ),
            )


@invariant("validation-soundness")
def check_validation_soundness(ctx: AuditContext) -> Iterator[Diagnostic]:
    """Accepted clients are APPROX-consistent and certificates replay."""
    history = ctx.history
    if history is None:
        return
    committed = history.committed_projection()
    report = approx_report(history)
    if report.update_cycle is not None:
        yield Diagnostic(
            invariant="validation-soundness",
            message="update sub-history is not conflict serializable",
            transactions=report.update_cycle,
            witness=_minimize_cycle_witness(committed, report.update_cycle)
            or " -> ".join(report.update_cycle),
        )
        return
    for reader in report.rejected_readers:
        graph_cycle = report.reader_cycles.get(reader, ())
        poly = reader_polygraph(committed, reader)
        conservative = poly.is_acyclic()
        verdict = (
            "history is still legal (APPROX-conservative rejection)"
            if conservative
            else "polygraph is cyclic too: the history is genuinely inconsistent"
        )
        yield Diagnostic(
            invariant="validation-soundness",
            message=(
                f"client-accepted read-only transaction {reader!r} fails "
                f"APPROX; {verdict}"
            ),
            transactions=(reader,) + tuple(graph_cycle),
            witness=(
                _minimize_cycle_witness(committed, graph_cycle)
                or (" -> ".join(graph_cycle) if graph_cycle else None)
            ),
        )
    if not report.accepted:
        return
    try:
        certificate = certify_history(history)
    except CertificationError as exc:  # pragma: no cover - accepted above
        yield Diagnostic(
            invariant="validation-soundness",
            message=f"certificate extraction failed: {exc}",
        )
        return
    if not verify_update_certificate(history, certificate.update_order):
        yield Diagnostic(
            invariant="validation-soundness",
            message=(
                "serial replay of the update serialization order does not "
                "reproduce the history's reads-from relation"
            ),
            transactions=certificate.update_order,
            witness=" -> ".join(certificate.update_order),
        )
    for reader, order in certificate.reader_orders.items():
        if not verify_reader_certificate(history, reader, order):
            yield Diagnostic(
                invariant="validation-soundness",
                message=(
                    f"reader certificate for {reader!r} fails serial-replay "
                    "verification"
                ),
                transactions=(reader,),
                witness=" -> ".join(order),
            )


@invariant("read-coherence")
def check_read_coherence(ctx: AuditContext) -> Iterator[Diagnostic]:
    """Observed versions cohere with the broadcast and the commit log."""
    known_writers = {record.txn for record in ctx.commit_log}
    known_writers.add(T0)
    by_cycle = {b.cycle: b for b in ctx.broadcasts}
    for client in ctx.client_commits:
        if len(client.versions) != len(client.reads):
            yield Diagnostic(
                invariant="read-coherence",
                message=(
                    f"{client.tid!r} recorded {len(client.versions)} versions "
                    f"but {len(client.reads)} validated reads"
                ),
                transactions=(client.tid,),
            )
            continue
        previous_cycle: Optional[int] = None
        for version, (obj, cycle) in zip(client.versions, client.reads):
            if version.obj != obj:
                yield Diagnostic(
                    invariant="read-coherence",
                    message=(
                        f"{client.tid!r} validated a read of object {obj} but "
                        f"observed a version of object {version.obj}"
                    ),
                    cycle=cycle,
                    objects=(obj, version.obj),
                    transactions=(client.tid,),
                )
                continue
            if ctx.commit_log and version.writer not in known_writers:
                yield Diagnostic(
                    invariant="read-coherence",
                    message=(
                        f"{client.tid!r} read object {obj} from writer "
                        f"{version.writer!r} absent from the commit log"
                    ),
                    cycle=cycle,
                    objects=(obj,),
                    transactions=(client.tid, version.writer),
                )
            if version.commit_cycle >= cycle:
                yield Diagnostic(
                    invariant="read-coherence",
                    message=(
                        f"{client.tid!r} read object {obj} at cycle {cycle} "
                        f"but the version was committed at cycle "
                        f"{version.commit_cycle} (snapshots freeze at cycle "
                        "start: committed cycle must precede the read cycle)"
                    ),
                    cycle=cycle,
                    objects=(obj,),
                    transactions=(client.tid, version.writer),
                    witness=(
                        f"version {version.writer!r}@{version.commit_cycle} "
                        f"observed at cycle {cycle}"
                    ),
                )
            broadcast = by_cycle.get(cycle)
            if broadcast is not None and obj < len(broadcast.versions):
                aired = broadcast.versions[obj]
                if aired is not None and (
                    aired.writer != version.writer
                    or aired.commit_cycle != version.commit_cycle
                ):
                    yield Diagnostic(
                        invariant="read-coherence",
                        message=(
                            f"{client.tid!r} observed a version of object "
                            f"{obj} that cycle {cycle} never broadcast"
                        ),
                        cycle=cycle,
                        objects=(obj,),
                        transactions=(client.tid, version.writer),
                        witness=(
                            f"observed {version.writer!r}@"
                            f"{version.commit_cycle}, aired "
                            f"{aired.writer!r}@{aired.commit_cycle}"
                        ),
                    )
            if not ctx.cache_enabled and previous_cycle is not None:
                if cycle < previous_cycle:
                    yield Diagnostic(
                        invariant="read-coherence",
                        message=(
                            f"{client.tid!r} read cycles go backwards without "
                            "a cache (off-air reads are cycle-monotone)"
                        ),
                        cycle=cycle,
                        objects=(obj,),
                        transactions=(client.tid,),
                        witness=f"cycle {previous_cycle} then {cycle}",
                    )
            previous_cycle = cycle


@invariant("delta-coherence")
def check_delta_coherence(ctx: AuditContext) -> Iterator[Diagnostic]:
    """Delta-encoding the matrix stream is lossless, cycle by cycle."""
    matrices = [
        (b.cycle, b.snapshot.matrix)
        for b in ctx.broadcasts
        if getattr(b.snapshot, "matrix", None) is not None
    ]
    if not matrices:
        return
    n = matrices[0][1].shape[0]
    encoder = DeltaEncoder(n, timestamp_bits=ctx.arithmetic.timestamp_bits)
    decoder = DeltaDecoder(n)
    previous_cycle: Optional[int] = None
    for cycle, matrix in matrices:
        if previous_cycle is not None and cycle > previous_cycle + 1:
            # dead air (server crash outage): the revived server's encoder
            # state did not survive, so the stream restarts with an anchor
            # frame and receivers re-synchronise on it
            encoder = DeltaEncoder(n, timestamp_bits=ctx.arithmetic.timestamp_bits)
            decoder = DeltaDecoder(n)
        previous_cycle = cycle
        frame = encoder.encode(cycle, matrix)
        try:
            decoded = decoder.apply(frame)
        except DesyncError as exc:
            yield Diagnostic(
                invariant="delta-coherence",
                message=f"delta decoder desynchronised: {exc}",
                cycle=cycle,
            )
            return
        if decoded is None or not np.array_equal(decoded, matrix):
            cell = ""
            if decoded is not None:
                wrong = np.argwhere(decoded != matrix)
                if wrong.size:
                    i, j = (int(x) for x in wrong[0])
                    cell = (
                        f"C({i},{j}): decoded {int(decoded[i, j])}, "
                        f"broadcast {int(matrix[i, j])}"
                    )
            yield Diagnostic(
                invariant="delta-coherence",
                message="delta round-trip does not reproduce the snapshot",
                cycle=cycle,
                witness=cell or None,
            )
            return


@invariant("update-serializability")
def check_update_serializability(ctx: AuditContext) -> Iterator[Diagnostic]:
    """The committed update sub-history is conflict serializable."""
    history = ctx.history
    if history is None:
        return
    update = history.committed_projection().update_subhistory()
    graph = conflict_graph(update)
    cycle_nodes = graph.find_cycle()
    if cycle_nodes:
        yield Diagnostic(
            invariant="update-serializability",
            message="serialization graph of the update sub-history is cyclic",
            transactions=tuple(cycle_nodes),
            witness=_minimize_cycle_witness(update, cycle_nodes)
            or " -> ".join(cycle_nodes),
        )


@invariant("commit-log-order")
def check_commit_log_order(ctx: AuditContext) -> Iterator[Diagnostic]:
    """Commit log: strictly increasing seq, non-decreasing cycles, no dups."""
    seen: Dict[str, int] = {}
    previous_seq: Optional[int] = None
    previous_cycle: Optional[int] = None
    for record in ctx.commit_log:
        if record.txn in seen:
            yield Diagnostic(
                invariant="commit-log-order",
                message=(
                    f"transaction {record.txn!r} committed twice "
                    f"(seq {seen[record.txn]} and {record.commit_seq})"
                ),
                cycle=record.commit_cycle,
                transactions=(record.txn,),
            )
        seen[record.txn] = record.commit_seq
        if previous_seq is not None and record.commit_seq <= previous_seq:
            yield Diagnostic(
                invariant="commit-log-order",
                message=(
                    f"commit sequence numbers not strictly increasing "
                    f"({previous_seq} then {record.commit_seq})"
                ),
                cycle=record.commit_cycle,
                transactions=(record.txn,),
            )
        if previous_cycle is not None and record.commit_cycle < previous_cycle:
            yield Diagnostic(
                invariant="commit-log-order",
                message=(
                    f"commit cycles go backwards ({previous_cycle} then "
                    f"{record.commit_cycle})"
                ),
                cycle=record.commit_cycle,
                transactions=(record.txn,),
                witness=(
                    f"{record.txn!r} committed at cycle {record.commit_cycle} "
                    f"after a cycle-{previous_cycle} commit"
                ),
            )
        previous_seq = record.commit_seq
        previous_cycle = record.commit_cycle
