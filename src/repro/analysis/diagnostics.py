"""Structured diagnostics emitted by the invariant auditor.

Every violation is a :class:`Diagnostic`: the invariant id, the broadcast
cycle it localises to (when one does), the offending objects and
transactions, a human-readable message, and — where the invariant can
produce one — a *minimized witness*: the smallest structure (a single
matrix cell, a serialization-graph cycle, a projected sub-history) that
still exhibits the violation, so a failure is actionable without re-running
the simulation.

An :class:`AuditReport` bundles the diagnostics of one audit together with
the list of invariants that were actually checked, so "no violations"
is distinguishable from "nothing ran".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Diagnostic", "AuditReport"]


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation, localised and witnessed."""

    #: id of the violated invariant (a key of ``INVARIANTS``)
    invariant: str
    #: one-line description of what went wrong
    message: str
    #: broadcast cycle the violation localises to, when meaningful
    cycle: Optional[int] = None
    #: object ids implicated in the violation
    objects: Tuple[int, ...] = ()
    #: transaction ids implicated in the violation
    transactions: Tuple[str, ...] = ()
    #: minimized witness (e.g. offending cell values, a graph cycle, a
    #: projected sub-history in paper notation)
    witness: Optional[str] = None

    def format(self) -> str:
        parts = [f"[{self.invariant}]", self.message]
        if self.cycle is not None:
            parts.append(f"(cycle {self.cycle})")
        if self.objects:
            parts.append("objects=" + ",".join(str(o) for o in self.objects))
        if self.transactions:
            parts.append("txns=" + ",".join(self.transactions))
        text = " ".join(parts)
        if self.witness:
            text += f"\n    witness: {self.witness}"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (for ``repro-audit --format json``)."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "cycle": self.cycle,
            "objects": list(self.objects),
            "transactions": list(self.transactions),
            "witness": self.witness,
        }


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audit: which invariants ran, what they found."""

    #: invariant ids that were evaluated, in execution order
    checked: Tuple[str, ...]
    #: all violations found, in detection order
    diagnostics: Tuple[Diagnostic, ...]
    #: short config-hash fingerprint of the run being audited, when known
    config_hash: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def violations_of(self, invariant_id: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.invariant == invariant_id)

    def by_invariant(self) -> Dict[str, Tuple[Diagnostic, ...]]:
        out: Dict[str, List[Diagnostic]] = {}
        for diag in self.diagnostics:
            out.setdefault(diag.invariant, []).append(diag)
        return {k: tuple(v) for k, v in out.items()}

    def format(self) -> str:
        lines: List[str] = []
        if self.config_hash is not None:
            lines.append(f"config hash: {self.config_hash}")
        lines.append(
            f"audited {len(self.checked)} invariants: " + ", ".join(self.checked)
        )
        if self.ok:
            lines.append("OK — no invariant violations")
        else:
            lines.append(f"FAIL — {len(self.diagnostics)} violation(s):")
            for diag in self.diagnostics:
                lines.append("  " + diag.format().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (for ``repro-audit --format json``)."""
        return {
            "ok": self.ok,
            "checked": list(self.checked),
            "config_hash": self.config_hash,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
