"""Encapsulation rule: protocol state mutates only through its builders.

:class:`repro.core.model.History` is "conceptually immutable", the
control matrix advances only through the Theorem 2 increment, and the
database installs writes only through ``apply_commit`` — the invariant
auditor depends on exactly this.  Reaching into another object's
underscore attributes from outside the module that owns them bypasses
every one of those contracts, so this rule forbids it.

Ownership is established syntactically: a module *owns* a private
attribute name if it ever assigns it on ``self`` (or declares it in a
class body or ``__slots__``).  Mutating an owned attribute through any
receiver is fine — that is what builder helpers and ``copy()`` methods
do — but mutating a private attribute the module never declares is a
cross-module reach-in and gets flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = ["NoForeignPrivateMutationRule"]


def _owned_private_attrs(tree: ast.Module) -> Set[str]:
    """Private attribute names this module declares as its own."""
    owned: Set[str] = set()
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
            ):
                owned.add(target.attr)
        # __slots__ = ("_x", ...) and class-body annotations like `_x: int`
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.target.id.startswith("_"):
                        owned.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            if target.id == "__slots__":
                                for el in ast.walk(stmt.value):
                                    if isinstance(el, ast.Constant) and isinstance(
                                        el.value, str
                                    ):
                                        if el.value.startswith("_"):
                                            owned.add(el.value)
                            elif target.id.startswith("_"):
                                owned.add(target.id)
    return owned


def _mutated_attribute(target: ast.expr) -> ast.Attribute:
    """The Attribute node being written, unwrapping subscripts/slices."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node
    raise LookupError


@register
class NoForeignPrivateMutationRule(LintRule):
    """No writes to another module's private state."""

    rule_id = "REP003"
    description = (
        "no direct mutation of History/matrix/database internals outside "
        "their builder modules (write via the owning API instead)"
    )
    scopes = ()  # whole tree: encapsulation holds everywhere

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        owned = _owned_private_attrs(module.tree)
        for node in ast.walk(module.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                try:
                    attribute = _mutated_attribute(target)
                except LookupError:
                    continue
                receiver = attribute.value
                if not isinstance(receiver, ast.Name):
                    continue
                if receiver.id in ("self", "cls"):
                    continue
                attr = attribute.attr
                if not attr.startswith("_") or attr.startswith("__"):
                    continue
                if attr in owned:
                    continue  # the module declares this attribute itself
                yield self.finding(
                    module,
                    node,
                    f"mutation of {receiver.id}.{attr} reaches into private "
                    "state owned by another module; use the owning object's "
                    "API",
                )
