"""Public-surface rule: every module declares ``__all__``.

The repo's convention (and what keeps ``from repro.core import *``-style
re-exports and the docs honest): each module states its public surface
explicitly.  A module without ``__all__`` leaks helpers into wildcard
imports and makes API-compatibility review guesswork.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = ["MandatoryAllRule"]


@register
class MandatoryAllRule(LintRule):
    """Every module must assign ``__all__`` at module level."""

    rule_id = "REP005"
    description = "every public module must declare __all__"
    scopes = ()  # whole tree

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                ):
                    return
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == "__all__"
                ):
                    return
            elif isinstance(node, ast.AugAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == "__all__"
                ):
                    return
        yield self.finding(
            module,
            module.tree,
            "module does not declare __all__; state the public surface "
            "explicitly",
        )
