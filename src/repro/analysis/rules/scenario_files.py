"""Scenario-file rule: every shipped scenario must validate and be seeded.

A scenario document that drifts out of schema — or loses its pinned
seed — silently un-pins the runs CI believes it is regression-testing.
REP011 therefore validates every YAML/JSON file under a ``scenarios/``
path against :func:`repro.scenarios.loader.loads_scenario` at lint
time, which enforces the full schema including the mandatory integer
``seed`` and the eager per-protocol config build.
"""

from __future__ import annotations

import re
from typing import Iterator

from .base import DataUnderLint, Finding, LintRule, ModuleUnderLint, register

__all__ = ["ScenarioFileRule"]

_SEED_LINE_RE = re.compile(r"^\s*[\"']?seed[\"']?\s*:", re.MULTILINE)


@register
class ScenarioFileRule(LintRule):
    """Scenario YAML/JSON must parse, validate, and name a seed."""

    rule_id = "REP011"
    description = (
        "scenario files (scenarios/*.yaml|.yml|.json) must validate "
        "against the scenario schema and name an integer seed — an "
        "invalid or unseeded scenario un-pins the runs CI regression-tests"
    )
    scopes = ("scenarios/",)
    handles_data = True

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        # Python modules in the scenarios package are covered by the
        # ordinary rules; this rule only inspects data files.
        return iter(())

    def check_data(self, data: DataUnderLint) -> Iterator[Finding]:
        # Lazy import: the lint driver must stay importable (and fast)
        # even where the simulation stack is not.
        from ...scenarios.loader import loads_scenario
        from ...scenarios.schema import ScenarioError

        fmt = "json" if data.posix_path.endswith(".json") else "yaml"
        try:
            loads_scenario(data.source, fmt=fmt, source=data.path)
        except ScenarioError as exc:
            message = str(exc)
            prefix = f"{data.path}: "
            if message.startswith(prefix):
                message = message[len(prefix):]
            line = 1
            if "seed" in message:
                match = _SEED_LINE_RE.search(data.source)
                if match is not None:
                    line = data.source.count("\n", 0, match.start()) + 1
            yield self.data_finding(
                data, f"invalid scenario file: {message}", line=line
            )
