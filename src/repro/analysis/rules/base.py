"""Lint framework: findings, the module wrapper, and the rule registry.

A rule is a subclass of :class:`LintRule` registered with
:func:`register`.  Rules receive a parsed :class:`ModuleUnderLint` and
yield :class:`Finding` objects; the driver (:mod:`repro.analysis.lint`)
handles path walking, scoping and ``# noqa`` suppression.

Scoping: each rule lists path fragments (``scopes``) it applies to.  A
file under the package tree (``src/repro/...``) is checked only by rules
whose scope matches; a file *outside* the package tree (e.g. a test
fixture) is checked by every rule, so a single fixture can demonstrate
any rule regardless of where it lives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "ModuleUnderLint",
    "DataUnderLint",
    "LintRule",
    "RULES",
    "register",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9 ,]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class ModuleUnderLint:
    """A parsed source file plus the pre-computed ``# noqa`` map."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line number -> suppressed rule ids ("*" suppresses everything)
        self.noqa: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.noqa[lineno] = {"*"}
            else:
                self.noqa[lineno] = {
                    code.strip().upper() for code in codes.split(",") if code.strip()
                }

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")

    def suppressed(self, rule_id: str, line: int) -> bool:
        codes = self.noqa.get(line)
        return codes is not None and ("*" in codes or rule_id in codes)


class DataUnderLint:
    """A non-Python data file (YAML/JSON) plus its ``# noqa`` map.

    YAML comments use ``#`` too, so the suppression syntax carries over
    unchanged; JSON has no comments, so JSON findings are never
    suppressed in-file.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        #: line number -> suppressed rule ids ("*" suppresses everything)
        self.noqa: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.noqa[lineno] = {"*"}
            else:
                self.noqa[lineno] = {
                    code.strip().upper() for code in codes.split(",") if code.strip()
                }

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")

    def suppressed(self, rule_id: str, line: int) -> bool:
        codes = self.noqa.get(line)
        return codes is not None and ("*" in codes or rule_id in codes)


class LintRule:
    """Base class: subclass, set the class attributes, implement check()."""

    #: stable id, e.g. ``REP001`` (used in reports and ``# noqa``)
    rule_id: str = ""
    #: one-line description shown by ``--list-rules``
    description: str = ""
    #: path fragments inside the package tree the rule applies to;
    #: empty = the whole tree.  Files outside the tree always match.
    scopes: Tuple[str, ...] = ()
    #: does this rule also inspect non-Python data files?  The driver
    #: routes YAML/JSON files only to rules that opt in, via
    #: :meth:`check_data`.
    handles_data: bool = False

    def applies_to(self, posix_path: str) -> bool:
        if "repro/" not in posix_path:
            return True  # outside the package tree: all rules apply
        if not self.scopes:
            return True
        return any(scope in posix_path for scope in self.scopes)

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        raise NotImplementedError

    def check_data(self, data: DataUnderLint) -> Iterator[Finding]:
        """Inspect one data file (rules with ``handles_data`` only)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self, module: ModuleUnderLint, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def data_finding(
        self, data: DataUnderLint, message: str, line: int = 1
    ) -> Finding:
        return Finding(
            rule=self.rule_id, path=data.path, line=line, col=0, message=message
        )


#: the global rule registry, in registration order
RULES: List[LintRule] = []


def register(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Instantiate and register a rule class (decorator)."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} lacks a rule_id")
    if any(rule.rule_id == rule_class.rule_id for rule in RULES):
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    RULES.append(rule_class())
    return rule_class
