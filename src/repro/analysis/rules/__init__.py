"""Repo-specific lint rules.

Importing this package registers every built-in rule in
:data:`repro.analysis.rules.base.RULES`; the driver
(:mod:`repro.analysis.lint`) only has to import :data:`RULES`.
"""

from __future__ import annotations

from .allocation import NoHotLoopAllocationRule
from .base import (
    RULES,
    DataUnderLint,
    Finding,
    LintRule,
    ModuleUnderLint,
    register,
)
from .determinism import (
    NoSideChannelOutputRule,
    NoUnseededRandomAnywhereRule,
    NoUnseededRandomRule,
    NoWallClockRule,
)
from .encapsulation import NoForeignPrivateMutationRule
from .exports import MandatoryAllRule
from .floats import NoFloatEqualityRule
from .pickling import NoSimStatePicklingRule
from .population import NoPopulationComprehensionRule
from .scenario_files import ScenarioFileRule

__all__ = [
    "RULES",
    "DataUnderLint",
    "Finding",
    "LintRule",
    "ModuleUnderLint",
    "register",
    "NoWallClockRule",
    "NoUnseededRandomRule",
    "NoUnseededRandomAnywhereRule",
    "NoSideChannelOutputRule",
    "NoForeignPrivateMutationRule",
    "NoFloatEqualityRule",
    "MandatoryAllRule",
    "NoHotLoopAllocationRule",
    "NoPopulationComprehensionRule",
    "NoSimStatePicklingRule",
    "ScenarioFileRule",
]
