"""Determinism rules: no wall-clock time, no unseeded randomness.

Seeded runs must be bit-for-bit reproducible (ROADMAP's standing
requirement; the benchmark suite asserts shapes on deterministic runs).
Two things silently break that:

* **wall-clock reads** inside the simulation kernel or the theory core —
  simulated time is the only clock those layers may consult;
* **module-level RNG state** (``random.random()``, ``np.random.*``) —
  every random draw must come from a :class:`random.Random` (or seeded
  numpy generator) instance whose seed descends from
  ``SimulationConfig.seed``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = [
    "NoWallClockRule",
    "NoUnseededRandomRule",
    "NoUnseededRandomAnywhereRule",
    "NoSideChannelOutputRule",
]

_ALLOW_UNSEEDED = re.compile(r"#\s*rep:\s*allow-unseeded\b")
_ALLOW_WALLCLOCK = re.compile(r"#\s*rep:\s*allow-wallclock\b")

_WALLCLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_DATETIME_OWNERS = {"datetime", "date"}

#: the one blessed attribute of the ``random`` module: the seedable class
_SEEDED_RANDOM_ATTRS = {"Random", "SystemRandom"}
#: numpy.random attributes that produce (seedable) generator objects
_SEEDED_NP_RANDOM_ATTRS = {"Generator", "default_rng", "SeedSequence", "PCG64"}


def _terminal_name(node: ast.AST) -> str:
    """The right-most identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@register
class NoWallClockRule(LintRule):
    """No wall-clock reads inside the simulator kernel or theory core."""

    rule_id = "REP001"
    description = (
        "no wall-clock time (time.time, datetime.now, ...) inside repro/sim "
        "or repro/core: simulated bit-time is the only clock there"
    )
    scopes = ("repro/sim/", "repro/core/")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                owner = _terminal_name(node.value)
                if owner == "time" and node.attr in _WALLCLOCK_TIME_ATTRS:
                    yield self.finding(
                        module,
                        node,
                        f"wall-clock call time.{node.attr} breaks simulation "
                        "determinism; use the simulator clock",
                    )
                elif (
                    owner in _DATETIME_OWNERS
                    and node.attr in _WALLCLOCK_DATETIME_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"wall-clock call {owner}.{node.attr} breaks "
                        "simulation determinism; use the simulator clock",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALLCLOCK_TIME_ATTRS:
                        yield self.finding(
                            module,
                            node,
                            f"importing {alias.name} from time invites "
                            "wall-clock reads; use the simulator clock",
                        )


@register
class NoUnseededRandomRule(LintRule):
    """All randomness must flow through seeded generator instances."""

    rule_id = "REP002"
    description = (
        "no module-level RNG (random.random(), np.random.*): draw from a "
        "random.Random seeded via SimulationConfig.seed"
    )
    scopes = (
        "repro/sim/",
        "repro/core/",
        "repro/server/",
        "repro/client/",
        "repro/broadcast/",
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and not node.attr.startswith("_")
                    and node.attr not in _SEEDED_RANDOM_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"random.{node.attr} uses the shared module-level RNG; "
                        "use a random.Random instance seeded from the config",
                    )
                elif (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr == "random"
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id in ("np", "numpy")
                    and node.attr not in _SEEDED_NP_RANDOM_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{node.value.value.id}.random.{node.attr} uses numpy's "
                        "global RNG; use numpy.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _SEEDED_RANDOM_ATTRS:
                        yield self.finding(
                            module,
                            node,
                            f"importing {alias.name} from random pulls in the "
                            "shared module-level RNG; import random.Random and "
                            "seed it from the config",
                        )


@register
class NoUnseededRandomAnywhereRule(NoUnseededRandomRule):
    """REP002's detection, widened to the entire package tree.

    REP002 guards the layers where unseeded randomness breaks
    bit-reproducibility outright.  Everything else under ``src/repro/``
    (analysis, experiments, theory) must be deterministic too — results
    tables, certifier verdicts, and generated schedules all feed asserted
    artifacts.  Deliberate module-level draws are acknowledged with a
    ``# rep: allow-unseeded`` comment on the offending line.
    """

    rule_id = "REP007"
    description = (
        "no module-level RNG anywhere under src/repro/ (REP002's kernel "
        "scopes excluded); seed a generator instance from the config, or "
        "mark deliberate draws `# rep: allow-unseeded`"
    )
    scopes = ()

    def applies_to(self, posix_path: str) -> bool:
        if "repro/" in posix_path and any(
            scope in posix_path for scope in NoUnseededRandomRule.scopes
        ):
            return False  # REP002 already owns the kernel scopes
        return True

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        allowed = {
            lineno
            for lineno, line in enumerate(module.source.splitlines(), start=1)
            if _ALLOW_UNSEEDED.search(line)
        }
        for finding in super().check(module):
            if finding.line not in allowed:
                yield finding


@register
class NoSideChannelOutputRule(NoWallClockRule):
    """Observability goes through ``repro.obs``, nowhere else.

    PR 9 gave the simulator a sanctioned observability layer: spans via
    the ``Tracer`` handle, tallies via ``MetricsCollector`` / the
    telemetry registry, wall-clock phase timing via ``PhaseProfiler``
    (which lives in ``repro/obs/`` and is therefore outside this rule's
    scope).  Ad-hoc ``print()`` debugging or direct wall-clock reads in
    the simulation kernel or the server are side channels around it —
    prints corrupt CLI/bench output that tests parse, and wall-clock
    reads break bit-reproducibility (REP001's concern, extended here to
    ``repro/server/``).  Deliberate exceptions are acknowledged with a
    ``# rep: allow-wallclock`` comment on the offending line.
    """

    rule_id = "REP010"
    description = (
        "no print() or wall-clock reads inside repro/sim or repro/server: "
        "emit spans/metrics via repro.obs (PhaseProfiler owns the wall "
        "clock); mark deliberate exceptions `# rep: allow-wallclock`"
    )
    scopes = ("repro/sim/", "repro/server/")

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        allowed = {
            lineno
            for lineno, line in enumerate(module.source.splitlines(), start=1)
            if _ALLOW_WALLCLOCK.search(line)
        }
        for finding in self._raw_findings(module):
            if finding.line not in allowed:
                yield finding

    def _raw_findings(self, module: ModuleUnderLint) -> Iterator[Finding]:
        yield from super().check(module)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in the simulation/server layer is a side "
                    "channel around repro.obs; emit a span or a metric "
                    "instead",
                )
