"""Pickling rule: live simulation state must not cross process bounds.

The sharded and replay executors are built on a narrow serialization
contract: what ships to a pool worker is a :class:`SimulationConfig`
(frozen, declarative), a :class:`TimelineHandle` (a *name* for a
shared-memory arena, no payload), and what ships back is a
:class:`MetricsCollector` plus scalars.  A live
:class:`BroadcastSimulation` — its :class:`Simulator` event queue,
:class:`BroadcastServer`, :class:`SharedState`, fault runtime — is none
of those things: pickling one either fails outright (generator-based
processes don't pickle) or, worse, silently forks divergent copies of
state whose whole point is to be authoritative and singular.

The rule flags calls that cross a serialization boundary —
``pool.submit(...)`` / ``pool.map(...)`` / ``pickle.dumps(...)`` and
friends — when an argument names live simulation state, either by repo
naming convention (``sim``, ``simulation``, ``simulator``, ``server``,
``state``) or by constructing/naming one of the stateful classes
directly.  A boundary call that is genuinely safe (e.g. a *finished*,
quiesced object being archived) is acknowledged with
``# rep: allow-pickle`` on the call's first line or the line above —
the escape states "this object no longer owns live state", which is the
fact a reviewer must check.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = ["NoSimStatePicklingRule"]

#: argument names that (by repo convention) hold live simulation state
_FORBIDDEN_NAMES = frozenset(
    {"sim", "simulation", "simulator", "server", "state"}
)

#: classes whose instances own live, unpicklable or singular state
_FORBIDDEN_CLASSES = frozenset(
    {
        "BroadcastSimulation",
        "BroadcastServer",
        "Simulator",
        "SharedState",
        "FaultRuntime",
        "CohortExecutor",
    }
)

#: attribute-call names that mark a serialization boundary
_BOUNDARY_METHODS = frozenset(
    {"submit", "map", "starmap", "imap", "imap_unordered",
     "apply_async", "dumps", "dump"}
)

_ALLOW = re.compile(r"#\s*rep:\s*allow-pickle\b")


def _leaf_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a simple name or attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _offending_name(arg: ast.AST) -> Optional[str]:
    """The first live-state identifier inside ``arg``, if any.

    Walks the whole argument expression so state smuggled inside a
    tuple, list or constructor call (``(config, self.server)``,
    ``BroadcastSimulation(config)``) is still caught.
    """
    for node in ast.walk(arg):
        name = _leaf_name(node)
        if name in _FORBIDDEN_NAMES or name in _FORBIDDEN_CLASSES:
            return name
    return None


@register
class NoSimStatePicklingRule(LintRule):
    """No live simulation state across pickle/process boundaries."""

    rule_id = "REP009"
    description = (
        "no live simulation state (BroadcastSimulation, Simulator, "
        "server, SharedState) across pickle/process boundaries; only "
        "configs, MetricsCollector and arena handles may cross — or "
        "mark quiesced objects `# rep: allow-pickle`"
    )
    scopes = ()  # the whole tree: every boundary call is in scope

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        allowed_lines = {
            lineno
            for lineno, line in enumerate(module.source.splitlines(), start=1)
            if _ALLOW.search(line)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _BOUNDARY_METHODS
            ):
                continue
            offender = None
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                offender = _offending_name(arg)
                if offender is not None:
                    break
            if offender is None:
                continue
            last_line = getattr(node, "end_lineno", node.lineno)
            span = range(node.lineno - 1, last_line + 1)
            if any(line in allowed_lines for line in span):
                continue
            yield self.finding(
                module,
                node,
                f"'{offender}' names live simulation state crossing a "
                f"serialization boundary ('{func.attr}'); ship the "
                "config, a MetricsCollector, or a TimelineHandle "
                "instead, or mark a quiesced object "
                "`# rep: allow-pickle`",
            )
