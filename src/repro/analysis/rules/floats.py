"""Float-equality rule.

Validator read conditions compare integer cycle timestamps; a float
literal slipping into an ``==``/``!=`` there (or anywhere in the
protocol stack) is almost always a latent bug — bit-time arithmetic
accumulates rounding, so exact float comparison silently flips protocol
decisions.  Compare integers, or use an explicit tolerance.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = ["NoFloatEqualityRule"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # unary minus on a float literal: -1.5
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        return True
    return False


@register
class NoFloatEqualityRule(LintRule):
    """No ``==`` / ``!=`` against float literals."""

    rule_id = "REP004"
    description = (
        "no float-literal equality (== / != with a float operand): exact "
        "float comparison flips validator decisions; compare ints or use a "
        "tolerance"
    )
    scopes = ()  # whole tree

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        module,
                        node,
                        "equality comparison against a float literal; exact "
                        "float == is unreliable in validators — compare "
                        "integers or use an explicit tolerance",
                    )
                    break
