"""Allocation rule: no per-event object construction in simulation loops.

The simulation kernel steps generator processes millions of times per
run; a constructor call inside a process's ``while True`` body allocates
one object *per simulated event*, and those allocations — not the
protocol arithmetic — dominate wall-clock time at large client
populations (the motivation for the cohort executor).  This rule flags
CapWord constructor calls inside ``while True`` bodies of generator
functions under ``repro/sim/``.

Constructions whose arguments are loop-invariant should be hoisted
before the loop (the event objects are stateless descriptors, so one
instance can be yielded forever).  Constructions that genuinely vary per
iteration are acknowledged with a ``# rep: allow-alloc`` comment on the
construction's line — the escape hatch states "this allocation is
per-event on purpose", which is exactly the information a reviewer
needs.  ``raise CapWord(...)`` never counts: an exception leaves the
loop.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = ["NoHotLoopAllocationRule"]

_CAPWORD = re.compile(r"^[A-Z][A-Za-z0-9]*[a-z][A-Za-z0-9]*$")
_ALLOW = re.compile(r"#\s*rep:\s*allow-alloc\b")


def _is_generator(func: ast.AST) -> bool:
    """Does ``func`` yield (ignoring nested function definitions)?"""
    for node in _walk_same_function(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_same_function(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_while_true(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.While)
        and isinstance(node.test, ast.Constant)
        and node.test.value is True
    )


def _raised_calls(tree: ast.AST) -> Set[int]:
    """id()s of Call nodes that are the immediate operand of ``raise``."""
    raised: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            raised.add(id(node.exc))
    return raised


@register
class NoHotLoopAllocationRule(LintRule):
    """No per-event CapWord construction in sim process loops."""

    rule_id = "REP006"
    description = (
        "no per-event object allocation inside `while True` bodies of "
        "simulation generator processes; hoist loop-invariant "
        "constructions, mark intentional ones `# rep: allow-alloc`"
    )
    scopes = ("repro/sim/",)

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        allowed_lines = {
            lineno
            for lineno, line in enumerate(module.source.splitlines(), start=1)
            if _ALLOW.search(line)
        }
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(func):
                continue
            raised = _raised_calls(func)
            for loop in _walk_same_function(func):
                if not _is_while_true(loop):
                    continue
                for node in ast.walk(loop):
                    if (
                        not isinstance(node, ast.Call)
                        or not isinstance(node.func, ast.Name)
                        or not _CAPWORD.match(node.func.id)
                        or id(node) in raised
                    ):
                        continue
                    last_line = getattr(node, "end_lineno", node.lineno)
                    span = range(node.lineno, last_line + 1)
                    if any(line in allowed_lines for line in span):
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(...) allocates per event inside a "
                        "simulation hot loop; hoist it before the loop or "
                        "mark the line `# rep: allow-alloc`",
                    )
