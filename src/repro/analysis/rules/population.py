"""Population rule: no O(population) comprehensions in shard hot paths.

The sharded/analytic executors exist so that cost scales with *events*,
not with the client population: a 10⁶-client run must never materialise
a list with one element per client on a per-slot or per-cycle basis.  A
comprehension over a population-named iterable (``clients``,
``members``, ``survivors``, ``readers``, ``population``, ``cohort``)
inside the executor hot-path modules is exactly that trap — it is O(n)
work *and* O(n) transient allocation each time it runs, and it hides
inside one innocuous line.

Generator expressions are exempt (they stream; the consumer decides the
cost).  Loops that are genuinely bounded — a startup scan that runs
once, or a bucket's members rather than the whole population — are
acknowledged with ``# rep: allow-client-loop`` on the comprehension's
first line or the line above it; the escape states "this loop's size is
not the population", which is the fact a reviewer must check.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .base import Finding, LintRule, ModuleUnderLint, register

__all__ = ["NoPopulationComprehensionRule"]

#: iterable names that (by repo convention) hold per-client state
_POPULATION_NAMES = frozenset(
    {"clients", "members", "survivors", "readers", "population", "cohort"}
)
_ALLOW = re.compile(r"#\s*rep:\s*allow-client-loop\b")

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp)


def _iterable_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a comprehension's iterable, if simple.

    Matches both ``survivors`` and ``self.clients``; call results like
    ``range(n)`` have no stable name and are left to human review.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class NoPopulationComprehensionRule(LintRule):
    """No list/set/dict comprehension over per-client populations."""

    rule_id = "REP008"
    description = (
        "no O(population) list/set/dict comprehensions over per-client "
        "iterables in shard/cohort hot-path modules; stream with a "
        "generator or mark bounded loops `# rep: allow-client-loop`"
    )
    scopes = (
        "repro/sim/cohort.py",
        "repro/sim/shard.py",
        "repro/sim/analytic.py",
    )

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        allowed_lines = {
            lineno
            for lineno, line in enumerate(module.source.splitlines(), start=1)
            if _ALLOW.search(line)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, _COMPREHENSIONS):
                continue
            names = [
                name
                for name in (
                    _iterable_name(gen.iter) for gen in node.generators
                )
                if name in _POPULATION_NAMES
            ]
            if not names:
                continue
            last_line = getattr(node, "end_lineno", node.lineno)
            span = range(node.lineno - 1, last_line + 1)
            if any(line in allowed_lines for line in span):
                continue
            yield self.finding(
                module,
                node,
                f"comprehension over per-client iterable "
                f"'{names[0]}' materialises O(population) state in a "
                "shard hot path; stream it, or mark the loop "
                "`# rep: allow-client-loop` if its size is bounded",
            )
