"""Driver for the repo-specific lint pass.

Usage::

    python -m repro.analysis.lint [paths...]      # default: src/repro
    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint --json src/repro

Walks the given files/directories, runs every registered rule whose
scope matches each module, filters ``# noqa`` suppressions, and prints
sorted findings as ``path:line:col: REPxxx message``.  Exit status is 1
when any finding survives, 2 on usage/parse errors, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .rules import RULES, DataUnderLint, Finding, ModuleUnderLint

__all__ = ["collect_files", "lint_file", "lint_paths", "main"]

_DEFAULT_PATHS = ("src/repro",)

_DATA_SUFFIXES = (".yaml", ".yml", ".json")


def _is_scenario_data(path: str) -> bool:
    posix = path.replace("\\", "/")
    return posix.endswith(_DATA_SUFFIXES) and "scenarios/" in posix


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of lintable files.

    ``.py`` everywhere, plus scenario data files (YAML/JSON under a
    ``scenarios/`` directory) for the data-file rules (REP011).
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    full = os.path.join(dirpath, filename)
                    if filename.endswith(".py") or _is_scenario_data(full):
                        files.append(full)
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(path)
    return sorted(dict.fromkeys(files))


def lint_file(path: str) -> List[Finding]:
    """Run all applicable rules over one file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    findings: List[Finding] = []
    if path.replace("\\", "/").endswith(_DATA_SUFFIXES):
        data = DataUnderLint(path, source)
        for rule in RULES:
            if not rule.handles_data or not rule.applies_to(data.posix_path):
                continue
            for finding in rule.check_data(data):
                if data.suppressed(finding.rule, finding.line):
                    continue
                findings.append(finding)
        return findings
    module = ModuleUnderLint(path, source)
    for rule in RULES:
        if not rule.applies_to(module.posix_path):
            continue
        for finding in rule.check(module):
            if module.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    return findings


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location."""
    findings: List[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path))
    return sorted(findings, key=Finding.sort_key)


def _print_rules() -> None:
    for rule in RULES:
        print(f"{rule.rule_id}  {rule.description}")
        if rule.scopes:
            print(f"        scope: {', '.join(rule.scopes)}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-specific determinism/encapsulation lint pass",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}: {exc.msg}", file=sys.stderr)
        return 2

    if args.json:
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        checked = len(collect_files(args.paths))
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {checked} files")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
