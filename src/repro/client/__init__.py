"""Client substrate: transaction runtimes (read-only and update) and the
quasi-cache for weak currency requirements."""

from .cache import CacheEntry, QuasiCache
from .session import ClientSession, ConsistencyAbort, SessionTransaction
from .runtime import (
    ClientUpdateTransactionRuntime,
    ReadOnlyTransactionRuntime,
    ReadOutcome,
    TransactionAborted,
)

__all__ = [
    "ReadOnlyTransactionRuntime",
    "ClientUpdateTransactionRuntime",
    "ReadOutcome",
    "TransactionAborted",
    "QuasiCache",
    "CacheEntry",
    "ClientSession",
    "SessionTransaction",
    "ConsistencyAbort",
]
