"""Client-side transaction runtimes (Sec. 3.2.1, "Client Functionality").

The runtimes are *passive* state machines: the caller (a simulation
process, an example script, a test) decides when a read happens and hands
over the :class:`repro.broadcast.BroadcastCycle` the read observes; the
runtime applies the protocol validator and accumulates state.  This keeps
one implementation of the protocol logic shared by the simulator, the
examples and the theory cross-checks.

* :class:`ReadOnlyTransactionRuntime` — validates each read off the air
  (or from cache) and never needs the uplink: commit is a no-op.
* :class:`ClientUpdateTransactionRuntime` — additionally buffers local
  writes and, at commit, produces the
  :class:`repro.server.UpdateSubmission` to ship to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..broadcast.program import BroadcastCycle, ObjectVersion
from ..core.validators import ControlSnapshot, ReadValidator
from ..server.validation import UpdateSubmission

__all__ = [
    "ReadOutcome",
    "TransactionAborted",
    "ReadOnlyTransactionRuntime",
    "ClientUpdateTransactionRuntime",
]


class TransactionAborted(Exception):
    """Raised by strict helpers when a read fails validation."""

    def __init__(self, tid: str, obj: int, cycle: int):
        super().__init__(f"{tid}: read of object {obj} rejected at cycle {cycle}")
        self.tid = tid
        self.obj = obj
        self.cycle = cycle


@dataclass(frozen=True)
class ReadOutcome:
    """Result of delivering one broadcast read to a runtime."""

    ok: bool
    obj: int
    cycle: int
    version: Optional[ObjectVersion] = None
    #: the failure was the client-side staleness guard (a wrap-gap abort),
    #: not the protocol's read condition — fault metrics key off this
    stale: bool = False

    @property
    def value(self) -> object:
        return self.version.value if self.version else None


class ReadOnlyTransactionRuntime:
    """Executes a read-only program object by object.

    The program is the ordered tuple of object ids to read.  A failed
    validation leaves the runtime in an aborted state; :meth:`restart`
    begins a fresh attempt of the same program (the validator's ``R_t``
    is cleared too).
    """

    def __init__(
        self,
        tid: str,
        objects: Sequence[int],
        validator: ReadValidator,
        *,
        staleness_window: Optional[int] = None,
    ):
        if not objects:
            raise ValueError("a transaction must read at least one object")
        if staleness_window is not None and staleness_window < 1:
            raise ValueError("staleness_window must be >= 1")
        self.tid = tid
        self.objects: Tuple[int, ...] = tuple(objects)
        self.validator = validator
        self.attempt = 0
        self.aborted = False
        #: doze/wrap guard: with modulo timestamps a client that rejoins
        #: after missing ``staleness_window`` (= window - 1, the paper's
        #: ``max_cycles``) cycles can no longer trust re-anchored control
        #: entries against its retained reads; :meth:`deliver` then aborts
        #: conservatively instead of validating.  ``None`` disables it.
        self.staleness_window = staleness_window
        #: most recent broadcast cycle delivered to this runtime off the
        #: air; survives :meth:`restart` (the radio's knowledge, not the
        #: transaction attempt's)
        self.last_heard_cycle: Optional[int] = None
        self._index = 0
        self._versions: List[ObjectVersion] = []
        self.validator.begin()

    # ------------------------------------------------------------------
    @property
    def is_done(self) -> bool:
        return self._index >= len(self.objects) and not self.aborted

    @property
    def next_object(self) -> Optional[int]:
        if self.aborted or self._index >= len(self.objects):
            return None
        return self.objects[self._index]

    @property
    def reads(self) -> Tuple[Tuple[int, int], ...]:
        """``R_t``: (object, cycle) pairs validated so far."""
        return tuple(self.validator.reads)

    @property
    def versions(self) -> Tuple[ObjectVersion, ...]:
        """The committed versions observed, in program order."""
        return tuple(self._versions)

    @property
    def values(self) -> Dict[int, object]:
        return {v.obj: v.value for v in self._versions}

    # ------------------------------------------------------------------
    def deliver(self, broadcast: BroadcastCycle) -> ReadOutcome:
        """Perform the pending read against ``broadcast``.

        Validates with the control snapshot; on success records the value
        and advances; on failure marks the transaction aborted.
        """
        obj = self.next_object
        if obj is None:
            raise RuntimeError(f"{self.tid}: no pending read")
        snapshot = broadcast.snapshot
        window = self.staleness_window
        if window is not None:
            last = self.last_heard_cycle
            if last is None or snapshot.cycle > last:
                self.last_heard_cycle = snapshot.cycle
            if self.validator.records:
                first = self.validator.first_read_cycle
                assert first is not None
                # conservative abort, two triggers: the client dozed
                # through >= window cycles since its last delivery, or the
                # attempt's read span exceeds the window (> max_cycles) —
                # past either bound, re-anchored control entries can no
                # longer be compared against the retained reads
                if (last is not None and snapshot.cycle - last >= window) or (
                    snapshot.cycle - first > window
                ):
                    self.aborted = True
                    return ReadOutcome(False, obj, snapshot.cycle, stale=True)
        if self.validator.validate_read(obj, snapshot):
            version = broadcast.version(obj)
            self._versions.append(version)
            self._index += 1
            return ReadOutcome(True, obj, snapshot.cycle, version)
        self.aborted = True
        return ReadOutcome(False, obj, snapshot.cycle)

    def apply_read_ok(self, broadcast: BroadcastCycle) -> None:
        """Record the pending read as delivered, validation already done.

        The cohort executor validates a whole slot bucket with one call
        to :func:`repro.core.validators.validate_read_batch`, which also
        records the successful reads into each validator's ``R_t``; this
        applies the per-client consequences — exactly what
        :meth:`deliver` does after ``validate_read`` returned true —
        without allocating a :class:`ReadOutcome` on the hot path.
        """
        self._versions.append(broadcast.version(self.objects[self._index]))
        self._index += 1

    def apply_read_ok_untraced(self) -> int:
        """:meth:`apply_read_ok` minus the version retention.

        For drivers that never inspect :attr:`versions`/:attr:`values`
        (the cohort executor with tracing disabled) the version lookup
        and append are pure overhead; advancing the program counter is
        the only observable effect.  Returns the new program counter so
        hot callers can test for completion without a second attribute
        round-trip.
        """
        index = self._index + 1
        self._index = index
        return index

    def deliver_prevalidated(
        self, broadcast: BroadcastCycle, ok: bool
    ) -> ReadOutcome:
        """Apply a read whose validation already ran out-of-band.

        Outcome-object variant of :meth:`apply_read_ok` (a failed
        prevalidated read marks the transaction aborted, as
        :meth:`deliver` would).
        """
        obj = self.next_object
        if obj is None:
            raise RuntimeError(f"{self.tid}: no pending read")
        snapshot = broadcast.snapshot
        if ok:
            version = broadcast.version(obj)
            self._versions.append(version)
            self._index += 1
            return ReadOutcome(True, obj, snapshot.cycle, version)
        self.aborted = True
        return ReadOutcome(False, obj, snapshot.cycle)

    def deliver_or_raise(self, broadcast: BroadcastCycle) -> ObjectVersion:
        outcome = self.deliver(broadcast)
        if not outcome.ok:
            raise TransactionAborted(self.tid, outcome.obj, outcome.cycle)
        assert outcome.version is not None
        return outcome.version

    def commit(self) -> Tuple[Tuple[int, int], ...]:
        """Commit (free for read-only transactions).  Returns ``R_t``."""
        if self.aborted:
            raise TransactionAborted(self.tid, -1, -1)
        if not self.is_done:
            raise RuntimeError(f"{self.tid}: {len(self.objects) - self._index} reads pending")
        return self.reads

    def restart(self) -> None:
        """Begin a fresh attempt of the same program."""
        self.attempt += 1
        self.aborted = False
        self._index = 0
        self._versions = []
        self.validator.begin()


class ClientUpdateTransactionRuntime(ReadOnlyTransactionRuntime):
    """A client update transaction: reads off the air, writes locally.

    Writes are buffered ("performed on a local copy ... no checks are
    made"); :meth:`submission` packages reads-with-cycles and writes for
    the server's backward validation.  Abort discards the local copies.
    """

    def __init__(
        self,
        tid: str,
        objects: Sequence[int],
        validator: ReadValidator,
        *,
        staleness_window: Optional[int] = None,
    ):
        super().__init__(tid, objects, validator, staleness_window=staleness_window)
        self._writes: Dict[int, object] = {}

    @property
    def writes(self) -> Dict[int, object]:
        return dict(self._writes)

    def write(self, obj: int, value: object) -> None:
        if self.aborted:
            raise TransactionAborted(self.tid, obj, -1)
        self._writes[obj] = value

    def submission(self) -> UpdateSubmission:
        """The commit-time uplink message (Sec. 3.2.1 commit handling)."""
        if self.aborted:
            raise TransactionAborted(self.tid, -1, -1)
        if not self.is_done:
            raise RuntimeError(f"{self.tid}: reads pending; cannot submit")
        return UpdateSubmission(
            self.tid,
            reads=self.reads,
            writes=tuple(sorted(self._writes.items())),
        )

    def restart(self) -> None:
        super().restart()
        self._writes = {}
