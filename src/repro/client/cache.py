"""Quasi-caching for weak currency requirements (Sec. 3.3).

If a client only needs data current to within ``T`` time units, objects
read off the broadcast may be cached and served locally until their
currency expires — *without any communication*: invalidation is purely
local.  To keep transactions mutually consistent when they mix cached and
fresh reads, each cache entry stores the control information that
accompanied the object when it was cached (for F-Matrix, the object's
matrix column; we retain the whole immutable per-cycle snapshot, of which
a real client would keep just the relevant column/vector).  A cached read
is then validated through the *same* read-condition code path as an
off-air read, anchored at the cached cycle.

Currency bounds are per client *and* per object ("the invalidation
interval can be tailored on a per client per object basis").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..broadcast.program import BroadcastCycle, ObjectVersion
from ..core.validators import ControlSnapshot

__all__ = ["CacheEntry", "QuasiCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One cached object version plus its validation context."""

    version: ObjectVersion
    snapshot: ControlSnapshot
    #: bit-time at which the entry was cached (start of staleness clock)
    cached_at: float

    @property
    def obj(self) -> int:
        return self.version.obj

    @property
    def cached_cycle(self) -> int:
        return self.snapshot.cycle

    def as_broadcast(self) -> BroadcastCycle:
        """Present the entry as a one-object broadcast for the runtime.

        The runtime indexes ``versions`` by object id, so the entry sits
        at its own position only — accessing any *other* object through a
        cache-entry broadcast is a bug and raises ``IndexError`` with the
        offending ids (objects below the cached id used to be padded with
        ``None``, which surfaced later as an opaque ``AttributeError``).
        """
        versions = tuple(
            self.version if i == self.version.obj else None  # type: ignore[misc]
            for i in range(self.version.obj + 1)
        )
        return _CacheEntryCycle(self.snapshot.cycle, versions, self.snapshot)


class _CacheEntryCycle(BroadcastCycle):
    """A one-object broadcast view over a cache entry.

    Only the cached object is present; :meth:`version` rejects every
    other id eagerly so a mis-indexed access fails at the read site with
    a clear message instead of handing a ``None`` downstream.
    """

    def version(self, obj: int) -> ObjectVersion:
        cached = len(self.versions) - 1
        if obj != cached:
            raise IndexError(
                f"cache-entry broadcast holds only object {cached}; "
                f"object {obj} must be read off the air"
            )
        return self.versions[cached]


class QuasiCache:
    """Per-client object cache with local, currency-based invalidation."""

    def __init__(
        self,
        default_currency_bound: float,
        *,
        capacity: Optional[int] = None,
    ):
        if default_currency_bound < 0:
            raise ValueError("currency bound must be non-negative")
        self.default_currency_bound = default_currency_bound
        self.capacity = capacity
        self._entries: Dict[int, CacheEntry] = {}
        self._bounds: Dict[int, float] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def set_currency_bound(self, obj: int, bound: float) -> None:
        """Tailor the invalidation interval for one object."""
        if bound < 0:
            raise ValueError("currency bound must be non-negative")
        self._bounds[obj] = bound

    def currency_bound(self, obj: int) -> float:
        return self._bounds.get(obj, self.default_currency_bound)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: int) -> bool:
        return obj in self._entries

    # ------------------------------------------------------------------
    def insert(self, broadcast: BroadcastCycle, obj: int, now: float) -> CacheEntry:
        """Cache an object just read from a broadcast cycle.

        At capacity, entries past their currency bound are dropped first
        — an expired entry can never serve another hit, so evicting a
        still-fresh one while a dead one survives (until a later lookup
        happens to touch it) wastes cache space.  Only if every resident
        entry is still fresh does the capacity policy fall back to
        evicting the stalest (oldest ``cached_at``).
        """
        entry = CacheEntry(broadcast.version(obj), broadcast.snapshot, now)
        if (
            self.capacity is not None
            and obj not in self._entries
            and len(self._entries) >= self.capacity
        ):
            self.expire(now)
            if len(self._entries) >= self.capacity:
                # evict the stalest entry (oldest cached_at) — [2]-style policy
                evict = min(self._entries.values(), key=lambda e: e.cached_at)
                del self._entries[evict.obj]
        self._entries[obj] = entry
        return entry

    def lookup(self, obj: int, now: float) -> Optional[CacheEntry]:
        """A fresh-enough entry, or None.  Expired entries are dropped."""
        entry = self._entries.get(obj)
        if entry is None:
            self.misses += 1
            return None
        if now - entry.cached_at > self.currency_bound(obj):
            del self._entries[obj]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def evict(self, obj: int) -> bool:
        """Drop one entry (e.g. after it was implicated in a failed
        validation — keeping it would just re-abort the retry)."""
        return self._entries.pop(obj, None) is not None

    def expire(self, now: float) -> int:
        """Drop every entry past its currency bound; returns count dropped."""
        stale = [
            obj
            for obj, entry in self._entries.items()
            if now - entry.cached_at > self.currency_bound(obj)
        ]
        for obj in stale:
            del self._entries[obj]
        return len(stale)
