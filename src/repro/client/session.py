"""High-level client sessions: the API a downstream application uses.

The runtimes in :mod:`repro.client.runtime` are deliberately low-level
(the simulator drives them event by event).  Applications that just want
"give me a consistent view of these objects off the current broadcast"
get :class:`ClientSession`:

    session = ClientSession(make_validator("f-matrix"))
    session.observe(broadcast)               # each cycle heard

    with session.read_only("audit") as txn:
        high_bid = txn.read(HIGH_BID)
        count = txn.read(BID_COUNT)
    # exiting the block commits; ConsistencyAbort raises out of it

    with session.update("bid") as txn:
        current = txn.read(HIGH_BID)
        txn.write(HIGH_BID, current + 5)
    outcome = server.submit_client_update(txn.submission())

A rejected read raises :class:`ConsistencyAbort` inside the block;
:meth:`ClientSession.run_with_retries` wraps the whole closure with the
restart loop the paper's clients perform.  The session also owns an
optional :class:`repro.client.cache.QuasiCache` and consults it before
the broadcast, preserving the weak-currency semantics of Sec. 3.3.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TypeVar

from ..broadcast.program import BroadcastCycle
from ..core.validators import ReadValidator
from .cache import QuasiCache
from .runtime import ClientUpdateTransactionRuntime, ReadOnlyTransactionRuntime

__all__ = ["ConsistencyAbort", "SessionTransaction", "ClientSession"]

T = TypeVar("T")


class ConsistencyAbort(Exception):
    """A read failed protocol validation; restart the transaction."""

    def __init__(self, tid: str, obj: int):
        super().__init__(f"{tid}: read of object {obj} failed validation")
        self.tid = tid
        self.obj = obj


class SessionTransaction:
    """A dynamically scoped transaction: reads declared as they happen.

    Unlike the runtimes (whose read *program* is fixed up front), a
    session transaction discovers its reads dynamically — matching how
    an application actually behaves — and the session supplies the
    broadcast image for each one.
    """

    def __init__(self, session: "ClientSession", tid: str, *, update: bool):
        self._session = session
        self.tid = tid
        self.is_update = update
        self._validator = session.validator
        self._values: Dict[int, object] = {}
        self._writes: Dict[int, object] = {}
        self._reads: list = []
        self.committed = False
        self.aborted = False

    # ------------------------------------------------------------------
    def read(self, obj: int) -> object:
        """Read ``obj`` with protocol validation; raises on rejection."""
        if self.committed or self.aborted:
            raise RuntimeError(f"{self.tid}: transaction already finished")
        if obj in self._values:  # the model reads an object once
            return self._values[obj]
        if obj in self._writes:
            return self._writes[obj]
        broadcast = self._session._source_for(obj)
        if not self._validator.validate_read(obj, broadcast.snapshot):
            self.aborted = True
            raise ConsistencyAbort(self.tid, obj)
        version = broadcast.version(obj)
        self._values[obj] = version.value
        self._reads.append((obj, broadcast.snapshot.cycle))
        return version.value

    def write(self, obj: int, value: object) -> None:
        if not self.is_update:
            raise RuntimeError(f"{self.tid}: read-only transaction cannot write")
        if self.committed or self.aborted:
            raise RuntimeError(f"{self.tid}: transaction already finished")
        self._writes[obj] = value

    @property
    def reads(self):
        return tuple(self._reads)

    def submission(self):
        """The uplink message for an update transaction (after commit)."""
        from ..server.validation import UpdateSubmission

        if not self.is_update:
            raise RuntimeError("read-only transactions submit nothing")
        return UpdateSubmission(
            self.tid, reads=self.reads, writes=tuple(sorted(self._writes.items()))
        )

    # ------------------------------------------------------------------
    def __enter__(self) -> "SessionTransaction":
        self._validator.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.committed = True
        else:
            self.aborted = True
        return False  # propagate ConsistencyAbort and friends


class ClientSession:
    """Owns the validator, the latest broadcast, and an optional cache."""

    def __init__(
        self,
        validator: ReadValidator,
        *,
        cache: Optional[QuasiCache] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.validator = validator
        self.cache = cache
        self._clock = clock or (lambda: 0.0)
        self._broadcast: Optional[BroadcastCycle] = None
        self._serial = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    def observe(self, broadcast: BroadcastCycle) -> None:
        """Install the cycle currently on the air."""
        self._broadcast = broadcast

    def prefetch(self, obj: int) -> None:
        """Cache an object (and its control slice) from the current cycle."""
        if self.cache is None:
            raise RuntimeError("session has no cache")
        if self._broadcast is None:
            raise RuntimeError("no broadcast observed yet")
        self.cache.insert(self._broadcast, obj, self._clock())

    def _source_for(self, obj: int) -> BroadcastCycle:
        if self.cache is not None:
            entry = self.cache.lookup(obj, self._clock())
            if entry is not None:
                return entry.as_broadcast()
        if self._broadcast is None:
            raise RuntimeError("no broadcast observed yet")
        return self._broadcast

    # ------------------------------------------------------------------
    def read_only(self, name: Optional[str] = None) -> SessionTransaction:
        self._serial += 1
        return SessionTransaction(
            self, name or f"ro{self._serial}", update=False
        )

    def update(self, name: Optional[str] = None) -> SessionTransaction:
        self._serial += 1
        return SessionTransaction(self, name or f"up{self._serial}", update=True)

    # ------------------------------------------------------------------
    def run_with_retries(
        self,
        body: Callable[[SessionTransaction], T],
        *,
        update: bool = False,
        max_attempts: int = 100,
        name: Optional[str] = None,
    ) -> T:
        """Run ``body`` in a transaction, restarting on consistency aborts.

        The caller is expected to :meth:`observe` fresh cycles between
        attempts (e.g. from its broadcast loop); with a static broadcast
        a rejected read would just re-reject, so the loop raises after
        ``max_attempts``.
        """
        for _attempt in range(max_attempts):
            txn = self.update(name) if update else self.read_only(name)
            try:
                with txn:
                    return body(txn)
            except ConsistencyAbort:
                self.restarts += 1
                continue
        raise RuntimeError(f"transaction did not commit in {max_attempts} attempts")
