"""Workload generators (Table 1 of the paper).

* :class:`ServerWorkload` — update transactions completing at the server:
  each has ``length`` operations, each operation is a read with
  probability ``read_probability`` (else a write), objects drawn uniformly
  without replacement (the formal model reads/writes an object at most
  once per transaction).
* :class:`ClientWorkload` — read-only client transactions: ``length``
  distinct objects drawn uniformly.
* :class:`ClientUpdateWorkload` — the client-update extension: a read-only
  prefix followed by writes to a subset of read objects plus optionally
  fresh ones (exercises the uplink/validation path).

All generators draw from a private :class:`random.Random` stream so runs
are reproducible and independent of each other.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ServerTransactionSpec",
    "ServerWorkload",
    "ClientWorkload",
    "ClientUpdateSpec",
    "ClientUpdateWorkload",
]


@dataclass(frozen=True)
class ServerTransactionSpec:
    """One generated server update transaction."""

    tid: str
    read_set: Tuple[int, ...]
    write_set: Tuple[int, ...]

    @property
    def is_update(self) -> bool:
        return bool(self.write_set)


class ServerWorkload:
    """Uniform-access server update transactions (Table 1 defaults)."""

    def __init__(
        self,
        num_objects: int,
        *,
        length: int = 8,
        read_probability: float = 0.5,
        seed: int = 0,
        tid_prefix: str = "s",
    ):
        if length < 1:
            raise ValueError("length must be >= 1")
        if not 0.0 <= read_probability <= 1.0:
            raise ValueError("read_probability must be in [0, 1]")
        if length > num_objects:
            raise ValueError("length cannot exceed num_objects (no repeats)")
        self.num_objects = num_objects
        self.length = length
        self.read_probability = read_probability
        self._rng = random.Random(seed)
        self._counter = itertools.count(1)
        self._tid_prefix = tid_prefix

    def next_transaction(self) -> ServerTransactionSpec:
        objects = self._rng.sample(range(self.num_objects), self.length)
        reads: List[int] = []
        writes: List[int] = []
        for obj in objects:
            if self._rng.random() < self.read_probability:
                reads.append(obj)
            else:
                writes.append(obj)
        tid = f"{self._tid_prefix}{next(self._counter)}"
        return ServerTransactionSpec(tid, tuple(reads), tuple(writes))

    def __iter__(self) -> Iterator[ServerTransactionSpec]:
        while True:
            yield self.next_transaction()


class ClientWorkload:
    """Read-only client transactions: uniform or hot/cold-skewed access.

    With ``access_skew > 0``, each read targets the *hot set* (the first
    ``ceil(hot_fraction · n)`` objects) with that probability and the cold
    remainder otherwise — the classic broadcast-disk access pattern that
    multi-speed layouts exploit.  ``access_skew = 0`` (the paper's
    setting) is plain uniform sampling.
    """

    def __init__(
        self,
        num_objects: int,
        *,
        length: int = 4,
        seed: int = 0,
        tid_prefix: str = "c",
        access_skew: float = 0.0,
        hot_fraction: float = 0.2,
    ):
        if length < 1:
            raise ValueError("length must be >= 1")
        if length > num_objects:
            raise ValueError("length cannot exceed num_objects (no repeats)")
        if not 0.0 <= access_skew <= 1.0:
            raise ValueError("access_skew must be in [0, 1]")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        self.num_objects = num_objects
        self.length = length
        self.access_skew = access_skew
        self.hot_set_size = max(1, int(num_objects * hot_fraction))
        self._rng = random.Random(seed)
        self._counter = itertools.count(1)
        self._tid_prefix = tid_prefix

    def next_read_set(self) -> Tuple[int, ...]:
        if self.access_skew <= 0.0:
            return tuple(self._rng.sample(range(self.num_objects), self.length))
        hot = list(range(self.hot_set_size))
        cold = list(range(self.hot_set_size, self.num_objects))
        chosen: List[int] = []
        for _ in range(self.length):
            pool = hot if (cold == [] or (hot and self._rng.random() < self.access_skew)) else cold
            obj = self._rng.choice(pool)
            pool.remove(obj)
            chosen.append(obj)
        return tuple(chosen)

    def next_transaction(self) -> Tuple[str, Tuple[int, ...]]:
        return f"{self._tid_prefix}{next(self._counter)}", self.next_read_set()

    def __iter__(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        while True:
            yield self.next_transaction()


@dataclass(frozen=True)
class ClientUpdateSpec:
    """One generated client update transaction."""

    tid: str
    read_set: Tuple[int, ...]
    write_set: Tuple[int, ...]


class ClientUpdateWorkload:
    """Client update transactions: read some objects, then write a few.

    ``write_fraction`` of the read objects are rewritten (at least one);
    with probability ``blind_write_probability`` one additional unread
    object is written blindly.
    """

    def __init__(
        self,
        num_objects: int,
        *,
        length: int = 4,
        write_fraction: float = 0.5,
        blind_write_probability: float = 0.0,
        seed: int = 0,
        tid_prefix: str = "u",
    ):
        if not 0.0 < write_fraction <= 1.0:
            raise ValueError("write_fraction must be in (0, 1]")
        if length > num_objects:
            raise ValueError("length cannot exceed num_objects (no repeats)")
        self.num_objects = num_objects
        self.length = length
        self.write_fraction = write_fraction
        self.blind_write_probability = blind_write_probability
        self._rng = random.Random(seed)
        self._counter = itertools.count(1)
        self._tid_prefix = tid_prefix

    def next_transaction(self) -> ClientUpdateSpec:
        reads = self._rng.sample(range(self.num_objects), self.length)
        num_writes = max(1, round(self.length * self.write_fraction))
        writes = list(self._rng.sample(reads, min(num_writes, len(reads))))
        if self._rng.random() < self.blind_write_probability:
            fresh = [o for o in range(self.num_objects) if o not in reads]
            if fresh:
                writes.append(self._rng.choice(fresh))
        tid = f"{self._tid_prefix}{next(self._counter)}"
        return ClientUpdateSpec(tid, tuple(reads), tuple(writes))

    def __iter__(self) -> Iterator[ClientUpdateSpec]:
        while True:
            yield self.next_transaction()
