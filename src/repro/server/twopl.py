"""Strict two-phase-locking executor for server update transactions.

The paper assumes the server runs its update transactions under any
concurrency control that yields *conflict serializable* executions whose
serialization order is the commit order (Sec. 3.2.1 computes the control
matrix "as per a serialization order").  This executor provides exactly
that substrate:

* strict 2PL — S lock per read, X lock per write, all locks held to end;
* FIFO queues with deadlock detection, youngest-victim abort + restart;
* commit order == serialization order (a strict-2PL guarantee);
* the committed execution is returned as a :class:`repro.core.History`
  so the theory layer can verify it.

The interleaving is driven either round-robin or by a caller-supplied
random stream, which lets property tests explore many interleavings
deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.model import History, Operation
from ..core.model import commit as commit_op
from ..core.model import read as read_op
from ..core.model import write as write_op
from .database import Database
from .locks import DeadlockError, LockManager, LockMode

__all__ = ["TransactionProgram", "ExecutionResult", "TwoPLExecutor"]


@dataclass(frozen=True)
class TransactionProgram:
    """A static update-transaction program: ordered reads and writes.

    ``steps`` is a sequence of ``("r", obj)`` / ``("w", obj)`` pairs.  The
    value written is produced by the executor's ``value_fn`` (default: a
    ``(txn, obj, attempt)`` provenance triple).
    """

    tid: str
    steps: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        for kind, obj in self.steps:
            if kind not in ("r", "w"):
                raise ValueError(f"bad step kind {kind!r}")
            if obj < 0:
                raise ValueError("object ids must be non-negative")

    @property
    def read_set(self) -> Tuple[int, ...]:
        return tuple(obj for kind, obj in self.steps if kind == "r")

    @property
    def write_set(self) -> Tuple[int, ...]:
        return tuple(obj for kind, obj in self.steps if kind == "w")


@dataclass
class ExecutionResult:
    """Outcome of running a batch of programs to completion."""

    history: History
    commit_order: Tuple[str, ...]
    restarts: Dict[str, int]
    read_values: Dict[str, Dict[int, object]]


@dataclass
class _Running:
    program: TransactionProgram
    attempt: int = 0
    cursor: int = 0
    reads: Dict[int, object] = field(default_factory=dict)
    writes: Dict[int, object] = field(default_factory=dict)
    blocked: bool = False
    ops: List[Operation] = field(default_factory=list)

    def reset(self) -> None:
        self.attempt += 1
        self.cursor = 0
        self.reads = {}
        self.writes = {}
        self.blocked = False
        self.ops = []


class TwoPLExecutor:
    """Run update-transaction programs under strict 2PL against a database."""

    def __init__(
        self,
        database: Database,
        *,
        cycle_of_commit: Optional[Callable[[int], int]] = None,
        value_fn: Optional[Callable[[str, int, int], object]] = None,
    ):
        self.database = database
        #: maps commit sequence number (1-based) -> broadcast cycle
        self._cycle_of_commit = cycle_of_commit or (lambda seq: seq)
        self._value_fn = value_fn or (lambda tid, obj, attempt: (tid, obj, attempt))

    # ------------------------------------------------------------------
    def run(
        self,
        programs: Sequence[TransactionProgram],
        *,
        rng: Optional[random.Random] = None,
        max_steps: int = 1_000_000,
    ) -> ExecutionResult:
        """Execute all programs to commit, interleaving their steps.

        With ``rng`` the next runnable transaction is chosen uniformly at
        random (deterministic given the seed); otherwise round-robin.
        Deadlock victims restart from scratch (locks released, staged
        writes discarded, operations of the aborted attempt dropped from
        the committed history).
        """
        locks = LockManager()
        running: Dict[str, _Running] = {p.tid: _Running(p) for p in programs}
        if len(running) != len(programs):
            raise ValueError("duplicate transaction ids")
        restarts: Dict[str, int] = {p.tid: 0 for p in programs}
        read_values: Dict[str, Dict[int, object]] = {}
        # global interleaved log: (tid, attempt, op); only committed
        # attempts survive into the returned history
        log: List[Tuple[str, int, Operation]] = []
        committed_attempts: Dict[str, int] = {}
        commit_order: List[str] = []
        pending = list(running)
        rr_index = 0
        steps = 0

        def unblock(granted: Sequence[Tuple[str, int]]) -> None:
            for granted_txn, _obj in granted:
                if granted_txn in running:
                    running[granted_txn].blocked = False

        def abort_restart(victim: str) -> None:
            state = running[victim]
            self.database.discard_writes(victim, state.writes.keys())
            unblock(locks.release_all(victim))
            state.reset()
            restarts[victim] += 1

        while pending:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("executor exceeded max_steps (livelock?)")
            candidates = [t for t in pending if not running[t].blocked]
            if not candidates:
                raise RuntimeError("all transactions blocked without deadlock")
            if rng is not None:
                tid = rng.choice(candidates)
            else:
                tid = candidates[rr_index % len(candidates)]
                rr_index += 1
            state = running[tid]
            program = state.program

            if state.cursor >= len(program.steps):
                seq = len(commit_order) + 1
                cycle = self._cycle_of_commit(seq)
                self.database.apply_commit(tid, cycle, state.reads.keys(), state.writes)
                log.append((tid, state.attempt, commit_op(tid, cycle=cycle)))
                committed_attempts[tid] = state.attempt
                commit_order.append(tid)
                read_values[tid] = dict(state.reads)
                pending.remove(tid)
                unblock(locks.release_all(tid))
                continue

            kind, obj = program.steps[state.cursor]
            mode = LockMode.SHARED if kind == "r" else LockMode.EXCLUSIVE
            try:
                granted = locks.acquire(tid, obj, mode)
            except DeadlockError as deadlock:
                abort_restart(deadlock.victim)
                continue
            if not granted:
                state.blocked = True
                continue
            self._perform(tid, state, kind, obj)
            log.append((tid, state.attempt, state.ops[-1]))

        committed_ops = [
            op
            for (tid, attempt, op) in log
            if committed_attempts.get(tid) == attempt
        ]
        return ExecutionResult(
            History(committed_ops, strict=False),
            tuple(commit_order),
            restarts,
            read_values,
        )

    # ------------------------------------------------------------------
    def _perform(self, tid: str, state: _Running, kind: str, obj: int) -> None:
        if kind == "r":
            # strict 2PL: committed value unless this txn wrote it already
            if obj in state.writes:
                value = state.writes[obj]
            else:
                value = self.database.committed(obj).value
            state.reads[obj] = value
            state.ops.append(read_op(tid, str(obj)))
        else:
            value = self._value_fn(tid, obj, state.attempt)
            state.writes[obj] = value
            self.database.stage_write(tid, obj, value)
            state.ops.append(write_op(tid, str(obj)))
        state.cursor += 1
