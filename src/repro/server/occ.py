"""Optimistic (backward-validation) executor for server transactions.

The paper observes that APPROX "is based on a validation based approach
to effecting clients' updates" and expects it to behave like optimistic
methods under contention.  To make that comparison concrete the library
ships a second server-side concurrency-control executor next to strict
2PL (:mod:`repro.server.twopl`): classic backward-validation OCC
(Kung–Robinson style, serial validation):

* **read phase** — a transaction reads committed versions and buffers
  its writes privately, stamped with the commit sequence number current
  at its start;
* **validation** — at commit, it checks that no transaction committed
  since its start wrote anything it read; a conflict restarts it;
* **write phase** — installs its writes atomically; commit order is the
  serialization order (reads were current at commit).

Interface-compatible with :class:`repro.server.twopl.TwoPLExecutor`
(same :class:`ExecutionResult`), so the test suite can assert both yield
conflict-serializable histories and the benchmark suite can ablate
blocking vs restarting under rising contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.model import History, Operation
from ..core.model import commit as commit_op
from ..core.model import read as read_op
from ..core.model import write as write_op
from .database import Database
from .twopl import ExecutionResult, TransactionProgram

__all__ = ["OCCExecutor"]


@dataclass
class _Running:
    program: TransactionProgram
    start_seq: int
    attempt: int = 0
    cursor: int = 0
    reads: Dict[int, object] = field(default_factory=dict)
    writes: Dict[int, object] = field(default_factory=dict)
    ops: List[Operation] = field(default_factory=list)

    def reset(self, start_seq: int) -> None:
        self.start_seq = start_seq
        self.attempt += 1
        self.cursor = 0
        self.reads = {}
        self.writes = {}
        self.ops = []


class OCCExecutor:
    """Run update-transaction programs under backward-validation OCC."""

    def __init__(
        self,
        database: Database,
        *,
        cycle_of_commit: Optional[Callable[[int], int]] = None,
        value_fn: Optional[Callable[[str, int, int], object]] = None,
    ):
        self.database = database
        self._cycle_of_commit = cycle_of_commit or (lambda seq: seq)
        self._value_fn = value_fn or (lambda tid, obj, attempt: (tid, obj, attempt))
        #: write sets of committed transactions, by commit seq (1-based)
        self._committed_write_sets: List[Set[int]] = []

    # ------------------------------------------------------------------
    def run(
        self,
        programs: Sequence[TransactionProgram],
        *,
        rng: Optional[random.Random] = None,
        max_steps: int = 1_000_000,
    ) -> ExecutionResult:
        """Interleave program steps; validate at commit; restart losers."""
        running: Dict[str, _Running] = {
            p.tid: _Running(p, start_seq=len(self._committed_write_sets))
            for p in programs
        }
        if len(running) != len(programs):
            raise ValueError("duplicate transaction ids")
        restarts: Dict[str, int] = {p.tid: 0 for p in programs}
        read_values: Dict[str, Dict[int, object]] = {}
        log: List[Tuple[str, int, Operation]] = []
        committed_attempts: Dict[str, int] = {}
        commit_order: List[str] = []
        pending = list(running)
        rr_index = 0
        steps = 0

        while pending:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("executor exceeded max_steps")
            if rng is not None:
                tid = rng.choice(pending)
            else:
                tid = pending[rr_index % len(pending)]
                rr_index += 1
            state = running[tid]
            program = state.program

            if state.cursor >= len(program.steps):
                if self._validate(state):
                    seq = len(commit_order) + 1
                    cycle = self._cycle_of_commit(seq)
                    self.database.apply_commit(
                        tid, cycle, state.reads.keys(), state.writes
                    )
                    self._committed_write_sets.append(set(state.writes))
                    # write phase: buffered writes become visible (and
                    # enter the history) only now — logging them at
                    # buffer time would fabricate reads-from edges from
                    # writes nobody could see
                    for obj in sorted(state.writes):
                        log.append((tid, state.attempt, write_op(tid, str(obj))))
                    log.append((tid, state.attempt, commit_op(tid, cycle=cycle)))
                    committed_attempts[tid] = state.attempt
                    commit_order.append(tid)
                    read_values[tid] = dict(state.reads)
                    pending.remove(tid)
                else:
                    restarts[tid] += 1
                    state.reset(start_seq=len(self._committed_write_sets))
                continue

            kind, obj = program.steps[state.cursor]
            if kind == "r":
                value = (
                    state.writes[obj]
                    if obj in state.writes
                    else self.database.committed(obj).value
                )
                state.reads[obj] = value
                op = read_op(tid, str(obj))
                state.ops.append(op)
                log.append((tid, state.attempt, op))
            else:
                value = self._value_fn(tid, obj, state.attempt)
                state.writes[obj] = value  # buffered until the write phase
            state.cursor += 1

        committed_ops = [
            op
            for (tid, attempt, op) in log
            if committed_attempts.get(tid) == attempt
        ]
        return ExecutionResult(
            History(committed_ops, strict=False),
            tuple(commit_order),
            restarts,
            read_values,
        )

    # ------------------------------------------------------------------
    def _validate(self, state: _Running) -> bool:
        """Backward validation: nothing read was overwritten since start."""
        read_set = set(state.reads)
        for write_set in self._committed_write_sets[state.start_seq :]:
            if write_set & read_set:
                return False
        return True
