"""Server recovery: rebuild the broadcast server from its commit log.

The database's commit log *is* the server's durable state: committed
update transactions in serialization order, with read sets, writes and
commit cycles.  Everything else — committed versions, the control
matrix/vector/grouped state — is a deterministic fold over that log
(Theorem 2 is an incremental algorithm, after all).  So recovery is
replay:

    revived = recover_server(crashed.database.commit_log, config-of-crashed)

The tests crash a server mid-run, revive it, and assert every piece of
state (versions, matrix, vector, current cycle) is bit-identical, and
that clients validating against the revived server's snapshots decide
exactly as against the original.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.cycles import CycleArithmetic
from ..core.group_matrix import Partition
from .database import CommitRecord
from .server import BroadcastServer

__all__ = ["recover_server"]


def recover_server(
    commit_log: Sequence[CommitRecord],
    num_objects: int,
    protocol: str = "f-matrix",
    *,
    arithmetic: Optional[CycleArithmetic] = None,
    partition: Optional[Partition] = None,
    current_cycle: Optional[int] = None,
    initial_value: object = 0,
) -> BroadcastServer:
    """Rebuild a server by replaying a commit log in order.

    ``current_cycle`` restores the broadcast-cycle counter; it defaults
    to the last commit's cycle (the next ``begin_cycle`` must use a
    larger number, exactly as it would have on the original server).
    """
    server = BroadcastServer(
        num_objects,
        protocol,
        arithmetic=arithmetic,
        partition=partition,
        initial_value=initial_value,
    )
    last_cycle = 0
    for record in commit_log:
        server.commit_update(
            record.txn,
            record.read_set,
            dict(record.writes),
            cycle=record.commit_cycle,
        )
        last_cycle = max(last_cycle, record.commit_cycle)
    server.current_cycle = current_cycle if current_cycle is not None else last_cycle
    return server
