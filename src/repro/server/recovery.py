"""Server recovery: rebuild the broadcast server from its durable state.

The database's commit log plus the last-broadcast-cycle mark *are* the
server's durable state: committed update transactions in serialization
order (read sets, writes, commit cycles) and the highest cycle number
that went on the air.  Everything else — committed versions, the control
matrix/vector/grouped state — is a deterministic fold over the log
(Theorem 2 is an incremental algorithm, after all).  So recovery is
replay:

    revived = recover_server(crashed.database, config-of-crashed)

The tests crash a server mid-run, revive it, and assert every piece of
state (versions, matrix, vector, current cycle) is bit-identical, and
that clients validating against the revived server's snapshots decide
exactly as against the original.

A bare commit-log sequence is still accepted for offline replay, but it
cannot represent quiescent cycles broadcast after the final commit —
recovering from one defaults the cycle counter to the last commit's
cycle, and a revived server would re-issue the quiescent cycle numbers
(a :class:`repro.core.cycles.ModuloCycles` anchoring hazard for
long-lived readers).  Pass the :class:`repro.server.database.Database`
(or an explicit ``current_cycle``) whenever cycle-accurate recovery
matters; the mid-run crash injection does.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..core.cycles import CycleArithmetic
from ..core.group_matrix import Partition
from .database import CommitRecord, Database
from .server import BroadcastServer

__all__ = ["recover_server"]


def recover_server(
    commit_log: Union[Database, Sequence[CommitRecord]],
    num_objects: int,
    protocol: str = "f-matrix",
    *,
    arithmetic: Optional[CycleArithmetic] = None,
    partition: Optional[Partition] = None,
    current_cycle: Optional[int] = None,
    initial_value: object = 0,
) -> BroadcastServer:
    """Rebuild a server by replaying its durable state in order.

    ``commit_log`` is either the crashed server's
    :class:`~repro.server.database.Database` (preferred: carries the
    cycle recorded alongside the log) or a bare sequence of
    :class:`~repro.server.database.CommitRecord`.

    ``current_cycle`` restores the broadcast-cycle counter explicitly.
    When omitted it comes from the database's
    :attr:`~repro.server.database.Database.last_broadcast_cycle`; for a
    bare record sequence it falls back to the last commit's cycle — a
    lossy default that forgets quiescent cycles broadcast after the
    final commit (the next ``begin_cycle`` may then re-issue cycle
    numbers the original server already used).
    """
    if isinstance(commit_log, Database):
        records: Sequence[CommitRecord] = commit_log.commit_log
        if current_cycle is None:
            current_cycle = commit_log.last_broadcast_cycle
    else:
        records = commit_log
    server = BroadcastServer(
        num_objects,
        protocol,
        arithmetic=arithmetic,
        partition=partition,
        initial_value=initial_value,
    )
    last_cycle = 0
    for record in records:
        server.commit_update(
            record.txn,
            record.read_set,
            dict(record.writes),
            cycle=record.commit_cycle,
        )
        last_cycle = max(last_cycle, record.commit_cycle)
    server.current_cycle = current_cycle if current_cycle is not None else last_cycle
    server.database.record_broadcast_cycle(server.current_cycle)
    return server
