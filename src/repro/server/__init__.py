"""Server substrate: versioned store, lock manager, strict-2PL executor,
client-update validation, workload generators, and the broadcast server."""

from .database import CommitRecord, Database
from .occ import OCCExecutor
from .recovery import recover_server
from .traces import TraceWorkload, WorkloadTrace, record_trace
from .locks import DeadlockError, LockManager, LockMode
from .server import BroadcastServer
from .twopl import ExecutionResult, TransactionProgram, TwoPLExecutor
from .validation import BackwardValidator, UpdateSubmission, ValidationOutcome
from .workload import (
    ClientUpdateSpec,
    ClientUpdateWorkload,
    ClientWorkload,
    ServerTransactionSpec,
    ServerWorkload,
)

__all__ = [
    "Database",
    "CommitRecord",
    "LockManager",
    "LockMode",
    "DeadlockError",
    "TwoPLExecutor",
    "TransactionProgram",
    "ExecutionResult",
    "BackwardValidator",
    "UpdateSubmission",
    "ValidationOutcome",
    "BroadcastServer",
    "ServerWorkload",
    "ServerTransactionSpec",
    "ClientWorkload",
    "ClientUpdateWorkload",
    "ClientUpdateSpec",
    "OCCExecutor",
    "recover_server",
    "WorkloadTrace",
    "TraceWorkload",
    "record_trace",
]
