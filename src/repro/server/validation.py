"""Backward-optimistic validation of client-submitted update transactions.

Per the paper's client functionality (Sec. 3.2.1), an update transaction
running at a client performs its writes locally and, at commit, ships the
server (a) the objects and values written and (b) the objects read with
the broadcast cycles in which they were read.  "The server checks to see
whether the update transaction can be committed and communicates the
result to the client" — the method "is similar to the method proposed in
[15]" (optimistic concurrency control).

The check implemented here is read-currency (backward) validation: a
client update transaction commits iff every value it read is *still* the
latest committed value, i.e. no committed transaction wrote any of its
read objects at or after the cycle in which it was read::

    ∀ (ob_i, cycle) ∈ RS :  last_commit_cycle(ob_i) < cycle

This serializes the transaction at its commit instant (reads are of the
current committed state, writes install immediately after), so the
committed update history stays conflict serializable with serialization
order = commit order — exactly what the control-matrix maintenance needs.
The ``last_commit_cycle`` vector is the same state the R-Matrix/Datacycle
protocols broadcast, so the validator reuses
:class:`repro.core.group_matrix.LastWriteVector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..core.group_matrix import LastWriteVector

__all__ = ["UpdateSubmission", "ValidationOutcome", "BackwardValidator"]


@dataclass(frozen=True)
class UpdateSubmission:
    """What a client ships up the uplink at commit time."""

    txn: str
    #: (object id, broadcast cycle whose committed value was read)
    reads: Tuple[Tuple[int, int], ...]
    #: object id -> value written
    writes: Tuple[Tuple[int, object], ...]

    @property
    def read_set(self) -> Tuple[int, ...]:
        return tuple(obj for obj, _cycle in self.reads)

    @property
    def write_set(self) -> Tuple[int, ...]:
        return tuple(obj for obj, _value in self.writes)


@dataclass(frozen=True)
class ValidationOutcome:
    """The server's verdict, shipped back down to the client."""

    txn: str
    committed: bool
    #: objects whose currency check failed (empty on success)
    conflicts: Tuple[int, ...] = ()


class BackwardValidator:
    """Validate submissions against the last-committed-write vector."""

    def __init__(self, vector: LastWriteVector):
        self._vector = vector

    def validate(self, submission: UpdateSubmission, *, current_cycle: int) -> ValidationOutcome:
        """Check read currency.  Does not install writes (server does).

        A read of ``ob_i`` from cycle ``c`` observed the value committed
        before cycle ``c`` began; it is still current iff no commit wrote
        ``ob_i`` in any cycle ``>= c`` — including the current one, whose
        commits the client cannot have seen.
        """
        conflicts = tuple(
            obj
            for obj, cycle in submission.reads
            if self._vector.entry(obj) >= cycle
        )
        return ValidationOutcome(submission.txn, not conflicts, conflicts)
