"""The broadcast server (Sec. 3.2.1, "Server Functionality").

Responsibilities, exactly as the paper lists them:

1. at the beginning of every cycle, broadcast the latest *committed*
   values of all objects — :meth:`BroadcastServer.begin_cycle` freezes
   them into a :class:`repro.broadcast.BroadcastCycle`;
2. ensure conflict serializability of transactions submitted to it —
   server-resident transactions commit through
   :meth:`BroadcastServer.commit_update` in serialization order (the
   strict-2PL executor or the simulation's completion process provide
   that order), and client-submitted update transactions go through
   backward validation (:meth:`BroadcastServer.submit_client_update`);
3. transmit the control information each cycle — the per-cycle
   :class:`repro.core.validators.ControlSnapshot` carries the full matrix,
   the vector, or the grouped matrix depending on the protocol in force.

The server always maintains the last-committed-write vector (it is the
validation state for client updates) and additionally the full or grouped
matrix when the protocol requires it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..broadcast.program import BroadcastCycle
from ..core.control_matrix import ControlMatrix
from ..core.cycles import CycleArithmetic, UnboundedCycles
from ..core.group_matrix import GroupedControlState, LastWriteVector, Partition
from ..core.validators import PROTOCOL_NAMES, ControlSnapshot
from .database import CommitRecord, Database
from .validation import BackwardValidator, UpdateSubmission, ValidationOutcome

__all__ = ["BroadcastServer"]


class BroadcastServer:
    """Owns the database and control state; produces broadcast cycles."""

    def __init__(
        self,
        num_objects: int,
        protocol: str = "f-matrix",
        *,
        arithmetic: Optional[CycleArithmetic] = None,
        partition: Optional[Partition] = None,
        initial_value: object = 0,
    ):
        if protocol not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}"
            )
        self.protocol = protocol
        self.arithmetic = arithmetic or UnboundedCycles()
        self.database = Database(num_objects, initial_value)
        self.vector = LastWriteVector(num_objects)
        self.matrix: Optional[ControlMatrix] = None
        self.grouped: Optional[GroupedControlState] = None
        if protocol in ("f-matrix", "f-matrix-no"):
            self.matrix = ControlMatrix(num_objects)
        elif protocol == "group-matrix":
            if partition is None:
                raise ValueError("group-matrix requires a partition")
            self.grouped = GroupedControlState(partition)
        self._validator = BackwardValidator(self.vector)
        self.current_cycle = 0
        # copy-on-write per-cycle snapshots: the last frozen (encoded,
        # read-only) control image, refreshed only where commits dirtied it
        self._frozen_matrix: Optional[np.ndarray] = None
        self._frozen_vector: Optional[np.ndarray] = None
        self._frozen_grouped: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return self.database.num_objects

    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> BroadcastCycle:
        """Freeze committed values + control info for broadcast ``cycle``.

        Commits applied *during* cycle ``k`` are visible from the cycle
        ``k+1`` broadcast onwards — the snapshot is taken at cycle start.
        """
        if cycle <= self.current_cycle:
            raise ValueError(
                f"cycles must advance (got {cycle}, at {self.current_cycle})"
            )
        self.current_cycle = cycle
        self.database.record_broadcast_cycle(cycle)
        return BroadcastCycle(
            cycle=cycle,
            versions=self.database.committed_snapshot(),
            snapshot=self._control_snapshot(cycle),
        )

    def _control_snapshot(self, cycle: int) -> ControlSnapshot:
        """Copy-on-write frozen control image for one broadcast cycle.

        The frozen image of the previous cycle is immutable, so it can be
        reused outright when no commit dirtied the control state, and only
        the dirtied columns need re-encoding otherwise — encoding is
        elementwise (identity or modulo), hence columns whose absolute
        entries did not change keep their encoding bit-for-bit.  The full
        ``snapshot()`` + ``encode()`` path remains the oracle (and is the
        first cycle's cold start); the regression tests compare against it.
        """
        encode = self.arithmetic.encode_array
        if self.matrix is not None:
            dirty = self.matrix.drain_dirty_columns()
            frozen = self._frozen_matrix
            if frozen is None:
                frozen = encode(self.matrix.snapshot())
                frozen.flags.writeable = False
            elif dirty:
                columns = list(dirty)
                updated = frozen.copy()
                updated[:, columns] = encode(self.matrix.array[:, columns])
                updated.flags.writeable = False
                frozen = updated
            self._frozen_matrix = frozen
            return ControlSnapshot(cycle, matrix=frozen)
        if self.grouped is not None:
            if self.grouped.drain_dirty() or self._frozen_grouped is None:
                frozen = encode(self.grouped.snapshot())
                frozen.flags.writeable = False
                self._frozen_grouped = frozen
            return ControlSnapshot(
                cycle,
                grouped=self._frozen_grouped,
                partition=self.grouped.partition,
            )
        if self.vector.drain_dirty() or self._frozen_vector is None:
            frozen = encode(self.vector.snapshot())
            frozen.flags.writeable = False
            self._frozen_vector = frozen
        return ControlSnapshot(cycle, vector=self._frozen_vector)

    # ------------------------------------------------------------------
    def restore_from(self, revived: "BroadcastServer") -> None:
        """Adopt a revived server's state in place (mid-run crash recovery).

        The fault-injection crash process rebuilds a server from the
        durable state via :func:`repro.server.recovery.recover_server` and
        then swaps the rebuilt state into the live object, so every
        process holding a reference to the original server transparently
        talks to the recovered one.
        """
        if revived.protocol != self.protocol:
            raise ValueError(
                f"cannot restore a {self.protocol!r} server from a "
                f"{revived.protocol!r} one"
            )
        if revived.num_objects != self.num_objects:
            raise ValueError(
                f"cannot restore {self.num_objects} objects from "
                f"{revived.num_objects}"
            )
        self.arithmetic = revived.arithmetic
        self.database = revived.database
        self.vector = revived.vector
        self.matrix = revived.matrix
        self.grouped = revived.grouped
        self._validator = revived._validator
        self.current_cycle = revived.current_cycle
        self._frozen_matrix = revived._frozen_matrix
        self._frozen_vector = revived._frozen_vector
        self._frozen_grouped = revived._frozen_grouped

    # ------------------------------------------------------------------
    def commit_update(
        self,
        txn: str,
        read_set: Iterable[int],
        writes: Mapping[int, object],
        *,
        cycle: Optional[int] = None,
    ) -> CommitRecord:
        """Commit one update transaction in serialization order.

        ``cycle`` defaults to the server's current broadcast cycle.  The
        database installs the writes and every control structure in force
        applies its Theorem 2-style increment.
        """
        commit_cycle = self.current_cycle if cycle is None else cycle
        rs = tuple(read_set)
        record = self.database.apply_commit(txn, commit_cycle, rs, writes)
        self.vector.apply_commit(commit_cycle, rs, writes.keys())
        if self.matrix is not None:
            self.matrix.apply_commit(commit_cycle, rs, writes.keys())
        if self.grouped is not None:
            self.grouped.apply_commit(commit_cycle, rs, writes.keys())
        return record

    # ------------------------------------------------------------------
    def submit_client_update(
        self, submission: UpdateSubmission, *, cycle: Optional[int] = None
    ) -> ValidationOutcome:
        """Validate a client update transaction; install writes on success."""
        commit_cycle = self.current_cycle if cycle is None else cycle
        outcome = self._validator.validate(submission, current_cycle=commit_cycle)
        if outcome.committed:
            self.commit_update(
                submission.txn,
                submission.read_set,
                dict(submission.writes),
                cycle=commit_cycle,
            )
        return outcome
