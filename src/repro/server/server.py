"""The broadcast server (Sec. 3.2.1, "Server Functionality").

Responsibilities, exactly as the paper lists them:

1. at the beginning of every cycle, broadcast the latest *committed*
   values of all objects — :meth:`BroadcastServer.begin_cycle` freezes
   them into a :class:`repro.broadcast.BroadcastCycle`;
2. ensure conflict serializability of transactions submitted to it —
   server-resident transactions commit through
   :meth:`BroadcastServer.commit_update` in serialization order (the
   strict-2PL executor or the simulation's completion process provide
   that order), and client-submitted update transactions go through
   backward validation (:meth:`BroadcastServer.submit_client_update`);
3. transmit the control information each cycle — the per-cycle
   :class:`repro.core.validators.ControlSnapshot` carries the full matrix,
   the vector, or the grouped matrix depending on the protocol in force.

The server always maintains the last-committed-write vector (it is the
validation state for client updates) and additionally the full or grouped
matrix when the protocol requires it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..broadcast.program import BroadcastCycle
from ..core.control_matrix import ControlMatrix
from ..core.cycles import CycleArithmetic, UnboundedCycles
from ..core.group_matrix import GroupedControlState, LastWriteVector, Partition
from ..core.validators import PROTOCOL_NAMES, ControlSnapshot
from .database import CommitRecord, Database
from .validation import BackwardValidator, UpdateSubmission, ValidationOutcome

__all__ = ["BroadcastServer"]


class BroadcastServer:
    """Owns the database and control state; produces broadcast cycles."""

    def __init__(
        self,
        num_objects: int,
        protocol: str = "f-matrix",
        *,
        arithmetic: Optional[CycleArithmetic] = None,
        partition: Optional[Partition] = None,
        initial_value: object = 0,
    ):
        if protocol not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}"
            )
        self.protocol = protocol
        self.arithmetic = arithmetic or UnboundedCycles()
        self.database = Database(num_objects, initial_value)
        self.vector = LastWriteVector(num_objects)
        self.matrix: Optional[ControlMatrix] = None
        self.grouped: Optional[GroupedControlState] = None
        if protocol in ("f-matrix", "f-matrix-no"):
            self.matrix = ControlMatrix(num_objects)
        elif protocol == "group-matrix":
            if partition is None:
                raise ValueError("group-matrix requires a partition")
            self.grouped = GroupedControlState(partition)
        self._validator = BackwardValidator(self.vector)
        self.current_cycle = 0

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return self.database.num_objects

    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> BroadcastCycle:
        """Freeze committed values + control info for broadcast ``cycle``.

        Commits applied *during* cycle ``k`` are visible from the cycle
        ``k+1`` broadcast onwards — the snapshot is taken at cycle start.
        """
        if cycle <= self.current_cycle:
            raise ValueError(
                f"cycles must advance (got {cycle}, at {self.current_cycle})"
            )
        self.current_cycle = cycle
        return BroadcastCycle(
            cycle=cycle,
            versions=self.database.committed_snapshot(),
            snapshot=self._control_snapshot(cycle),
        )

    def _control_snapshot(self, cycle: int) -> ControlSnapshot:
        encode = self.arithmetic.encode_array
        if self.matrix is not None:
            return ControlSnapshot(cycle, matrix=encode(self.matrix.snapshot()))
        if self.grouped is not None:
            return ControlSnapshot(
                cycle,
                grouped=encode(self.grouped.snapshot()),
                partition=self.grouped.partition,
            )
        return ControlSnapshot(cycle, vector=encode(self.vector.snapshot()))

    # ------------------------------------------------------------------
    def commit_update(
        self,
        txn: str,
        read_set: Iterable[int],
        writes: Mapping[int, object],
        *,
        cycle: Optional[int] = None,
    ) -> CommitRecord:
        """Commit one update transaction in serialization order.

        ``cycle`` defaults to the server's current broadcast cycle.  The
        database installs the writes and every control structure in force
        applies its Theorem 2-style increment.
        """
        commit_cycle = self.current_cycle if cycle is None else cycle
        rs = tuple(read_set)
        record = self.database.apply_commit(txn, commit_cycle, rs, writes)
        self.vector.apply_commit(commit_cycle, rs, writes.keys())
        if self.matrix is not None:
            self.matrix.apply_commit(commit_cycle, rs, writes.keys())
        if self.grouped is not None:
            self.grouped.apply_commit(commit_cycle, rs, writes.keys())
        return record

    # ------------------------------------------------------------------
    def submit_client_update(
        self, submission: UpdateSubmission, *, cycle: Optional[int] = None
    ) -> ValidationOutcome:
        """Validate a client update transaction; install writes on success."""
        commit_cycle = self.current_cycle if cycle is None else cycle
        outcome = self._validator.validate(submission, current_cycle=commit_cycle)
        if outcome.committed:
            self.commit_update(
                submission.txn,
                submission.read_set,
                dict(submission.writes),
                cycle=commit_cycle,
            )
        return outcome
