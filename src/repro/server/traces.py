"""Recordable, replayable client workloads.

Synthetic generators are fine for the paper's experiments, but a
production evaluation also wants *fixed* workloads: record what a
generator produced (or hand-craft a scenario), save it as JSON, and
replay it bit-for-bit across protocols, machines and code versions.

* :class:`WorkloadTrace` — an ordered list of read sets (one per client
  transaction) with JSON round-trip;
* :func:`record_trace` — capture the next ``n`` transactions of any
  generator with a ``next_transaction() -> (tid, read_set)`` method;
* :class:`TraceWorkload` — replays a trace through the same interface
  the simulator consumes (:class:`repro.server.workload.ClientWorkload`
  compatible), cycling if the run needs more transactions than recorded.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["WorkloadTrace", "record_trace", "TraceWorkload"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class WorkloadTrace:
    """An immutable sequence of client read sets."""

    num_objects: int
    read_sets: Tuple[Tuple[int, ...], ...]
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if not self.read_sets:
            raise ValueError("a trace needs at least one transaction")
        for idx, read_set in enumerate(self.read_sets):
            if not read_set:
                raise ValueError(f"transaction {idx} reads nothing")
            if len(set(read_set)) != len(read_set):
                raise ValueError(f"transaction {idx} repeats an object")
            for obj in read_set:
                if not 0 <= obj < self.num_objects:
                    raise ValueError(
                        f"transaction {idx} reads {obj}, outside 0..{self.num_objects - 1}"
                    )

    def __len__(self) -> int:
        return len(self.read_sets)

    # ------------------------------------------------------------------
    def save(self, path: Union[str, pathlib.Path]) -> None:
        payload = {
            "format_version": _FORMAT_VERSION,
            "num_objects": self.num_objects,
            "description": self.description,
            "read_sets": [list(rs) for rs in self.read_sets],
        }
        target = pathlib.Path(path)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        tmp.replace(target)

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "WorkloadTrace":
        payload = json.loads(pathlib.Path(path).read_text())
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version!r}")
        return cls(
            num_objects=int(payload["num_objects"]),
            read_sets=tuple(tuple(rs) for rs in payload["read_sets"]),
            description=payload.get("description", ""),
        )


def record_trace(
    workload, transactions: int, *, description: str = ""
) -> WorkloadTrace:
    """Capture ``transactions`` read sets from a generator."""
    if transactions < 1:
        raise ValueError("record at least one transaction")
    read_sets = []
    for _ in range(transactions):
        _tid, objects = workload.next_transaction()
        read_sets.append(tuple(objects))
    return WorkloadTrace(
        num_objects=workload.num_objects,
        read_sets=tuple(read_sets),
        description=description,
    )


class TraceWorkload:
    """Replay a :class:`WorkloadTrace` through the generator interface."""

    def __init__(self, trace: WorkloadTrace, *, tid_prefix: str = "c"):
        self.trace = trace
        self.num_objects = trace.num_objects
        self._index = 0
        self._tid_prefix = tid_prefix
        #: how many times the trace wrapped around
        self.wraps = 0

    def next_read_set(self) -> Tuple[int, ...]:
        read_set = self.trace.read_sets[self._index]
        self._index += 1
        if self._index >= len(self.trace):
            self._index = 0
            self.wraps += 1
        return read_set

    def next_transaction(self) -> Tuple[str, Tuple[int, ...]]:
        serial = self.wraps * len(self.trace) + self._index + 1
        return f"{self._tid_prefix}{serial}", self.next_read_set()

    def __iter__(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        while True:
            yield self.next_transaction()
