"""Versioned object store for the broadcast server.

The paper (Sec. 3.2.1, server functionality) requires the server to keep
*two* versions of each object: the latest committed version — which is
what every broadcast cycle carries — and the last written (uncommitted)
version.  :class:`Database` keeps the committed version per object plus a
single working version slot; concurrent executors additionally buffer
their writes privately until commit (strict two-phase locking makes the
working slot single-writer at any instant).

Committed versions carry provenance (writer id, commit cycle) so the
simulation trace can rebuild the induced global history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..broadcast.program import ObjectVersion
from ..core.model import T0

__all__ = ["Database", "CommitRecord"]


@dataclass(frozen=True)
class CommitRecord:
    """One committed update transaction, in serialization order."""

    txn: str
    commit_cycle: int
    commit_seq: int
    read_set: Tuple[int, ...]
    writes: Tuple[Tuple[int, object], ...]


class Database:
    """Committed + working versions of ``n`` integer-identified objects.

    Object ids are ``0..n-1``.  The initial committed version of every
    object is written by the conventional transaction ``t0`` at cycle 0
    with value ``initial_value`` (paper Appendix A's convention).
    """

    def __init__(self, num_objects: int, initial_value: object = 0):
        if num_objects <= 0:
            raise ValueError("num_objects must be positive")
        self._n = num_objects
        self._committed: List[ObjectVersion] = [
            ObjectVersion(obj, initial_value, T0, 0) for obj in range(num_objects)
        ]
        self._working: Dict[int, Tuple[object, str]] = {}
        self._commit_seq = 0
        self._log: List[CommitRecord] = []
        self._last_broadcast_cycle = 0

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return self._n

    @property
    def commit_log(self) -> Tuple[CommitRecord, ...]:
        """All committed update transactions, in serialization order."""
        return tuple(self._log)

    @property
    def last_broadcast_cycle(self) -> int:
        """The highest cycle number the server has broadcast (durable).

        Recorded alongside the commit log because the log alone cannot
        represent *quiescent* cycles — cycles broadcast after the final
        commit.  Recovery that restores the cycle counter from the last
        commit's cycle would re-issue those cycle numbers, which breaks
        :class:`repro.core.cycles.ModuloCycles` anchoring for long-lived
        readers; restoring from this value cannot.
        """
        return self._last_broadcast_cycle

    def record_broadcast_cycle(self, cycle: int) -> None:
        """Durably note that ``cycle`` went on the air."""
        if cycle < self._last_broadcast_cycle:
            raise ValueError(
                f"broadcast cycles advance (got {cycle}, at "
                f"{self._last_broadcast_cycle})"
            )
        self._last_broadcast_cycle = cycle

    def committed(self, obj: int) -> ObjectVersion:
        """The latest committed version of ``obj``."""
        return self._committed[obj]

    def committed_snapshot(self) -> Tuple[ObjectVersion, ...]:
        """All latest committed versions (the broadcast payload)."""
        return tuple(self._committed)

    def last_written(self, obj: int) -> Tuple[object, str]:
        """The last written (possibly uncommitted) version of ``obj``.

        Falls back to the committed version when no write is pending.
        """
        if obj in self._working:
            return self._working[obj]
        version = self._committed[obj]
        return (version.value, version.writer)

    # ------------------------------------------------------------------
    def stage_write(self, txn: str, obj: int, value: object) -> None:
        """Record an uncommitted write (the "last written version")."""
        if not 0 <= obj < self._n:
            raise IndexError(f"object {obj} out of range")
        self._working[obj] = (value, txn)

    def discard_writes(self, txn: str, objs: Iterable[int]) -> None:
        """Drop a transaction's staged writes (abort path)."""
        for obj in objs:
            staged = self._working.get(obj)
            if staged is not None and staged[1] == txn:
                del self._working[obj]

    def apply_commit(
        self,
        txn: str,
        commit_cycle: int,
        read_set: Iterable[int],
        writes: Mapping[int, object],
    ) -> CommitRecord:
        """Install a transaction's writes as the committed versions.

        Must be called in serialization order (the executors guarantee
        commit order == serialization order).  Returns the log record.
        """
        self._commit_seq += 1
        for obj, value in writes.items():
            if not 0 <= obj < self._n:
                raise IndexError(f"object {obj} out of range")
            self._committed[obj] = ObjectVersion(obj, value, txn, commit_cycle)
            staged = self._working.get(obj)
            if staged is not None and staged[1] == txn:
                del self._working[obj]
        record = CommitRecord(
            txn,
            commit_cycle,
            self._commit_seq,
            tuple(sorted(set(read_set))),
            tuple(sorted(writes.items())),
        )
        self._log.append(record)
        return record
