"""Shared/exclusive lock manager with deadlock detection.

Used by the strict-2PL executor (:mod:`repro.server.twopl`) that runs
update transactions *at the server* — the component the paper assumes
exists ("using a concurrency control mechanism ensure the conflict
serializability of all transactions submitted to the server",
Sec. 3.2.1).  Clients never take locks; that is the whole point of the
paper.

Deadlocks are detected by cycle search over the waits-for graph at every
blocked acquisition; the victim is the youngest transaction in the cycle
(largest start sequence).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["LockMode", "LockManager", "DeadlockError", "LockRequest"]


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class DeadlockError(RuntimeError):
    """Raised at the victim when a lock acquisition closes a cycle."""

    def __init__(self, victim: str, cycle: Sequence[str]):
        super().__init__(f"deadlock: victim={victim} cycle={'->'.join(cycle)}")
        self.victim = victim
        self.cycle = tuple(cycle)


@dataclass
class LockRequest:
    txn: str
    mode: LockMode


@dataclass
class _LockState:
    holders: Dict[str, LockMode] = field(default_factory=dict)
    queue: List[LockRequest] = field(default_factory=list)


def _compatible(mode: LockMode, holders: Dict[str, LockMode], txn: str) -> bool:
    others = {t: m for t, m in holders.items() if t != txn}
    if not others:
        return True
    if mode is LockMode.SHARED:
        return all(m is LockMode.SHARED for m in others.values())
    return False


class LockManager:
    """S/X locks per object with FIFO queues and waits-for deadlock checks."""

    def __init__(self):
        self._locks: Dict[int, _LockState] = {}
        self._held_by_txn: Dict[str, Set[int]] = {}
        self._start_seq: Dict[str, int] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------
    def register(self, txn: str) -> None:
        """Record a transaction's start (age used for victim selection)."""
        if txn not in self._start_seq:
            self._start_seq[txn] = self._next_seq
            self._next_seq += 1

    def holds(self, txn: str, obj: int, mode: LockMode) -> bool:
        state = self._locks.get(obj)
        if state is None:
            return False
        held = state.holders.get(txn)
        if held is None:
            return False
        return held is LockMode.EXCLUSIVE or mode is LockMode.SHARED

    def acquire(self, txn: str, obj: int, mode: LockMode) -> bool:
        """Try to take (or upgrade) a lock.

        Returns ``True`` when granted; ``False`` when the transaction must
        wait (it is queued).  Raises :class:`DeadlockError` if waiting
        would close a waits-for cycle and ``txn`` is chosen as victim; if
        another transaction in the cycle is the victim, the error names it
        and the caller aborts that one instead.
        """
        self.register(txn)
        state = self._locks.setdefault(obj, _LockState())
        held = state.holders.get(txn)
        if held is LockMode.EXCLUSIVE or (held is not None and mode is LockMode.SHARED):
            return True
        upgrade = held is LockMode.SHARED and mode is LockMode.EXCLUSIVE

        queued_ahead = [r for r in state.queue if r.txn != txn]
        if _compatible(mode, state.holders, txn) and (upgrade or not queued_ahead):
            state.holders[txn] = mode
            self._held_by_txn.setdefault(txn, set()).add(obj)
            state.queue[:] = [r for r in state.queue if r.txn != txn]
            return True

        if not any(r.txn == txn for r in state.queue):
            state.queue.append(LockRequest(txn, mode))
        cycle = self._find_deadlock(txn)
        if cycle:
            victim = max(cycle, key=lambda t: self._start_seq.get(t, -1))
            raise DeadlockError(victim, cycle)
        return False

    def release_all(self, txn: str) -> List[Tuple[str, int]]:
        """Release every lock and queued request of ``txn``.

        Returns ``(txn, obj)`` pairs newly granted as a result, so the
        executor can resume waiters.
        """
        held = set(self._held_by_txn.get(txn, ()))
        queued = {
            obj
            for obj, state in self._locks.items()
            if any(r.txn == txn for r in state.queue)
        }
        # drop the queue entries first: a stale head request of `txn`
        # must not keep blocking the waiters behind it
        for state in self._locks.values():
            state.queue[:] = [r for r in state.queue if r.txn != txn]
        granted: List[Tuple[str, int]] = []
        for obj in sorted(held | queued):
            self._locks[obj].holders.pop(txn, None)
            granted.extend(self._drain_queue(obj))
        self._held_by_txn.pop(txn, None)
        return granted

    def _drain_queue(self, obj: int) -> List[Tuple[str, int]]:
        state = self._locks[obj]
        granted: List[Tuple[str, int]] = []
        while state.queue:
            request = state.queue[0]
            if not _compatible(request.mode, state.holders, request.txn):
                break
            state.queue.pop(0)
            state.holders[request.txn] = request.mode
            self._held_by_txn.setdefault(request.txn, set()).add(obj)
            granted.append((request.txn, obj))
            if request.mode is LockMode.EXCLUSIVE:
                break
        return granted

    # ------------------------------------------------------------------
    def waits_for(self) -> Dict[str, Set[str]]:
        """The waits-for graph.

        A queued request waits on (a) every conflicting current holder and
        (b) every conflicting request queued *ahead* of it — FIFO grant
        order makes those genuine waits, and omitting them would let
        queue-mediated deadlocks go undetected.
        """
        graph: Dict[str, Set[str]] = {}
        for state in self._locks.values():
            for index, request in enumerate(state.queue):
                blockers = {
                    t for t, m in state.holders.items()
                    if t != request.txn
                    and not (m is LockMode.SHARED and request.mode is LockMode.SHARED)
                }
                blockers.update(
                    ahead.txn
                    for ahead in state.queue[:index]
                    if ahead.txn != request.txn
                    and not (
                        ahead.mode is LockMode.SHARED
                        and request.mode is LockMode.SHARED
                    )
                )
                if blockers:
                    graph.setdefault(request.txn, set()).update(blockers)
        return graph

    def _find_deadlock(self, start: str) -> Optional[List[str]]:
        graph = self.waits_for()
        path: List[str] = []
        on_path: Set[str] = set()

        def dfs(node: str) -> Optional[List[str]]:
            path.append(node)
            on_path.add(node)
            for nxt in graph.get(node, ()):
                if nxt == start:
                    return list(path)
                if nxt not in on_path:
                    found = dfs(nxt)
                    if found is not None:
                        return found
            path.pop()
            on_path.discard(node)
            return None

        return dfs(start)
