"""Broadcast-disk layouts: slot timing in bit-units.

The server broadcasts every object once per cycle (single-speed disk, the
paper's setting), each object followed by its control-information share.
Time is measured in *bit-units* — the time to broadcast one bit — so a
slot's duration equals its size in bits.

:class:`FlatLayout` is the paper's layout.  :class:`MultiDiskLayout` is
the classic hot/cold multi-speed broadcast-disk generalisation (Acharya et
al.), provided as an extension: hot objects appear several times per major
cycle.  Both answer the two questions the simulation asks:

* in which cycle does time ``t`` fall, and when did that cycle start?
* when is the next slot of object ``j`` at or after time ``t``, and in
  which cycle does that slot lie?

Cycles are numbered from 1; cycle ``k`` occupies
``[(k-1)·cycle_bits, k·cycle_bits)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SlotHit", "BroadcastLayout", "FlatLayout", "MultiDiskLayout"]


@dataclass(frozen=True)
class SlotHit:
    """The answer to "when can I next read object j?"."""

    obj: int
    #: absolute bit-time at which the object's slot *ends* (data available)
    time: int
    #: broadcast cycle containing the slot
    cycle: int


class BroadcastLayout:
    """Interface shared by all layouts."""

    #: total length of one broadcast cycle in bit-units
    cycle_bits: int

    def cycle_of(self, time: float) -> int:
        """1-based cycle number containing bit-time ``time``."""
        return int(time // self.cycle_bits) + 1

    def cycle_start(self, cycle: int) -> int:
        return (cycle - 1) * self.cycle_bits

    def next_read(self, obj: int, time: float) -> SlotHit:
        """Earliest completed broadcast of ``obj`` at or after ``time``."""
        raise NotImplementedError


class FlatLayout(BroadcastLayout):
    """Single-speed disk: objects ``0..n-1`` in id order, once per cycle.

    Each slot is ``object_bits + control_bits_per_slot`` wide; an optional
    cycle preamble (e.g. group columns broadcast once per cycle) precedes
    slot 0.  A read completes at the end of the object's slot.
    """

    def __init__(
        self,
        num_objects: int,
        object_bits: int,
        control_bits_per_slot: int = 0,
        preamble_bits: int = 0,
    ):
        if num_objects <= 0 or object_bits <= 0:
            raise ValueError("need positive num_objects and object_bits")
        self.num_objects = num_objects
        self.object_bits = object_bits
        self.control_bits_per_slot = control_bits_per_slot
        self.preamble_bits = preamble_bits
        self.slot_bits = object_bits + control_bits_per_slot
        self.cycle_bits = preamble_bits + num_objects * self.slot_bits

    def slot_end_offset(self, obj: int) -> int:
        """Offset within the cycle at which object ``obj`` is fully read."""
        if not 0 <= obj < self.num_objects:
            raise IndexError(f"object {obj} out of range")
        return self.preamble_bits + (obj + 1) * self.slot_bits

    def next_read(self, obj: int, time: float) -> SlotHit:
        offset = self.slot_end_offset(obj)
        cycle = self.cycle_of(time)
        # the previous cycle's slot can end exactly at `time` when the
        # object is last in the cycle and `time` sits on the boundary —
        # it still counts as "at or after time"
        if cycle > 1:
            prev_end = self.cycle_start(cycle - 1) + offset
            if prev_end >= time:
                return SlotHit(obj, prev_end, cycle - 1)
        end = self.cycle_start(cycle) + offset
        if end < time:
            cycle += 1
            end += self.cycle_bits
        return SlotHit(obj, end, cycle)


class MultiDiskLayout(BroadcastLayout):
    """Multi-speed broadcast disks (extension; Acharya et al. style).

    ``disks`` maps relative frequency -> object ids.  A disk with
    frequency ``f`` has its objects appear ``f`` times per major cycle.
    The schedule interleaves ``lcm`` chunks: the major cycle is divided
    into ``max_f`` minor cycles; a frequency-``f`` disk occupies
    ``f`` of them, evenly spaced.

    The *cycle* reported to validators is the **major** cycle: the control
    snapshot is refreshed once per major cycle, so correctness matches the
    single-speed protocol (a value read in major cycle ``k`` is committed
    before the major cycle began).
    """

    def __init__(
        self,
        disks: Sequence[Tuple[int, Sequence[int]]],
        object_bits: int,
        control_bits_per_slot: int = 0,
    ):
        seen: set = set()
        for freq, objs in disks:
            if freq <= 0:
                raise ValueError("frequencies must be positive")
            for obj in objs:
                if obj in seen:
                    raise ValueError(f"object {obj} on more than one disk")
                seen.add(obj)
        self.num_objects = len(seen)
        if seen != set(range(self.num_objects)):
            raise ValueError("disks must cover object ids 0..n-1")
        self.object_bits = object_bits
        self.control_bits_per_slot = control_bits_per_slot
        self.slot_bits = object_bits + control_bits_per_slot

        max_freq = max(freq for freq, _objs in disks)
        minor: List[List[int]] = [[] for _ in range(max_freq)]
        for freq, objs in disks:
            step = max_freq / freq
            slots = [int(round(k * step)) % max_freq for k in range(freq)]
            for minor_idx in slots:
                minor[minor_idx].extend(objs)
        self._schedule: List[int] = list(itertools.chain.from_iterable(minor))
        self.cycle_bits = len(self._schedule) * self.slot_bits
        # first slot-end offset of each object within the major cycle,
        # plus all its occurrences for next_read scanning
        self._occurrences: Dict[int, List[int]] = {}
        for idx, obj in enumerate(self._schedule):
            self._occurrences.setdefault(obj, []).append((idx + 1) * self.slot_bits)

    @property
    def schedule(self) -> Tuple[int, ...]:
        """The per-major-cycle slot order (object ids, may repeat)."""
        return tuple(self._schedule)

    def next_read(self, obj: int, time: float) -> SlotHit:
        ends = self._occurrences.get(obj)
        if not ends:
            raise IndexError(f"object {obj} not scheduled")
        cycle = self.cycle_of(time)
        start = self.cycle_start(cycle)
        if cycle > 1:
            # a final-slot occurrence of the previous cycle may end
            # exactly at `time` (cycle boundary): still eligible
            prev_end = start - self.cycle_bits + ends[-1]
            if prev_end >= time:
                return SlotHit(obj, prev_end, cycle - 1)
        for end in ends:
            if start + end >= time:
                return SlotHit(obj, start + end, cycle)
        return SlotHit(obj, start + self.cycle_bits + ends[0], cycle + 1)
