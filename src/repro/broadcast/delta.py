"""Incremental (delta) transmission of the control matrix.

Section 3.2.1 observes that the F-Matrix control information is
worst-case quadratic per cycle (Theorem 8), but that "the number of bits
to be transmitted may be drastically reduced if we transmit only changes
(deltas) over the previous C matrix transmission", at the cost that a
client must listen to every cycle (battery) and buffer the previous
matrix (memory).  The paper defers this to future work; this module
implements it:

* :class:`DeltaEncoder` — given successive matrix snapshots, emits a
  compact per-cycle delta: the sorted list of changed entries as
  ``(row, column, new-timestamp)`` triples, plus periodic full-matrix
  *anchor* frames so late joiners can synchronise;
* :class:`DeltaDecoder` — the client side: replays anchors and deltas
  into an exact copy of the server's per-cycle snapshot;
* wire-size accounting (:meth:`DeltaFrame.size_bits`) so experiments can
  compare delta bandwidth against the full matrix — the
  ``benchmarks/test_ablation_delta_encoding.py`` bench does exactly that
  on commit logs produced by real simulation runs.

The encoding uses ``ceil(log2 n)`` bits per coordinate and the protocol
timestamp width per value; a one-bit frame header distinguishes anchors
from deltas (amortised into the header field below).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DeltaFrame", "DeltaEncoder", "DeltaDecoder", "DesyncError"]

#: bits for the per-frame header (frame kind + cycle tag)
FRAME_HEADER_BITS = 16


class DesyncError(RuntimeError):
    """The decoder missed a frame and can no longer apply deltas."""


@dataclass(frozen=True)
class DeltaFrame:
    """One cycle's control-information frame.

    ``anchor`` frames carry the whole matrix; ``delta`` frames carry only
    the entries that changed since the previous frame.
    """

    cycle: int
    kind: str  # "anchor" | "delta"
    #: changed entries as (row, col, encoded timestamp); full content for anchors
    entries: Tuple[Tuple[int, int, int], ...]
    num_objects: int
    timestamp_bits: int

    def __post_init__(self) -> None:
        if self.kind not in ("anchor", "delta"):
            raise ValueError(f"unknown frame kind {self.kind!r}")

    @property
    def coordinate_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.num_objects)))

    def size_bits(self) -> int:
        """Wire size of this frame.

        Anchors ship the dense matrix (n² timestamps, no coordinates);
        deltas ship ``(2·coord + ts)`` bits per changed entry plus a
        length field (counted inside the header allowance).
        """
        if self.kind == "anchor":
            return FRAME_HEADER_BITS + self.num_objects ** 2 * self.timestamp_bits
        per_entry = 2 * self.coordinate_bits + self.timestamp_bits
        return FRAME_HEADER_BITS + len(self.entries) * per_entry


class DeltaEncoder:
    """Server side: turn successive snapshots into frames."""

    def __init__(
        self,
        num_objects: int,
        *,
        timestamp_bits: int = 8,
        anchor_every: int = 64,
    ):
        if anchor_every < 1:
            raise ValueError("anchor_every must be >= 1")
        self.num_objects = num_objects
        self.timestamp_bits = timestamp_bits
        self.anchor_every = anchor_every
        self._previous: Optional[np.ndarray] = None
        self._since_anchor = 0

    def encode(self, cycle: int, snapshot: np.ndarray) -> DeltaFrame:
        """Encode the snapshot broadcast at ``cycle``.

        The first frame, and every ``anchor_every``-th frame, is an
        anchor; the rest are deltas against the previous snapshot.
        """
        if snapshot.shape != (self.num_objects, self.num_objects):
            raise ValueError("snapshot has the wrong shape")
        make_anchor = self._previous is None or self._since_anchor >= self.anchor_every - 1
        if make_anchor:
            entries: Tuple[Tuple[int, int, int], ...] = tuple(
                (int(i), int(j), int(snapshot[i, j]))
                for i in range(self.num_objects)
                for j in range(self.num_objects)
                if snapshot[i, j]
            )
            frame = DeltaFrame(
                cycle, "anchor", entries, self.num_objects, self.timestamp_bits
            )
            self._since_anchor = 0
        else:
            assert self._previous is not None
            rows, cols = np.nonzero(snapshot != self._previous)
            entries = tuple(
                (int(i), int(j), int(snapshot[i, j])) for i, j in zip(rows, cols)
            )
            frame = DeltaFrame(
                cycle, "delta", entries, self.num_objects, self.timestamp_bits
            )
            self._since_anchor += 1
        self._previous = snapshot.copy()
        return frame


class DeltaDecoder:
    """Client side: reconstruct snapshots by replaying frames.

    The client must hear every frame; a gap in cycle numbers after
    synchronisation raises :class:`DesyncError` (the client then waits
    for the next anchor, exactly the paper's noted drawback).
    """

    def __init__(self, num_objects: int):
        self.num_objects = num_objects
        self._matrix: Optional[np.ndarray] = None
        self._last_cycle: Optional[int] = None

    @property
    def synchronised(self) -> bool:
        return self._matrix is not None

    def apply(self, frame: DeltaFrame) -> Optional[np.ndarray]:
        """Apply one frame; returns the current snapshot (or None while
        waiting for the first anchor)."""
        if frame.kind == "anchor":
            matrix = np.zeros((self.num_objects, self.num_objects), dtype=np.int64)
            for i, j, value in frame.entries:
                matrix[i, j] = value
            self._matrix = matrix
        else:
            if self._matrix is None:
                return None  # not yet synchronised: ignore deltas
            if self._last_cycle is not None and frame.cycle != self._last_cycle + 1:
                self._matrix = None
                self._last_cycle = None
                raise DesyncError(
                    f"missed frame(s) before cycle {frame.cycle}; wait for anchor"
                )
            for i, j, value in frame.entries:
                self._matrix[i, j] = value
        self._last_cycle = frame.cycle
        return self.snapshot()

    def snapshot(self) -> Optional[np.ndarray]:
        return None if self._matrix is None else self._matrix.copy()


def replay_sizes(frames: Sequence[DeltaFrame]) -> Tuple[int, int]:
    """Total (delta-encoded, dense) bits for a frame sequence.

    The dense figure charges every cycle the full ``n²·TS`` matrix, which
    is what plain F-Matrix broadcasts.
    """
    if not frames:
        return (0, 0)
    encoded = sum(f.size_bits() for f in frames)
    dense = sum(
        FRAME_HEADER_BITS + f.num_objects ** 2 * f.timestamp_bits for f in frames
    )
    return encoded, dense
