"""Broadcast-disk substrate: layouts, control-information sizing and the
per-cycle broadcast image."""

from .control_info import ControlInfoScheme, scheme_for_protocol
from .delta import DeltaDecoder, DeltaEncoder, DeltaFrame, DesyncError
from .layout import BroadcastLayout, FlatLayout, MultiDiskLayout, SlotHit
from .program import BroadcastCycle, ObjectVersion

__all__ = [
    "ControlInfoScheme",
    "scheme_for_protocol",
    "DeltaEncoder",
    "DeltaDecoder",
    "DeltaFrame",
    "DesyncError",
    "BroadcastLayout",
    "FlatLayout",
    "MultiDiskLayout",
    "SlotHit",
    "BroadcastCycle",
    "ObjectVersion",
]
