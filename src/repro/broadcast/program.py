"""The per-cycle broadcast image: frozen values plus control information.

At the beginning of each cycle the server freezes (1) the latest committed
value of every object and (2) the control information the protocol in
force requires, producing a :class:`BroadcastCycle`.  Clients read both
"off the air": a value is available at its slot's end time (from the
layout), and the control snapshot anchors the protocol's read condition.

Values carry provenance — ``(writer transaction, commit cycle)`` — so
integration tests can reconstruct the global history a simulation induced
and cross-check protocol decisions against the APPROX theory
(:mod:`repro.sim.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.validators import ControlSnapshot

__all__ = ["ObjectVersion", "BroadcastCycle"]


@dataclass(frozen=True)
class ObjectVersion:
    """A committed object version with provenance."""

    obj: int
    value: object
    writer: str
    commit_cycle: int


@dataclass(frozen=True)
class BroadcastCycle:
    """Everything broadcast during one cycle.

    ``snapshot`` is the control information frozen at the cycle's start
    (see :class:`repro.core.validators.ControlSnapshot`); ``versions`` are
    the committed-as-of-cycle-start object versions, indexed by object id.
    """

    cycle: int
    versions: Tuple[ObjectVersion, ...]
    snapshot: ControlSnapshot

    def version(self, obj: int) -> ObjectVersion:
        return self.versions[obj]

    @property
    def num_objects(self) -> int:
        return len(self.versions)

    def column(self, obj: int) -> Optional[np.ndarray]:
        """The F-Matrix column riding with ``obj`` (None for vector modes).

        This is what a quasi-caching client stores alongside a cached
        object (Sec. 3.3): the column contains every entry a later
        validation of that object's cached value needs.  Returned as a
        read-only *view* of the frozen per-cycle snapshot — the snapshot
        is immutable for the cycle's lifetime, so no per-call copy is
        needed and callers must not write through it.
        """
        if self.snapshot.matrix is None:
            return None
        column = self.snapshot.matrix[:, obj]
        column.flags.writeable = False
        return column
