"""Control-information sizing for the broadcast protocols (Sec. 4.1).

The protocols differ in how many control bits accompany the data in each
broadcast cycle:

* **F-Matrix** — column ``j`` of the ``n × n`` matrix rides with object
  ``j``: ``n × TS`` bits per object slot, ``n² × TS`` bits per cycle.
  Appendix D (Theorem 8) shows this is worst-case incompressible:
  quadratically many distinct matrices arise, so we charge the full size.
* **R-Matrix / Datacycle** — one vector entry per object: ``TS`` bits per
  slot, ``n × TS`` per cycle.
* **Group matrix** — each group's length-``n`` column is broadcast once
  per cycle: ``g × n × TS`` bits per cycle, amortised evenly over slots.
* **F-Matrix-No** — the ideal baseline: zero control bits.

The paper's overhead fractions follow directly:
``n·TS / (n·TS + OBJ)`` for F-Matrix (≈23% at n=300, TS=8, OBJ=8 Kibit)
and ``TS / (TS + OBJ)`` (≈0.1%) for the vector schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.group_matrix import Partition
from ..core.validators import ControlSnapshot

__all__ = [
    "ControlInfoScheme",
    "scheme_for_protocol",
    "snapshot_payload",
    "rebuild_snapshot",
]


@dataclass(frozen=True)
class ControlInfoScheme:
    """Per-slot and per-cycle control-bit accounting."""

    name: str
    #: control bits broadcast alongside each object slot
    bits_per_slot: int
    #: control bits broadcast once per cycle (not attached to a slot)
    bits_per_cycle_extra: int = 0

    def cycle_control_bits(self, num_objects: int) -> int:
        return self.bits_per_slot * num_objects + self.bits_per_cycle_extra

    def cycle_bits(self, num_objects: int, object_bits: int) -> int:
        """Total broadcast cycle length in bits (data + control)."""
        return num_objects * object_bits + self.cycle_control_bits(num_objects)

    def overhead_fraction(self, num_objects: int, object_bits: int) -> float:
        """Fraction of the cycle spent on control information (Sec. 4.1)."""
        total = self.cycle_bits(num_objects, object_bits)
        return self.cycle_control_bits(num_objects) / total


def scheme_for_protocol(
    protocol: str,
    *,
    num_objects: int,
    timestamp_bits: int,
    num_groups: int = 1,
) -> ControlInfoScheme:
    """The control-information scheme a protocol mandates.

    ``num_groups`` only matters for ``group-matrix``.
    """
    if protocol == "f-matrix":
        return ControlInfoScheme("f-matrix", num_objects * timestamp_bits)
    if protocol == "f-matrix-no":
        return ControlInfoScheme("f-matrix-no", 0)
    if protocol in ("r-matrix", "datacycle"):
        return ControlInfoScheme(protocol, timestamp_bits)
    if protocol == "group-matrix":
        total = num_groups * num_objects * timestamp_bits
        per_slot, remainder = divmod(total, num_objects)
        return ControlInfoScheme("group-matrix", per_slot, remainder)
    raise ValueError(f"unknown protocol {protocol!r}")


# -- flat snapshot wire format -----------------------------------------
# A frozen per-cycle control snapshot is, on the wire and in the timeline
# arena (:mod:`repro.sim.arena`), exactly one dense encoded-timestamp
# array; which :class:`~repro.core.validators.ControlSnapshot` field it
# populates is the protocol's shape.  These two helpers are the flat
# encode/decode pair: ``snapshot_payload`` strips a snapshot down to
# ``(kind, array)`` and ``rebuild_snapshot`` re-wraps a (possibly
# shared-memory-backed) array as the equivalent snapshot for a given
# cycle.  Round-tripping preserves validation decisions bit for bit —
# the snapshot's only other field is the cycle anchor.


def snapshot_payload(snapshot: ControlSnapshot) -> Tuple[str, np.ndarray]:
    """``(kind, array)`` of the one populated control field.

    ``kind`` is ``"matrix"``, ``"vector"`` or ``"grouped"`` — the name of
    the :class:`ControlSnapshot` field the array came from.
    """
    if snapshot.matrix is not None:
        return "matrix", snapshot.matrix
    if snapshot.vector is not None:
        return "vector", snapshot.vector
    if snapshot.grouped is not None:
        return "grouped", snapshot.grouped
    raise ValueError("snapshot carries no control payload")


def rebuild_snapshot(
    kind: str,
    cycle: int,
    array: np.ndarray,
    partition: Optional[Partition] = None,
) -> ControlSnapshot:
    """The snapshot whose ``kind`` field is ``array``, anchored at ``cycle``.

    The inverse of :func:`snapshot_payload`; ``partition`` travels along
    for the grouped (group-matrix) shape, which cannot be validated
    without it.
    """
    if kind == "matrix":
        return ControlSnapshot(cycle=cycle, matrix=array)
    if kind == "vector":
        return ControlSnapshot(cycle=cycle, vector=array)
    if kind == "grouped":
        return ControlSnapshot(cycle=cycle, grouped=array, partition=partition)
    raise ValueError(f"unknown snapshot kind {kind!r}")
