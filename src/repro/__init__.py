"""repro — reproduction of *Efficient Concurrency Control for Broadcast
Environments* (Shanmugasundaram, Nithrakashyap, Sivasankaran, Ramamritham;
SIGMOD 1999).

Top-level convenience re-exports cover the most common entry points:

* theory: :func:`repro.core.approx_accepts`, :func:`repro.core.is_legal`;
* protocols: :class:`repro.core.FMatrixValidator` and friends;
* system: :class:`repro.server.BroadcastServer`,
  :class:`repro.client.BroadcastClient`;
* simulation: :class:`repro.sim.SimulationConfig`,
  :func:`repro.sim.run_simulation`;
* experiments: :mod:`repro.experiments` (one entry per paper figure/table).
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
