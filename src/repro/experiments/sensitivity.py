"""Sensitivity analysis of the simulator's modelling substitutions.

DESIGN.md §4 lists choices the paper leaves unspecified and we had to
make: the distribution of server inter-completion gaps, whether an
inter-operation delay precedes the first read, and the timestamp
arithmetic on the wire.  The reproduction's conclusions should not
depend on them.  :func:`sensitivity_table` re-runs one configuration
under every variant and reports the relative deviation of the response
time from the baseline; the benchmark suite asserts the deviations stay
small, and EXPERIMENTS.md cites the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..sim.batch import replicate
from ..sim.config import SimulationConfig

__all__ = ["Variant", "VARIANTS", "SensitivityRow", "sensitivity_table"]


@dataclass(frozen=True)
class Variant:
    """One modelling alternative to flip on."""

    name: str
    description: str
    apply: Callable[[SimulationConfig], SimulationConfig]


#: the substitutions DESIGN.md documents, as config transformers
VARIANTS: Tuple[Variant, ...] = (
    Variant(
        "deterministic-gaps",
        "server completions at fixed (not exponential) intervals",
        lambda cfg: cfg.replace(server_interval_distribution="deterministic"),
    ),
    Variant(
        "delay-first-op",
        "inter-operation think time also before the first read",
        lambda cfg: cfg.replace(delay_before_first_operation=True),
    ),
    Variant(
        "modulo-timestamps",
        "8-bit wire timestamps with wrap-around comparison",
        lambda cfg: cfg.replace(modulo_timestamps=True),
    ),
)


@dataclass(frozen=True)
class SensitivityRow:
    """Baseline-vs-variant comparison for one variant."""

    variant: str
    description: str
    baseline_mean: float
    variant_mean: float

    @property
    def relative_deviation(self) -> float:
        if self.baseline_mean == 0:
            return 0.0
        return (self.variant_mean - self.baseline_mean) / self.baseline_mean


def sensitivity_table(
    config: SimulationConfig,
    *,
    variants: Sequence[Variant] = VARIANTS,
    replications: int = 3,
) -> List[SensitivityRow]:
    """Run baseline + each variant (replicated) and tabulate deviations."""
    baseline = replicate(config, replications=replications)
    rows: List[SensitivityRow] = []
    for variant in variants:
        run = replicate(variant.apply(config), replications=replications)
        rows.append(
            SensitivityRow(
                variant.name,
                variant.description,
                baseline.response_time.mean,
                run.response_time.mean,
            )
        )
    return rows
