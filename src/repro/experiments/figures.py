"""One entry per paper figure/table (Sec. 4) plus extension ablations.

Every function takes the number of client transactions per point (the
paper used 1000; the benchmark suite uses fewer for wall-clock reasons —
the *shape* conclusions are robust to this, see EXPERIMENTS.md) and
returns an :class:`repro.experiments.sweeps.ExperimentResult` carrying
the same series the paper plots.

Figure map:

* Fig. 2(a)/(b): response time / restarts vs **client transaction
  length** (2–10; Datacycle's length-10 point exceeded the paper's
  y-axis and is skipped the same way for lengths where it explodes);
* Fig. 3(a): response time vs **server transaction length** (2–16);
* Fig. 3(b): response time vs **server inter-completion time**
  (50k–450k bit-units; larger = lower rate, paper's x-axis direction);
* Fig. 4(a): response time vs **number of objects** (100–500);
* Fig. 4(b): response time vs **object size** (0.5–4 KB);
* Table 1: parameter defaults + the Sec. 4.1 control-overhead formulas.

Extensions (design-choice ablations called out in DESIGN.md):

* group-matrix spectrum between F-Matrix and the vector protocols;
* quasi-caching under weak currency bounds.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..broadcast.control_info import scheme_for_protocol
from ..sim.config import KILOBYTE_BITS, SimulationConfig
from .sweeps import ExperimentResult, run_sweep

__all__ = [
    "PAPER_PROTOCOLS",
    "default_config",
    "fig2_client_txn_length",
    "fig3a_server_txn_length",
    "fig3b_server_txn_rate",
    "fig4a_num_objects",
    "fig4b_object_size",
    "table1_overheads",
    "ablation_group_matrix",
    "ablation_caching",
    "EXPERIMENTS",
]

#: the four algorithms of the paper's evaluation, worst-to-best
PAPER_PROTOCOLS = ("datacycle", "r-matrix", "f-matrix", "f-matrix-no")


def default_config(
    transactions: int = 1000,
    seed: int = 42,
    executor: str = "process",
    shards: int = 1,
) -> SimulationConfig:
    """Table 1 defaults with a configurable run length.

    ``executor`` selects the client execution layer ("process",
    "cohort" or "analytic"); all are bit-identical, so figures may be
    reproduced on any of them (the cohort and analytic paths are faster
    at large client populations).  ``shards`` > 1 partitions the
    read-only population over worker processes (cohort/analytic only;
    see docs/PERFORMANCE.md §5) — results are identical by construction.
    """
    return SimulationConfig(
        num_client_transactions=transactions,
        seed=seed,
        client_executor=executor,
        shards=shards,
    )


def fig2_client_txn_length(
    transactions: int = 1000,
    *,
    lengths: Sequence[int] = (2, 4, 6, 8, 10),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 42,
    include_datacycle_tail: bool = False,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """Figures 2(a) and 2(b): vary client transaction length.

    Datacycle's response time at length 10 lay outside the paper's y-axis;
    by default the same point is skipped (it dominates wall-clock time),
    pass ``include_datacycle_tail=True`` to measure it anyway.
    """
    base = default_config(transactions, seed, executor, shards)

    def skip(protocol: str, value: object) -> bool:
        return (
            not include_datacycle_tail
            and protocol == "datacycle"
            and int(value) >= 10  # type: ignore[arg-type]
        )

    return run_sweep(
        "fig2",
        "client transaction length (reads)",
        base,
        "client_txn_length",
        list(lengths),
        protocols,
        skip=skip,
        workers=workers,
    )


def fig3a_server_txn_length(
    transactions: int = 1000,
    *,
    lengths: Sequence[int] = (2, 4, 8, 12, 16),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    client_txn_length: int = 4,
    seed: int = 42,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """Figure 3(a): vary server transaction length.

    ``client_txn_length`` defaults to the paper's Table 1 value (4);
    EXPERIMENTS.md also reports length 8, where abort costs dominate the
    control-information overhead and the paper's full F < R < Datacycle
    ordering is unambiguous.
    """
    base = default_config(transactions, seed, executor, shards).replace(
        client_txn_length=client_txn_length
    )
    return run_sweep(
        "fig3a",
        "server transaction length (ops)",
        base,
        "server_txn_length",
        list(lengths),
        protocols,
        workers=workers,
    )


def fig3b_server_txn_rate(
    transactions: int = 1000,
    *,
    intervals: Sequence[float] = (50_000, 150_000, 250_000, 350_000, 450_000),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 42,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """Figure 3(b): vary server inter-completion time (rate decreases →)."""
    base = default_config(transactions, seed, executor, shards)
    return run_sweep(
        "fig3b",
        "server inter-completion time (bit-units)",
        base,
        "server_txn_interval",
        list(intervals),
        protocols,
        workers=workers,
    )


def fig4a_num_objects(
    transactions: int = 1000,
    *,
    sizes: Sequence[int] = (100, 200, 300, 400, 500),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    client_txn_length: int = 4,
    seed: int = 42,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """Figure 4(a): vary the number of database objects.

    ``client_txn_length`` as in :func:`fig3a_server_txn_length`.
    """
    base = default_config(transactions, seed, executor, shards).replace(
        client_txn_length=client_txn_length
    )
    return run_sweep(
        "fig4a",
        "number of objects",
        base,
        "num_objects",
        list(sizes),
        protocols,
        workers=workers,
    )


def fig4b_object_size(
    transactions: int = 1000,
    *,
    sizes_kb: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 42,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """Figure 4(b): vary the object size (KB on the x-axis)."""
    base = default_config(transactions, seed, executor, shards)

    def hook(cfg: SimulationConfig, value: object) -> SimulationConfig:
        return cfg.replace(object_size_bits=int(float(value) * KILOBYTE_BITS))  # type: ignore[arg-type]

    return run_sweep(
        "fig4b",
        "object size (KB)",
        base,
        "object_size_bits",
        list(sizes_kb),
        protocols,
        config_hook=hook,
        workers=workers,
    )


def table1_overheads(
    *,
    num_objects: int = 300,
    object_size_bits: int = KILOBYTE_BITS,
    timestamp_bits: int = 8,
) -> Dict[str, float]:
    """Sec. 4.1's control-information overhead fractions per protocol.

    With the Table 1 defaults: F-Matrix ≈ 23%, R-Matrix/Datacycle ≈ 0.1%.
    """
    out: Dict[str, float] = {}
    for protocol in ("f-matrix", "r-matrix", "datacycle", "f-matrix-no"):
        scheme = scheme_for_protocol(
            protocol, num_objects=num_objects, timestamp_bits=timestamp_bits
        )
        out[protocol] = scheme.overhead_fraction(num_objects, object_size_bits)
    return out


# ----------------------------------------------------------------------
# extension ablations
# ----------------------------------------------------------------------

def ablation_group_matrix(
    transactions: int = 500,
    *,
    group_counts: Sequence[int] = (1, 4, 16, 64),
    client_txn_length: int = 8,
    seed: int = 42,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """The F-Matrix ↔ vector spectrum (Sec. 3.2.2): sweep group count.

    Each point is the ``group-matrix`` protocol at a different partition
    granularity; one column per group rides in a per-cycle preamble, so
    both abort behaviour *and* cycle length vary with ``g``.  F-Matrix
    and Datacycle are the spectrum's endpoints (g = n with per-slot
    columns / g = 1 with the strict condition).
    """
    base = default_config(transactions, seed, executor, shards).replace(
        client_txn_length=client_txn_length
    )

    def hook(cfg: SimulationConfig, value: object) -> SimulationConfig:
        return cfg.replace(num_groups=int(value))  # type: ignore[arg-type]

    return run_sweep(
        "ablation-groups",
        "number of groups",
        base,
        "num_groups",
        list(group_counts),
        ["group-matrix"],
        config_hook=hook,
        workers=workers,
    )


def ablation_caching(
    transactions: int = 500,
    *,
    currency_bounds_cycles: Sequence[float] = (0.0, 1.0, 4.0, 16.0),
    protocol: str = "f-matrix",
    client_txn_length: int = 8,
    server_txn_interval: float = 2_000_000.0,
    seed: int = 42,
    workers: Optional[int] = None,
    executor: str = "process",
    shards: int = 1,
) -> ExperimentResult:
    """Quasi-caching under weak currency (Sec. 3.3, our quantification).

    The x-axis is the currency bound T in *cycles* (0 disables caching).
    Caching trades waiting time against staleness aborts: at low-to-
    moderate update rates (default here: one server transaction per 2M
    bit-units) response time falls as T grows; at Table 1's high default
    rate the abort cost cancels the benefit — both regimes are honest
    outcomes of the paper's Sec. 3.3 design and recorded in
    EXPERIMENTS.md.  Mutual consistency is preserved throughout (the
    trace cross-check in the test suite covers the cached path too).
    """
    base = default_config(transactions, seed, executor, shards).replace(
        client_txn_length=client_txn_length,
        protocol=protocol,
        server_txn_interval=server_txn_interval,
    )
    cycle_bits = base.cycle_bits

    def hook(cfg: SimulationConfig, value: object) -> SimulationConfig:
        bound = float(value) * cycle_bits  # type: ignore[arg-type]
        return cfg.replace(cache_currency_bound=bound if bound > 0 else None)

    return run_sweep(
        "ablation-caching",
        "currency bound T (cycles)",
        base,
        "cache_currency_bound",
        list(currency_bounds_cycles),
        [protocol],
        config_hook=hook,
        workers=workers,
    )


#: experiment registry used by the CLI
EXPERIMENTS = {
    "fig2": fig2_client_txn_length,
    "fig3a": fig3a_server_txn_length,
    "fig3b": fig3b_server_txn_rate,
    "fig4a": fig4a_num_objects,
    "fig4b": fig4b_object_size,
    "ablation-groups": ablation_group_matrix,
    "ablation-caching": ablation_caching,
}
