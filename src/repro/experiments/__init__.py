"""Evaluation harness: one runnable entry per paper figure/table."""

from .faults import (
    FAULT_PROTOCOLS,
    FaultRunSummary,
    faults_config,
    format_faults_report,
    run_faults_report,
)
from .figures import (
    EXPERIMENTS,
    PAPER_PROTOCOLS,
    ablation_caching,
    ablation_group_matrix,
    default_config,
    fig2_client_txn_length,
    fig3a_server_txn_length,
    fig3b_server_txn_rate,
    fig4a_num_objects,
    fig4b_object_size,
    table1_overheads,
)
from .plotting import protocol_glyphs, render_chart
from .sensitivity import VARIANTS, sensitivity_table
from .store import compare_results, load_result, save_result
from .suite import compare_to_baseline, generate_report
from .report import format_csv, format_overheads, format_table
from .sweeps import ExperimentResult, Point, Series, run_sweep

__all__ = [
    "EXPERIMENTS",
    "PAPER_PROTOCOLS",
    "default_config",
    "fig2_client_txn_length",
    "fig3a_server_txn_length",
    "fig3b_server_txn_rate",
    "fig4a_num_objects",
    "fig4b_object_size",
    "table1_overheads",
    "ablation_group_matrix",
    "ablation_caching",
    "FAULT_PROTOCOLS",
    "FaultRunSummary",
    "faults_config",
    "run_faults_report",
    "format_faults_report",
    "run_sweep",
    "ExperimentResult",
    "Series",
    "Point",
    "format_table",
    "render_chart",
    "protocol_glyphs",
    "format_csv",
    "format_overheads",
    "save_result",
    "load_result",
    "compare_results",
    "generate_report",
    "compare_to_baseline",
    "sensitivity_table",
    "VARIANTS",
]
