"""One-shot reproduction report: run everything, archive everything.

``generate_report(out_dir)`` runs the full evaluation (all figures, the
table, the ablations), writes per-experiment JSON archives + CSVs + text
tables + ASCII charts into ``out_dir``, and emits a single
``REPORT.md`` summarising paper-vs-measured — the artifact a referee or
CI job consumes.  ``compare_to_baseline`` diffs a fresh run against a
previously archived directory and reports significant drifts
(:mod:`repro.experiments.store`).
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from .figures import EXPERIMENTS, table1_overheads
from .plotting import render_chart
from .report import format_csv, format_overheads, format_table
from .store import Drift, compare_results, load_result, save_result
from .sweeps import ExperimentResult

__all__ = ["generate_report", "compare_to_baseline"]


def generate_report(
    out_dir: Union[str, pathlib.Path],
    *,
    transactions: int = 1000,
    seed: int = 42,
    experiments: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> pathlib.Path:
    """Run the evaluation and write the report tree.

    Returns the path of the generated ``REPORT.md``.  Layout::

        out_dir/
          REPORT.md                  the summary
          <experiment>.json          archive (machine-readable, diffable)
          <experiment>.csv           per-point rows
          <experiment>.txt           aligned tables + ASCII chart
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(experiments) if experiments is not None else sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    lines: List[str] = [
        "# Reproduction report",
        "",
        f"- transactions per data point: **{transactions}**",
        f"- base seed: {seed}",
        f"- experiments: {', '.join(names)}",
        "",
        "## Control-information overheads (Table 1 / Sec. 4.1)",
        "",
        "```",
        format_overheads(table1_overheads()).rstrip(),
        "```",
        "",
    ]

    for name in names:
        start = time.time()
        result: ExperimentResult = EXPERIMENTS[name](transactions, seed=seed)
        elapsed = time.time() - start
        if progress is not None:
            progress(name, elapsed)

        save_result(result, out / f"{name}.json")
        (out / f"{name}.csv").write_text(format_csv(result))
        chart = render_chart(result, log_y=True)
        (out / f"{name}.txt").write_text(format_table(result) + "\n" + chart)

        lines += [
            f"## {name}",
            "",
            f"({elapsed:.1f}s wall clock; archives: `{name}.json`, `{name}.csv`)",
            "",
            "```",
            format_table(result).rstrip(),
            "```",
            "",
            "```",
            chart.rstrip(),
            "```",
            "",
        ]

    report = out / "REPORT.md"
    report.write_text("\n".join(lines))
    return report


def compare_to_baseline(
    baseline_dir: Union[str, pathlib.Path],
    current_dir: Union[str, pathlib.Path],
    *,
    tolerance: float = 0.10,
) -> Dict[str, List[Drift]]:
    """Diff two archived report trees; returns significant drifts only.

    Experiments missing on either side are skipped (sweeps evolve).
    """
    baseline = pathlib.Path(baseline_dir)
    current = pathlib.Path(current_dir)
    out: Dict[str, List[Drift]] = {}
    for path in sorted(baseline.glob("*.json")):
        other = current / path.name
        if not other.exists():
            continue
        drifts = compare_results(
            load_result(path), load_result(other), tolerance=tolerance
        )
        significant = [d for d in drifts if d.significant]
        if significant:
            out[path.stem] = significant
    return out
