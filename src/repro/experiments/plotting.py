"""Terminal (ASCII) rendering of experiment curves.

The paper presents Figures 2–4 as line charts; this renderer draws the
same curves in a terminal so the harness can be used without any
plotting dependency::

    == fig2: response time ==
    6.0e+07 |                                 D
            |
            |                          D
    ...     |            D      R      F
            +--------------------------------
             2      4      6      8      10

One character column per x position band; protocols are plotted with
their initial letter (collisions show ``*``).  A logarithmic y-axis is
available for the heavily skewed Datacycle curves.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .sweeps import ExperimentResult, Series

__all__ = ["render_chart", "protocol_glyphs"]

#: default glyphs: first letter, uppercased, disambiguated
def protocol_glyphs(protocols: Sequence[str]) -> Dict[str, str]:
    """Single-character markers per protocol (``f-matrix-no`` -> ``o``)."""
    glyphs: Dict[str, str] = {}
    for protocol in protocols:
        if protocol == "f-matrix-no":
            glyph = "o"
        else:
            glyph = protocol[0].upper()
        if glyph in glyphs.values():
            for char in protocol.upper():
                if char.isalpha() and char not in glyphs.values():
                    glyph = char
                    break
        glyphs[protocol] = glyph
    return glyphs


def _format_y(value: float) -> str:
    return f"{value:8.2e}"


def render_chart(
    result: ExperimentResult,
    *,
    metric: str = "response_time",
    height: int = 16,
    width: int = 64,
    log_y: bool = False,
) -> str:
    """Draw one experiment's curves as an ASCII chart.

    ``metric`` is ``response_time`` or ``restart_ratio``.
    """
    if metric not in ("response_time", "restart_ratio"):
        raise ValueError("metric must be response_time or restart_ratio")
    if height < 4 or width < 16:
        raise ValueError("chart too small to draw")

    points: List[Tuple[str, float, float]] = []
    for protocol, series in result.series.items():
        for point in series.points:
            value = getattr(point, metric).mean
            points.append((protocol, point.x, value))
    if not points:
        raise ValueError("nothing to plot")

    xs = sorted({x for _p, x, _v in points})
    values = [v for _p, _x, v in points]
    v_min, v_max = min(values), max(values)
    if log_y:
        if v_min <= 0:
            log_floor = min((v for v in values if v > 0), default=1.0) / 10
            transform = lambda v: math.log10(max(v, log_floor))
        else:
            transform = math.log10
    else:
        transform = lambda v: v
    t_min, t_max = transform(v_min), transform(v_max)
    t_span = (t_max - t_min) or 1.0

    def row_of(value: float) -> int:
        frac = (transform(value) - t_min) / t_span
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    def col_of(x: float) -> int:
        if len(xs) == 1:
            return width // 2
        frac = (x - xs[0]) / (xs[-1] - xs[0])
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    grid = [[" "] * width for _ in range(height)]
    glyphs = protocol_glyphs(list(result.series))
    for protocol, x, value in points:
        row = height - 1 - row_of(value)
        col = col_of(x)
        cell = grid[row][col]
        grid[row][col] = glyphs[protocol] if cell == " " else "*"

    lines = [f"== {result.name}: {metric.replace('_', ' ')} =="]
    for idx, row in enumerate(grid):
        if idx == 0:
            label = _format_y(v_max)
        elif idx == height - 1:
            label = _format_y(v_min)
        else:
            label = " " * 8
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 8 + "+" + "-" * width)
    # x tick labels spread under their columns
    tick_row = [" "] * (width + 1)
    for x in xs:
        label = f"{x:g}"
        col = col_of(x)
        start = min(max(0, col - len(label) // 2), width - len(label))
        for k, ch in enumerate(label):
            tick_row[start + k] = ch
    lines.append(" " * 9 + "".join(tick_row))
    legend = "  ".join(f"{glyph}={protocol}" for protocol, glyph in glyphs.items())
    lines.append(" " * 9 + legend)
    return "\n".join(lines) + "\n"
