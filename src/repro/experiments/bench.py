"""Wall-clock benchmark harness (installed as ``repro-bench``).

Times the canonical workloads every perf PR cares about and writes the
measurements, together with :meth:`SimulationConfig.fingerprint` tags, to
a JSON document (default ``BENCH_fastpath.json``) so successive runs are
comparable::

    repro-bench                       # full canonical run
    repro-bench --smoke               # tiny run for CI crash-detection
    repro-bench --append --label after-my-change

Three sections:

* **simulations** — one seeded end-to-end simulation per protocol at the
  paper's Table 1 scale (300 objects, 1 KB objects); each record carries
  the run's metrics (``response_mean``, ``restart_mean``, ``events``) so
  two benchmark runs double as a same-seed determinism cross-check;
* **micro** — hot-path micro-benchmarks: :meth:`ControlMatrix.apply_commit`,
  per-cycle snapshot freezing (:meth:`BroadcastServer.begin_cycle`), and
  :meth:`ReadValidator.validate_read` over long read sets;
* **sweeps** — the experiment suite (``repro-experiments all``'s grid)
  timed sequentially and, when ``--workers`` > 1, through the parallel
  sweep executor.  Parallel speedup is bounded by the machine's core
  count (recorded as ``cpu_count``);
* **scaling** — client-count scaling (``repro-bench --sections scaling
  --output BENCH_scaling.json``).  The standard tier times the
  per-process executor vs. the slot-coalesced cohort executor on the
  same seeded workload and checks their metrics are bit-identical; the
  **mega tier** (16 384 … 1 000 000 clients) times the sharded
  analytical tier, cross-checked against ``shards=1`` at every point
  and against the cohort executor up to 65 536 clients.  Every point
  records its own provenance (actual ``os.cpu_count()``, shard count,
  effective pool workers, and ``getrusage`` max-RSS high-water marks for
  the parent and its pool workers), and a re-run at one point
  double-checks same-seed determinism.  A **timeline** sub-section
  times sharded ``timeline_mode="recompute"`` against
  ``timeline_mode="replay"`` (one recording pass, zero-copy
  shared-memory arena, observer shards) on the same seeded workload,
  then re-runs replay warm and with a client-side parameter varied to
  demonstrate a real cross-run :data:`repro.sim.TIMELINE_CACHE` hit —
  every mode bit-identical to the unsharded oracle.

With ``--append`` the run is added to the existing document's ``runs``
list and a ``comparison`` block (first vs. last run: per-workload speedup
plus a determinism verdict) is recomputed.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import random
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.control_matrix import ControlMatrix
from ..core.cycles import UnboundedCycles
from ..core.validators import ControlSnapshot, make_validator
from ..server.server import BroadcastServer
from ..sim.arena import TIMELINE_CACHE
from ..sim.config import SimulationConfig
from ..sim.simulation import run_simulation
from .figures import EXPERIMENTS

__all__ = [
    "bench_simulations",
    "bench_micro",
    "bench_sweeps",
    "bench_scaling",
    "bench_timeline",
    "MEGA_CLIENT_COUNTS",
    "SCALING_CLIENT_COUNTS",
    "run_bench",
    "compare_runs",
    "build_parser",
    "main",
]

#: every section run_bench knows how to execute
SECTIONS = ("simulations", "micro", "sweeps", "scaling")

#: experiments timed by the sweeps section, in a fixed canonical order
SWEEP_NAMES = (
    "fig2",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "ablation-groups",
    "ablation-caching",
)


def _timed(fn: Callable[[], Any]) -> "tuple[float, Any]":
    start = time.perf_counter()
    value = fn()
    return (time.perf_counter() - start, value)


# ----------------------------------------------------------------------
# section: end-to-end simulations
# ----------------------------------------------------------------------

def _canonical_configs(
    transactions: int, seed: int
) -> List["tuple[str, SimulationConfig]"]:
    base = dict(num_client_transactions=transactions, seed=seed)
    return [
        ("f-matrix", SimulationConfig(protocol="f-matrix", **base)),
        ("f-matrix-no", SimulationConfig(protocol="f-matrix-no", **base)),
        ("r-matrix", SimulationConfig(protocol="r-matrix", **base)),
        ("datacycle", SimulationConfig(protocol="datacycle", **base)),
        (
            "group-matrix-16",
            SimulationConfig(protocol="group-matrix", num_groups=16, **base),
        ),
        (
            "f-matrix-modulo",
            SimulationConfig(
                protocol="f-matrix", modulo_timestamps=True, **base
            ),
        ),
    ]


def bench_simulations(
    *, transactions: int = 500, seed: int = 42
) -> List[Dict[str, Any]]:
    """One timed simulation per protocol at Table 1 scale."""
    records: List[Dict[str, Any]] = []
    for name, config in _canonical_configs(transactions, seed):
        seconds, run = _timed(lambda cfg=config: run_simulation(cfg))
        records.append(
            {
                "name": name,
                "protocol": config.protocol,
                "fingerprint": config.fingerprint(),
                "transactions": transactions,
                "seconds": round(seconds, 4),
                "events": run.events,
                "events_per_second": round(run.events / seconds, 1),
                # same-seed determinism evidence: these must not move
                # across benchmark runs of the same workload
                "response_mean": run.response_time.mean,
                "restart_mean": run.restart_ratio.mean,
            }
        )
    return records


# ----------------------------------------------------------------------
# section: micro-benchmarks
# ----------------------------------------------------------------------

def bench_micro(
    *,
    num_objects: int = 300,
    commits: int = 3000,
    cycles: int = 2000,
    validate_txns: int = 100,
    validate_txn_length: int = 64,
    seed: int = 9,
) -> List[Dict[str, Any]]:
    """Hot-path micro-benchmarks with deterministic workload content."""
    records: List[Dict[str, Any]] = []

    # -- ControlMatrix.apply_commit ------------------------------------
    rng = random.Random(seed)
    jobs = []
    cycle = 0
    for k in range(commits):
        if k % 3 == 0:
            cycle += 1
        jobs.append(
            (
                cycle,
                rng.sample(range(num_objects), 4),
                rng.sample(range(num_objects), 4),
            )
        )
    cm = ControlMatrix(num_objects)

    def _apply_all() -> None:
        for commit_cycle, rs, ws in jobs:
            cm.apply_commit(commit_cycle, rs, ws)

    seconds, _ = _timed(_apply_all)
    records.append(
        {
            "name": "apply_commit",
            "iterations": commits,
            "seconds": round(seconds, 4),
            "per_op_us": round(seconds / commits * 1e6, 2),
            "num_objects": num_objects,
            "checksum": int(cm.array.sum()),
        }
    )

    # -- per-cycle snapshot freezing -----------------------------------
    def _freeze(commit_every: Optional[int], label: str) -> None:
        server = BroadcastServer(num_objects, "f-matrix")
        freeze_rng = random.Random(seed + 1)
        pending = []
        for c in range(1, cycles + 1):
            if commit_every is not None and c % commit_every == 0:
                pending.append(
                    (
                        c,
                        freeze_rng.sample(range(num_objects), 4),
                        freeze_rng.sample(range(num_objects), 4),
                    )
                )

        def _run() -> int:
            checksum = 0
            jobs_iter = iter(pending)
            upcoming = next(jobs_iter, None)
            for c in range(1, cycles + 1):
                broadcast = server.begin_cycle(c)
                assert broadcast.snapshot.matrix is not None
                checksum ^= int(broadcast.snapshot.matrix[0, 0])
                while upcoming is not None and upcoming[0] == c:
                    _cycle, rs, ws = upcoming
                    server.commit_update(
                        f"s{c}", rs, {w: c for w in ws}, cycle=c
                    )
                    upcoming = next(jobs_iter, None)
            return checksum

        run_seconds, checksum = _timed(_run)
        records.append(
            {
                "name": label,
                "iterations": cycles,
                "seconds": round(run_seconds, 4),
                "per_op_us": round(run_seconds / cycles * 1e6, 2),
                "num_objects": num_objects,
                "checksum": checksum,
            }
        )

    _freeze(4, "snapshot_freeze_mixed")      # a commit every 4th cycle
    _freeze(None, "snapshot_freeze_quiescent")  # no commits: pure reuse

    # -- validate_read over long read sets -----------------------------
    arithmetic = UnboundedCycles()
    matrix = np.zeros((num_objects, num_objects), dtype=np.int64)
    vector = np.zeros(num_objects, dtype=np.int64)
    read_rng = random.Random(seed + 2)
    programs = [
        read_rng.sample(range(num_objects), validate_txn_length)
        for _ in range(validate_txns)
    ]
    for proto, snapshot in (
        ("f-matrix", ControlSnapshot(cycle=50, matrix=matrix)),
        ("datacycle", ControlSnapshot(cycle=50, vector=vector)),
    ):
        validator = make_validator(proto, arithmetic=arithmetic)

        def _validate() -> int:
            accepted = 0
            for program in programs:
                validator.begin()
                for obj in program:
                    accepted += int(validator.validate_read(obj, snapshot))
            return accepted

        seconds, accepted = _timed(_validate)
        reads = validate_txns * validate_txn_length
        records.append(
            {
                "name": f"validate_read_{proto}",
                "iterations": reads,
                "seconds": round(seconds, 4),
                "per_op_us": round(seconds / reads * 1e6, 2),
                "txn_length": validate_txn_length,
                "checksum": accepted,
            }
        )
    return records


# ----------------------------------------------------------------------
# section: the experiment-suite sweeps
# ----------------------------------------------------------------------

def _run_experiment(
    name: str, transactions: int, seed: int, workers: int
) -> Any:
    runner = EXPERIMENTS[name]
    if workers > 1:
        return runner(transactions, seed=seed, workers=workers)
    return runner(transactions, seed=seed)


def bench_sweeps(
    *,
    names: Sequence[str] = SWEEP_NAMES,
    transactions: int = 300,
    seed: int = 42,
    workers: int = 0,
) -> Dict[str, Any]:
    """Time the experiment grid sequentially and (optionally) in parallel."""
    out: Dict[str, Any] = {"transactions": transactions, "seed": seed}

    def _time_all(n_workers: int) -> "tuple[float, List[Dict[str, Any]]]":
        rows: List[Dict[str, Any]] = []
        total = 0.0
        for name in names:
            seconds, result = _timed(
                lambda nm=name: _run_experiment(
                    nm, transactions, seed, n_workers
                )
            )
            total += seconds
            rows.append(
                {
                    "name": name,
                    "seconds": round(seconds, 3),
                    "points": sum(
                        len(s.points) for s in result.series.values()
                    ),
                }
            )
        return (total, rows)

    sequential_seconds, rows = _time_all(1)
    out["experiments"] = rows
    out["sequential_seconds"] = round(sequential_seconds, 3)
    if workers > 1:
        parallel_seconds, parallel_rows = _time_all(workers)
        out["workers"] = workers
        out["parallel_experiments"] = parallel_rows
        out["parallel_seconds"] = round(parallel_seconds, 3)
        out["parallel_speedup"] = round(
            sequential_seconds / parallel_seconds, 3
        )
    return out


# ----------------------------------------------------------------------
# section: client-count scaling (per-process vs. cohort executor)
# ----------------------------------------------------------------------

#: client populations of the standard scaling tier (process vs. cohort)
SCALING_CLIENT_COUNTS = (8, 64, 512, 4096)

#: client populations of the mega tier (sharded analytical executor);
#: per-population transaction counts taper so the top points stay
#: re-runnable, and shard counts grow with the population
MEGA_CLIENT_COUNTS = (16_384, 65_536, 262_144, 1_000_000)
_MEGA_TRANSACTIONS = {16_384: 8, 65_536: 8, 262_144: 4, 1_000_000: 2}
_MEGA_SHARDS = {16_384: 2, 65_536: 2, 262_144: 4, 1_000_000: 4}

#: above this population the mega tier drops per-transaction sample
#: objects (``keep_samples=False``) — metrics stay array-backed only
_SAMPLE_CAP = 262_144

#: largest population where the event-driven cohort executor is cheap
#: enough to serve as a second identity basis
_COHORT_CROSSCHECK_CAP = 65_536

#: the broadcast-bound workload the cohort executor is built for: few
#: objects, short cycles, think times far below the cycle length — so
#: many clients wait on the same slot and coalescing pays.  Table 1's
#: defaults (300 objects, sparse slots) are reported alongside as the
#: honest low end; see docs/PERFORMANCE.md.
_SCALING_DENSE = dict(
    protocol="f-matrix",
    num_objects=16,
    client_txn_length=12,
    mean_inter_operation_delay=4096.0,
    mean_inter_transaction_delay=16384.0,
    server_txn_interval=2_000_000.0,
)


def _metric_signature(result: Any) -> Dict[str, Any]:
    """The observable outcome of a run, for bit-identity comparison.

    Everything the paper's metrics are computed from: per-transaction
    commits are folded into the summary stats, the counters come along
    verbatim.  Two executors producing equal signatures on the same
    seeded config are observably equivalent.
    """
    metrics = result.metrics
    return {
        "commits": metrics.commit_count,
        "reads_delivered": metrics.reads_delivered,
        "reads_rejected": metrics.reads_rejected,
        "listening_bits": metrics.listening_bits,
        "response_mean": result.response_time.mean,
        "restart_mean": result.restart_ratio.mean,
        "sim_time": result.sim_time,
    }


def _best_of(config: SimulationConfig, trials: int) -> "tuple[float, Any]":
    best: Optional[float] = None
    result: Any = None
    for _ in range(trials):
        gc.collect()
        seconds, result = _timed(lambda: run_simulation(config))
        best = seconds if best is None else min(best, seconds)
    assert best is not None
    return (best, result)


def _provenance(shards: int) -> Dict[str, Any]:
    """Per-point execution provenance: what actually ran, where.

    Records the machine's real core count (not the run header's
    ``workers`` request) and, for sharded points, the pool size
    :func:`~repro.sim.shard.run_sharded` resolves by default — the
    parent runs the primary shard itself, so the pool gets at most
    ``shards - 1`` workers and at most ``cpus - 1`` cores.
    """
    cpus = os.cpu_count() or 1
    return {
        "cpu_count": cpus,
        "shards": shards,
        "effective_workers": (
            min(shards - 1, max(1, cpus - 1)) if shards > 1 else 0
        ),
    }


def _max_rss_kb() -> Dict[str, int]:
    """Peak-memory provenance: max-RSS high-water marks, in KiB.

    ``ru_maxrss`` is a monotone per-process high-water mark (KiB on
    Linux), so a point's value bounds everything run *up to and
    including* that point — call this when the point finishes.  The
    parent's own mark covers the primary shard and every arena the
    recording pass sealed; the children's mark covers the pool workers,
    which under timeline replay attach zero-copy and should therefore
    stay flat as shard counts grow.
    """
    return {
        "max_rss_self_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "max_rss_children_kb": resource.getrusage(
            resource.RUSAGE_CHILDREN
        ).ru_maxrss,
    }


def _mega_point(
    base: SimulationConfig, num_clients: int, transactions: int
) -> Dict[str, Any]:
    """One mega-tier point: sharded analytic run plus identity checks.

    ``metrics_identical`` aggregates every basis in ``identity_basis``:
    the sharded run is compared against ``shards=1`` at every point, and
    against the event-driven cohort executor while that is affordable
    (populations up to ``_COHORT_CROSSCHECK_CAP``).  Above
    ``_SAMPLE_CAP`` clients the run drops per-transaction sample objects
    (``keep_samples=False``); the signature is array-backed either way,
    so the comparison loses nothing.
    """
    txns = min(_MEGA_TRANSACTIONS[num_clients], transactions)
    shards = _MEGA_SHARDS[num_clients]
    keep = num_clients < _SAMPLE_CAP
    config = base.replace(
        num_clients=num_clients,
        num_client_transactions=txns,
        client_executor="analytic",
        keep_samples=keep,
    )
    point: Dict[str, Any] = {
        "clients": num_clients,
        "transactions": txns,
        "keep_samples": keep,
        **_provenance(shards),
    }
    gc.collect()
    seconds, result = _timed(
        lambda: run_simulation(config.replace(shards=shards))
    )
    sharded = _metric_signature(result)
    point["analytic_sharded_seconds"] = round(seconds, 4)
    point["events"] = result.events
    point["clients_per_second"] = round(num_clients / seconds, 1)
    gc.collect()
    single_seconds, single = _timed(lambda: run_simulation(config))
    point["analytic_seconds"] = round(single_seconds, 4)
    basis = {"sharded-vs-unsharded": sharded == _metric_signature(single)}
    if num_clients <= _COHORT_CROSSCHECK_CAP:
        gc.collect()
        cohort_seconds, cohort = _timed(
            lambda: run_simulation(config.replace(client_executor="cohort"))
        )
        basis["cohort-vs-analytic"] = _metric_signature(cohort) == sharded
        point["cohort_seconds"] = round(cohort_seconds, 4)
        point["speedup"] = round(cohort_seconds / seconds, 2)
    point["identity_basis"] = basis
    point["metrics_identical"] = all(basis.values())
    point["signature"] = sharded
    point.update(_max_rss_kb())
    return point


# ----------------------------------------------------------------------
# section: timeline replay (recompute vs. zero-copy arena replay)
# ----------------------------------------------------------------------

#: the regime the timeline arena targets: an update-heavy server whose
#: authoritative timeline is expensive relative to each shard's reader
#: slice, so recomputing it per shard is the dominant sharding overhead
_TIMELINE_WORKLOAD = dict(
    protocol="f-matrix",
    num_objects=128,
    client_txn_length=6,
    mean_inter_operation_delay=4096.0,
    mean_inter_transaction_delay=16384.0,
    server_txn_length=4,
    server_txn_interval=20_000.0,
    client_executor="analytic",
)


def bench_timeline(
    *,
    shards: int = 4,
    clients: int = 2048,
    variant_clients: int = 1024,
    transactions: int = 2,
    seed: int = 42,
) -> Dict[str, Any]:
    """Recompute vs. replay at ``shards``, plus a cross-run cache hit.

    Four timed runs of the same seeded workload: the unsharded oracle,
    the sharded run with ``timeline_mode="recompute"`` (every shard
    re-derives the broadcast timeline from seeds), the sharded run with
    ``timeline_mode="replay"`` against a cold cache (one recording pass,
    observers attach to the shared-memory arena), and the same replay
    again warm (the sealed arena comes out of :data:`TIMELINE_CACHE`).
    A fifth run varies a *client-side* parameter only (the population
    size) and must hit the cache too — that is the cross-run reuse the
    cache exists for, verified against its own unsharded oracle.
    ``metrics_identical`` aggregates all four identity bases; every
    mode must reproduce the oracle bit for bit.
    """
    base = SimulationConfig(
        num_clients=clients,
        num_client_transactions=transactions,
        seed=seed,
        **_TIMELINE_WORKLOAD,
    )
    sharded = base.replace(shards=shards)
    replaying = sharded.replace(timeline_mode="replay")
    out: Dict[str, Any] = {
        "clients": clients,
        "transactions": transactions,
        **_provenance(shards),
    }
    gc.collect()
    oracle_seconds, oracle = _timed(lambda: run_simulation(base))
    oracle_sig = _metric_signature(oracle)
    gc.collect()
    recompute_seconds, recompute = _timed(lambda: run_simulation(sharded))
    TIMELINE_CACHE.clear()
    gc.collect()
    replay_seconds, replay = _timed(lambda: run_simulation(replaying))
    gc.collect()
    cached_seconds, cached = _timed(lambda: run_simulation(replaying))
    variant_config = replaying.replace(num_clients=variant_clients)
    gc.collect()
    variant_seconds, variant = _timed(lambda: run_simulation(variant_config))
    variant_oracle = run_simulation(base.replace(num_clients=variant_clients))
    basis = {
        "recompute-vs-unsharded": _metric_signature(recompute) == oracle_sig,
        "replay-vs-unsharded": _metric_signature(replay) == oracle_sig,
        "cached-replay-vs-unsharded": _metric_signature(cached) == oracle_sig,
        "cached-variant-vs-unsharded": (
            _metric_signature(variant) == _metric_signature(variant_oracle)
        ),
    }
    out["oracle_seconds"] = round(oracle_seconds, 4)
    out["recompute_seconds"] = round(recompute_seconds, 4)
    out["replay_seconds"] = round(replay_seconds, 4)
    out["cached_replay_seconds"] = round(cached_seconds, 4)
    out["replay_speedup"] = round(recompute_seconds / replay_seconds, 2)
    out["cached_replay_speedup"] = round(recompute_seconds / cached_seconds, 2)
    out["replay_stats"] = replay.timeline_stats
    out["cached_replay_stats"] = cached.timeline_stats
    # wall-clock phase breakdown (PhaseProfiler): where the seconds went
    out["recompute_profile"] = recompute.profile
    out["replay_profile"] = replay.profile
    out["cached_replay_profile"] = cached.profile
    out["variant"] = {
        "clients": variant_clients,
        "seconds": round(variant_seconds, 4),
        "stats": variant.timeline_stats,
    }
    out["identity_basis"] = basis
    out["metrics_identical"] = all(basis.values())
    out["signature"] = oracle_sig
    out["cache"] = TIMELINE_CACHE.stats.as_dict()
    out.update(_max_rss_kb())
    return out


def bench_scaling(
    *,
    clients: Sequence[int] = SCALING_CLIENT_COUNTS,
    transactions: int = 8,
    seed: int = 42,
    trials: int = 3,
    include_defaults: bool = True,
    mega: Sequence[int] = MEGA_CLIENT_COUNTS,
    timeline_shards: int = 4,
    timeline_clients: int = 2048,
    timeline_variant_clients: int = 1024,
) -> Dict[str, Any]:
    """Time the executors over a client sweep, with identity verdicts.

    The standard tier runs ``process`` vs. ``cohort`` on the *same*
    seeded workload at every point; their metric signatures must match
    exactly (the cohort path is a bit-identical reorganisation, not an
    approximation).  A cohort re-run at the second point provides the
    same-seed determinism verdict.  The mega tier (``mega`` populations,
    timed once each) runs the sharded analytical executor — see
    :func:`_mega_point` for its identity bases.
    """
    base = SimulationConfig(
        num_client_transactions=transactions, seed=seed, **_SCALING_DENSE
    )
    # warm both code paths (and the lazy scipy import inside summarize)
    # so the first timed point doesn't pay one-time costs
    for executor in ("process", "cohort"):
        run_simulation(
            base.replace(
                num_clients=8, num_client_transactions=2, client_executor=executor
            )
        )

    out: Dict[str, Any] = {
        "config": dict(_SCALING_DENSE),
        "transactions": transactions,
        "seed": seed,
        "trials": trials,
    }
    points: List[Dict[str, Any]] = []
    determinism_ok = True
    for position, num_clients in enumerate(clients):
        config = base.replace(num_clients=num_clients)
        point: Dict[str, Any] = {"clients": num_clients, **_provenance(1)}
        signatures: Dict[str, Dict[str, Any]] = {}
        for executor in ("process", "cohort"):
            seconds, result = _best_of(
                config.replace(client_executor=executor), trials
            )
            signatures[executor] = _metric_signature(result)
            point[f"{executor}_seconds"] = round(seconds, 4)
            point[f"{executor}_events"] = result.events
        point["speedup"] = round(
            point["process_seconds"] / point["cohort_seconds"], 2
        )
        point["metrics_identical"] = (
            signatures["process"] == signatures["cohort"]
        )
        point["signature"] = signatures["cohort"]
        if position == min(1, len(clients) - 1):
            # same-seed determinism: a fresh cohort run must reproduce
            # the first one bit for bit
            rerun = run_simulation(config.replace(client_executor="cohort"))
            determinism_ok = _metric_signature(rerun) == signatures["cohort"]
        point.update(_max_rss_kb())
        points.append(point)
    out["points"] = points
    out["same_seed_determinism_ok"] = determinism_ok
    if mega:
        out["mega_points"] = [
            _mega_point(base, num_clients, transactions)
            for num_clients in mega
        ]
    if timeline_shards >= 2:
        # few reader transactions on purpose: the section probes the
        # regime where the per-shard timeline recomputation dominates
        out["timeline"] = bench_timeline(
            shards=timeline_shards,
            clients=timeline_clients,
            variant_clients=timeline_variant_clients,
            seed=seed,
        )
    if include_defaults:
        # the honest counterpoint: Table 1's sparse default layout, where
        # few clients share a slot and coalescing buys much less
        defaults = SimulationConfig(
            protocol="f-matrix",
            num_clients=512,
            num_client_transactions=transactions,
            seed=seed,
        )
        point = {"clients": 512}
        for executor in ("process", "cohort"):
            seconds, result = _best_of(
                defaults.replace(client_executor=executor), trials
            )
            point[f"{executor}_seconds"] = round(seconds, 4)
            point[f"{executor}_events"] = result.events
        point["speedup"] = round(
            point["process_seconds"] / point["cohort_seconds"], 2
        )
        point.update(_max_rss_kb())
        out["table1_defaults"] = point
    return out


# ----------------------------------------------------------------------
# assembly, comparison, CLI
# ----------------------------------------------------------------------

def run_bench(
    *,
    label: str,
    smoke: bool = False,
    transactions: int = 500,
    sweep_transactions: int = 300,
    workers: int = 0,
    seed: int = 42,
    sections: Sequence[str] = ("simulations", "micro", "sweeps"),
) -> Dict[str, Any]:
    """Execute the selected sections and return one run document."""
    if smoke:
        transactions = min(transactions, 30)
        sweep_transactions = min(sweep_transactions, 10)
    run: Dict[str, Any] = {
        "label": label,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "params": {
            "transactions": transactions,
            "sweep_transactions": sweep_transactions,
            "workers": workers,
            "seed": seed,
        },
    }
    if "simulations" in sections:
        run["simulations"] = bench_simulations(
            transactions=transactions, seed=seed
        )
    if "micro" in sections:
        if smoke:
            run["micro"] = bench_micro(
                num_objects=60,
                commits=300,
                cycles=200,
                validate_txns=10,
                validate_txn_length=16,
            )
        else:
            run["micro"] = bench_micro()
    if "sweeps" in sections:
        names = ("fig2",) if smoke else SWEEP_NAMES
        run["sweeps"] = bench_sweeps(
            names=names,
            transactions=sweep_transactions,
            seed=seed,
            workers=workers,
        )
    if "scaling" in sections:
        if smoke:
            # one sharded mega point (16384 clients, 2 shards) rides the
            # smoke run so CI gets a metric-identity verdict per commit,
            # and a small timeline point (2 shards) gets CI a
            # recompute-vs-replay identity + cache-hit verdict too
            run["scaling"] = bench_scaling(
                clients=(8, 64),
                transactions=2,
                seed=seed,
                trials=1,
                include_defaults=False,
                mega=(16_384,),
                timeline_shards=2,
                timeline_clients=256,
                timeline_variant_clients=128,
            )
        else:
            run["scaling"] = bench_scaling(seed=seed)
    return run


def _index_by_name(rows: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    return {str(row["name"]): row for row in rows}


def compare_runs(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-workload speedups of ``current`` over ``baseline`` plus a
    same-seed determinism verdict (metrics must be bit-identical)."""
    comparison: Dict[str, Any] = {
        "baseline": baseline["label"],
        "current": current["label"],
    }
    determinism_ok = True
    for section in ("simulations", "micro"):
        if section not in baseline or section not in current:
            continue
        speedups: Dict[str, float] = {}
        base_rows = _index_by_name(baseline[section])
        for name, row in _index_by_name(current[section]).items():
            base = base_rows.get(name)
            if base is None or not row["seconds"]:
                continue
            speedups[name] = round(base["seconds"] / row["seconds"], 2)
            if section == "simulations":
                determinism_ok = determinism_ok and all(
                    base[key] == row[key]
                    for key in ("response_mean", "restart_mean", "events")
                )
            elif "checksum" in base and "checksum" in row:
                determinism_ok = determinism_ok and (
                    base["checksum"] == row["checksum"]
                )
        comparison[f"{section}_speedup"] = speedups
    if "sweeps" in baseline and "sweeps" in current:
        base_seq = baseline["sweeps"].get("sequential_seconds")
        cur = current["sweeps"]
        if base_seq:
            comparison["sweeps_sequential_speedup"] = round(
                base_seq / cur["sequential_seconds"], 2
            )
            if cur.get("parallel_seconds"):
                comparison["sweeps_parallel_speedup"] = round(
                    base_seq / cur["parallel_seconds"], 2
                )
    comparison["determinism_ok"] = determinism_ok
    return comparison


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the canonical workloads; write BENCH JSON.",
    )
    parser.add_argument(
        "--label",
        default="run",
        help="name of this run inside the JSON document",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: CI crash-detection, not measurement",
    )
    parser.add_argument("--transactions", type=int, default=500)
    parser.add_argument(
        "--sweep-transactions",
        type=int,
        default=300,
        help="client transactions per sweep grid point",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="parallel sweep workers (0/1 skips the parallel timing)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--sections",
        default="simulations,micro,sweeps",
        help=f"comma-separated subset of: {','.join(SECTIONS)}",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append to --output's runs instead of overwriting",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_fastpath.json"),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench``."""
    args = build_parser().parse_args(argv)
    sections = tuple(s for s in args.sections.split(",") if s)
    unknown = [s for s in sections if s not in SECTIONS]
    if unknown:
        build_parser().error(f"unknown section(s) {unknown}")
    run = run_bench(
        label=args.label,
        smoke=args.smoke,
        transactions=args.transactions,
        sweep_transactions=args.sweep_transactions,
        workers=args.workers,
        seed=args.seed,
        sections=sections,
    )
    runs: List[Dict[str, Any]] = []
    if args.append and args.output.exists():
        runs = json.loads(args.output.read_text()).get("runs", [])
    runs.append(run)
    document: Dict[str, Any] = {
        "schema": 1,
        "benchmark": "scaling" if sections == ("scaling",) else "fastpath",
        "runs": runs,
    }
    if len(runs) >= 2:
        document["comparison"] = compare_runs(runs[0], runs[-1])
    args.output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output} ({len(runs)} run(s))")
    for record in run.get("simulations", []):
        print(
            f"  sim {record['name']:<16} {record['seconds']:>8.3f}s "
            f"({record['events_per_second']:,.0f} events/s)"
        )
    for record in run.get("micro", []):
        print(
            f"  micro {record['name']:<24} {record['per_op_us']:>8.2f} us/op"
        )
    sweeps = run.get("sweeps")
    if sweeps:
        line = f"  sweeps sequential {sweeps['sequential_seconds']:.1f}s"
        if "parallel_seconds" in sweeps:
            line += (
                f"  parallel({sweeps['workers']}) "
                f"{sweeps['parallel_seconds']:.1f}s "
                f"(speedup {sweeps['parallel_speedup']:.2f}x)"
            )
        print(line)
    scaling = run.get("scaling")
    if scaling:
        for point in scaling["points"]:
            print(
                f"  scaling {point['clients']:>5} clients  "
                f"process {point['process_seconds']:>7.3f}s "
                f"({point['process_events']:>8,} ev)  "
                f"cohort {point['cohort_seconds']:>7.3f}s "
                f"({point['cohort_events']:>8,} ev)  "
                f"speedup {point['speedup']:.2f}x  "
                f"identical={point['metrics_identical']}"
            )
        for point in scaling.get("mega_points", []):
            line = (
                f"  scaling {point['clients']:>9,} clients  "
                f"analytic×{point['shards']} "
                f"{point['analytic_sharded_seconds']:>8.3f}s "
                f"({point['clients_per_second']:>9,.0f} clients/s)  "
            )
            if "cohort_seconds" in point:
                line += f"cohort {point['cohort_seconds']:>8.3f}s  "
            line += f"identical={point['metrics_identical']}"
            print(line)
        timeline = scaling.get("timeline")
        if timeline:
            print(
                f"  timeline {timeline['clients']:>5} clients x"
                f"{timeline['shards']} shards  "
                f"recompute {timeline['recompute_seconds']:>7.3f}s  "
                f"replay {timeline['replay_seconds']:>7.3f}s "
                f"({timeline['replay_speedup']:.2f}x)  "
                f"cached {timeline['cached_replay_seconds']:>7.3f}s "
                f"({timeline['cached_replay_speedup']:.2f}x)  "
                f"identical={timeline['metrics_identical']}  "
                f"cache hits={timeline['cache']['hits']} "
                f"misses={timeline['cache']['misses']} "
                f"stores={timeline['cache']['stores']}"
            )
            profile = timeline.get("replay_profile")
            if profile:
                phases = "  ".join(
                    f"{name}={seconds:.3f}s" for name, seconds in profile.items()
                )
                print(f"  timeline replay phases: {phases}")
        if "table1_defaults" in scaling:
            point = scaling["table1_defaults"]
            print(
                f"  scaling table1-defaults ({point['clients']} clients)  "
                f"speedup {point['speedup']:.2f}x"
            )
        print(
            "  scaling same-seed determinism: "
            + ("OK" if scaling["same_seed_determinism_ok"] else "FAILED")
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
