"""Fault-injection resilience experiment (docs/FAULTS.md).

Runs a deliberately hostile configuration — a small 4-bit wrap window
under modulo timestamps, every client dozing through *more* than a full
window, a mid-run server crash recovered from the durable commit log,
and a lossy uplink — and audits every registered protocol invariant
over the recorded trace.  The run passes when each protocol completes
with a clean audit, a certified update-consistent history
(:func:`repro.analysis.consistency.certify_update_consistency` — the
paper's Sec. 4 guarantee, which doze, crash, and loss must not erode),
and the staleness guard's aborts show up attributed in the metrics
(``aborts_staleness``), i.e. wraparound ambiguity is survived by
aborting, never by committing across a wrap gap.

The schedule is deterministic (no sampling), so two runs with the same
seed and transaction count are bit-identical.  Audit runs record every
broadcast cycle; keep ``transactions`` moderate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sim.config import SimulationConfig
from ..sim.faults import DozeInterval, FaultPlan, ServerCrash
from ..sim.simulation import run_simulation

__all__ = [
    "FAULT_PROTOCOLS",
    "FaultRunSummary",
    "faults_config",
    "run_faults_report",
    "format_faults_report",
]

#: protocols exercised by the resilience report (one column each)
FAULT_PROTOCOLS: Tuple[str, ...] = ("f-matrix", "r-matrix", "datacycle")


@dataclass(frozen=True)
class FaultRunSummary:
    """What one faulty run did, and whether the auditor liked it."""

    protocol: str
    commits: int
    cycles: int
    abort_causes: Dict[str, int]
    doze_slots_missed: int
    crash_slot_stalls: int
    server_crashes: int
    quiescent_replay_cycles: int
    server_txns_lost: int
    uplink_losses: int
    uplink_retries: int
    audit_ok: bool
    audit_violations: int
    consistency_ok: bool
    consistency_failures: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "commits": self.commits,
            "cycles": self.cycles,
            "abort_causes": dict(self.abort_causes),
            "doze_slots_missed": self.doze_slots_missed,
            "crash_slot_stalls": self.crash_slot_stalls,
            "server_crashes": self.server_crashes,
            "quiescent_replay_cycles": self.quiescent_replay_cycles,
            "server_txns_lost": self.server_txns_lost,
            "uplink_losses": self.uplink_losses,
            "uplink_retries": self.uplink_retries,
            "audit_ok": self.audit_ok,
            "audit_violations": self.audit_violations,
            "consistency_ok": self.consistency_ok,
            "consistency_failures": self.consistency_failures,
        }


def faults_config(
    protocol: str = "f-matrix", *, transactions: int = 30, seed: int = 42
) -> SimulationConfig:
    """The headline faulty configuration for one protocol.

    4-bit modulo timestamps (window 16) make wraparound routine; each of
    the three clients dozes through ``window + 1`` consecutive cycles
    (staggered so the wake-ups interleave with normal traffic); the
    server crashes three-quarters of the way into cycle 75 and stays
    dark for 2.5 cycles; 15 % of uplink submissions are lost in flight;
    5 % of awaited broadcast slots are missed to radio loss.
    """
    base = SimulationConfig(
        protocol=protocol,
        num_objects=40,
        object_size_bits=1024,
        timestamp_bits=4,
        modulo_timestamps=True,
        num_clients=3,
        num_client_transactions=transactions,
        seed=seed,
        broadcast_loss_probability=0.05,
        client_update_fraction=0.2,
        audit=True,
    )
    cycle_bits = base.cycle_bits
    window = 2 ** base.timestamp_bits
    plan = FaultPlan(
        doze=tuple(
            DozeInterval(
                client,
                (20 + 7 * client) * cycle_bits,
                (window + 1) * cycle_bits,
            )
            for client in range(base.num_clients)
        ),
        crashes=(ServerCrash(75.5 * cycle_bits, 2.5 * cycle_bits),),
        uplink_loss_probability=0.15,
    )
    return base.replace(faults=plan)


def run_faults_report(
    *, transactions: int = 30, seed: int = 42
) -> Tuple[FaultRunSummary, ...]:
    """Run the faulty scenario for every protocol in ``FAULT_PROTOCOLS``."""
    from ..analysis.consistency import certify_update_consistency

    summaries = []
    for protocol in FAULT_PROTOCOLS:
        result = run_simulation(
            faults_config(protocol, transactions=transactions, seed=seed)
        )
        metrics = result.metrics
        report = result.audit_report
        assert report is not None  # audit=True in faults_config
        assert result.trace is not None
        consistency = certify_update_consistency(
            result.trace.transactional_history(result.server.database)
        )
        summaries.append(
            FaultRunSummary(
                protocol=protocol,
                commits=metrics.commit_count,
                cycles=result.server.current_cycle,
                abort_causes=metrics.abort_causes,
                doze_slots_missed=metrics.doze_slots_missed,
                crash_slot_stalls=metrics.crash_slot_stalls,
                server_crashes=metrics.server_crashes,
                quiescent_replay_cycles=metrics.quiescent_replay_cycles,
                server_txns_lost=metrics.server_txns_lost,
                uplink_losses=metrics.uplink_losses + metrics.uplink_crash_losses,
                uplink_retries=metrics.uplink_retries,
                audit_ok=report.ok,
                audit_violations=len(report.diagnostics),
                consistency_ok=consistency.ok,
                consistency_failures=len(consistency.failures()),
            )
        )
    return tuple(summaries)


def format_faults_report(summaries: Tuple[FaultRunSummary, ...]) -> str:
    """A fixed-width table, one protocol per row."""
    header = (
        f"{'protocol':<12} {'commits':>7} {'cycles':>6} "
        f"{'conflict':>8} {'stale':>5} {'crash':>5} {'uplink':>6} "
        f"{'doze':>4} {'stall':>5} {'replay':>6} {'lost':>4} {'audit':>5} "
        f"{'consist':>7}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        causes = s.abort_causes
        lines.append(
            f"{s.protocol:<12} {s.commits:>7} {s.cycles:>6} "
            f"{causes.get('conflict', 0):>8} {causes.get('staleness', 0):>5} "
            f"{causes.get('crash', 0):>5} {causes.get('uplink', 0):>6} "
            f"{s.doze_slots_missed:>4} {s.crash_slot_stalls:>5} "
            f"{s.quiescent_replay_cycles:>6} {s.server_txns_lost:>4} "
            f"{'ok' if s.audit_ok else 'FAIL':>5} "
            f"{'ok' if s.consistency_ok else 'FAIL':>7}"
        )
    return "\n".join(lines)
