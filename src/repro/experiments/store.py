"""Persist experiment results as JSON; compare runs for regressions.

A results archive turns the harness into a living benchmark: save a run
per commit/machine, then diff shapes across runs.

* :func:`save_result` / :func:`load_result` — lossless JSON round-trip of
  an :class:`repro.experiments.sweeps.ExperimentResult` (means, CIs,
  sample counts, sim metadata);
* :func:`compare_results` — align two runs point-by-point and report
  relative response-time drift, flagging points beyond a tolerance;
  pooled CI half-widths are honoured (overlapping intervals are never
  flagged).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..sim.metrics import SummaryStat
from .sweeps import ExperimentResult, Point, Series

__all__ = ["save_result", "load_result", "Drift", "compare_results"]

_FORMAT_VERSION = 1


def _stat_to_dict(stat: SummaryStat) -> Dict[str, float]:
    return {
        "mean": stat.mean,
        "stddev": stat.stddev,
        "count": stat.count,
        "ci_halfwidth": stat.ci_halfwidth,
    }


def _stat_from_dict(data: Dict[str, float]) -> SummaryStat:
    return SummaryStat(
        float(data["mean"]),
        float(data["stddev"]),
        int(data["count"]),
        float(data["ci_halfwidth"]),
    )


def save_result(result: ExperimentResult, path: Union[str, pathlib.Path]) -> None:
    """Serialise a result (atomically: write then rename)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": result.name,
        "xlabel": result.xlabel,
        "series": {
            protocol: [
                {
                    "x": point.x,
                    "response_time": _stat_to_dict(point.response_time),
                    "restart_ratio": _stat_to_dict(point.restart_ratio),
                    "sim_time": point.sim_time,
                    "events": point.events,
                }
                for point in series.points
            ]
            for protocol, series in result.series.items()
        },
    }
    target = pathlib.Path(path)
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    tmp.replace(target)


def load_result(path: Union[str, pathlib.Path]) -> ExperimentResult:
    """Load a result saved by :func:`save_result`."""
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported results format version {version!r}")
    result = ExperimentResult(payload["name"], payload["xlabel"])
    for protocol, points in payload["series"].items():
        series = Series(protocol)
        for entry in points:
            series.points.append(
                Point(
                    x=float(entry["x"]),
                    response_time=_stat_from_dict(entry["response_time"]),
                    restart_ratio=_stat_from_dict(entry["restart_ratio"]),
                    sim_time=float(entry["sim_time"]),
                    events=int(entry["events"]),
                )
            )
        result.series[protocol] = series
    return result


@dataclass(frozen=True)
class Drift:
    """One aligned point's change between two runs."""

    protocol: str
    x: float
    baseline_mean: float
    current_mean: float
    relative_change: float
    #: True when the two 95% intervals do not overlap AND the relative
    #: change exceeds the tolerance
    significant: bool


def compare_results(
    baseline: ExperimentResult,
    current: ExperimentResult,
    *,
    tolerance: float = 0.10,
) -> List[Drift]:
    """Point-by-point response-time drift, worst first.

    Points present in only one run are ignored (sweeps may differ); a
    drift is *significant* only if the confidence intervals are disjoint
    and the relative change exceeds ``tolerance``.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    drifts: List[Drift] = []
    for protocol, base_series in baseline.series.items():
        cur_series = current.series.get(protocol)
        if cur_series is None:
            continue
        cur_points = {p.x: p for p in cur_series.points}
        for base_point in base_series.points:
            cur_point = cur_points.get(base_point.x)
            if cur_point is None:
                continue
            b, c = base_point.response_time, cur_point.response_time
            if b.mean == 0:
                relative = 0.0 if c.mean == 0 else float("inf")
            else:
                relative = (c.mean - b.mean) / b.mean
            intervals_disjoint = (
                b.ci[1] < c.ci[0] or c.ci[1] < b.ci[0]
            )
            drifts.append(
                Drift(
                    protocol=protocol,
                    x=base_point.x,
                    baseline_mean=b.mean,
                    current_mean=c.mean,
                    relative_change=relative,
                    significant=intervals_disjoint and abs(relative) > tolerance,
                )
            )
    drifts.sort(key=lambda d: abs(d.relative_change), reverse=True)
    return drifts
