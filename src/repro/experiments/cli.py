"""Command-line runners: the experiments and the invariant auditor.

Installed as ``repro-experiments``.  Examples::

    repro-experiments list
    repro-experiments table1
    repro-experiments fig2 --transactions 200 --seed 7
    repro-experiments all --transactions 200 --csv results/
    repro-experiments all --workers 4   # parallel grid, identical results
    repro-experiments fig2 --executor analytic --shards 4   # sharded run
    repro-experiments scenario list     # the declarative scenario library
    repro-experiments scenario run --all          # envelope-checked runs
    repro-experiments scenario record commuter-doze --out doze.trace.json
    repro-experiments scenario replay doze.trace.json --executor cohort

``--transactions`` trades statistical tightness for wall-clock time; the
paper's setting is 1000 (and takes minutes per figure in pure Python).

Also installed as ``repro-audit`` (:func:`audit_main`): runs one seeded
simulation with per-cycle trace recording and checks every registered
protocol invariant (:mod:`repro.analysis`) against the run, plus — with
``--consistency`` — the transactional-consistency certifier
(:mod:`repro.analysis.consistency`) on the reconstructed history.
Examples::

    repro-audit --protocol f-matrix --transactions 50 --objects 40
    repro-audit --protocol datacycle --consistency update --format json

Exit codes are stable and documented: **0** when every requested check
passed, **1** when any invariant or consistency check found a violation,
**2** on usage errors (unknown flags, bad invariant ids, unknown levels).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from .figures import EXPERIMENTS, table1_overheads
from .report import format_csv, format_overheads, format_table

__all__ = ["main", "build_parser", "audit_main", "build_audit_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Re-run the SIGMOD'99 broadcast-CC evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["table1", "faults", "all", "list"],
        help="experiment id (see DESIGN.md's per-experiment index); "
        "'faults' runs the fault-injection resilience report "
        "(docs/FAULTS.md) and exits non-zero on any audit violation",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=None,
        help="committed client transactions per data point (default: the "
        "paper's 1000; the faults report defaults to 30 because audit "
        "runs record every broadcast cycle)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan grid points over N processes (results are bit-identical "
        "to a sequential run; speedup is bounded by the core count)",
    )
    parser.add_argument(
        "--executor",
        choices=["process", "cohort", "analytic"],
        default="process",
        help="client execution layer: 'cohort' coalesces same-slot clients "
        "into one event, 'analytic' fast-forwards fault-free read-only "
        "clients in closed form (both bit-identical to 'process', faster "
        "at large client populations; see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the read-only client population over N worker "
        "processes (requires --executor cohort or analytic; results are "
        "bit-identical to --shards 1, see docs/PERFORMANCE.md §5)",
    )
    parser.add_argument(
        "--csv",
        type=pathlib.Path,
        default=None,
        help="directory to write per-experiment CSV files into",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also draw the curves as an ASCII chart (log-scale y)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="write a JSON summary (faults experiment only)",
    )
    return parser


def _run_one(
    name: str,
    transactions: int,
    seed: int,
    csv_dir,
    chart: bool = False,
    workers: int = 1,
    executor: str = "process",
    shards: int = 1,
) -> None:
    runner = EXPERIMENTS[name]
    start = time.time()
    result = runner(
        transactions, seed=seed, workers=workers, executor=executor, shards=shards
    )
    elapsed = time.time() - start
    print(format_table(result))
    if chart:
        from .plotting import render_chart

        print(render_chart(result, log_y=True))
    cache = getattr(result, "timeline_cache", None) or {}
    if cache.get("hits") or cache.get("misses"):
        print(
            f"[{name}] timeline cache: {cache['hits']} hits, "
            f"{cache['misses']} misses, {cache['stores']} stores"
        )
    print(f"[{name}] {elapsed:.1f}s wall clock\n")
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        path = csv_dir / f"{name}.csv"
        path.write_text(format_csv(result))
        print(f"wrote {path}")


def build_audit_parser() -> argparse.ArgumentParser:
    from ..core.validators import PROTOCOL_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description=(
            "Run one seeded simulation with trace recording and check every "
            "registered protocol invariant against the run."
        ),
    )
    parser.add_argument(
        "--protocol",
        choices=sorted(PROTOCOL_NAMES),
        default="f-matrix",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=100,
        help="committed client transactions to audit (default 100; audit "
        "runs record every broadcast cycle, so keep this moderate)",
    )
    parser.add_argument(
        "--objects",
        type=int,
        default=50,
        help="database size (default 50: a full 300-object matrix snapshot "
        "per cycle is memory-heavy)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--modulo-timestamps",
        action="store_true",
        help="broadcast timestamps modulo 2**timestamp_bits (wire format)",
    )
    parser.add_argument(
        "--invariant",
        action="append",
        default=None,
        metavar="ID",
        dest="invariants",
        help="check only this invariant (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-invariants",
        action="store_true",
        help="print the registered invariant ids and exit",
    )
    from ..analysis.consistency import LEVELS

    parser.add_argument(
        "--consistency",
        action="append",
        default=None,
        metavar="LEVEL",
        choices=sorted(LEVELS) + ["all", "update"],
        dest="consistency",
        help="also certify the reconstructed history at this isolation "
        "level (repeatable); 'update' checks the paper's update-consistency "
        "guarantee (update sub-history + each reader's perceived sub-history "
        "serializable), 'all' runs every level checker",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format; json emits one object covering invariant and "
        "consistency results (witnesses included)",
    )
    return parser


def audit_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-audit``.  Exit codes: 0 clean, 1 violation,
    2 usage error (argparse)."""
    import json

    from ..analysis import audit_simulation, invariant_ids
    from ..analysis.consistency import (
        LEVELS,
        certify,
        certify_update_consistency,
    )
    from ..sim import SimulationConfig, run_simulation

    args = build_audit_parser().parse_args(argv)
    if args.list_invariants:
        for invariant_id in invariant_ids():
            print(invariant_id)
        return 0

    # Reject bad invariant ids before paying for the simulation run.
    if args.invariants is not None:
        unknown = [i for i in args.invariants if i not in invariant_ids()]
        if unknown:
            build_audit_parser().error(
                f"unknown invariant id(s) {unknown}; "
                f"see --list-invariants"
            )

    # Expand the requested consistency checks, preserving request order.
    levels: List[str] = []
    check_update = False
    for entry in args.consistency or []:
        if entry == "update":
            check_update = True
        elif entry == "all":
            levels.extend(lv for lv in LEVELS if lv not in levels)
        elif entry not in levels:
            levels.append(entry)

    text = args.format == "text"
    config = SimulationConfig(
        protocol=args.protocol,
        num_objects=args.objects,
        num_client_transactions=args.transactions,
        seed=args.seed,
        modulo_timestamps=args.modulo_timestamps,
        audit=True,
    )
    if text:
        print(
            f"auditing protocol={config.protocol} objects={config.num_objects} "
            f"transactions={config.num_client_transactions} seed={config.seed}"
        )
    result = run_simulation(config)
    if args.invariants is None and result.audit_report is not None:
        report = result.audit_report  # run_simulation already audited
    else:
        report = audit_simulation(result, invariants=args.invariants)
    trace = result.trace
    assert trace is not None and report is not None

    consistency_report = None
    update_report = None
    if levels or check_update:
        history = trace.transactional_history(result.server.database)
        if levels:
            consistency_report = certify(history, levels)
        if check_update:
            update_report = certify_update_consistency(history)

    ok = (
        report.ok
        and (consistency_report is None or consistency_report.ok)
        and (update_report is None or update_report.ok)
    )
    if text:
        print(
            f"run complete: {len(trace.cycles)} broadcast cycles, "
            f"{result.metrics.server_commits} server commits, "
            f"{len(trace.client_commits)} client commits"
        )
        print(report.format())
        if consistency_report is not None:
            print("consistency levels:")
            print("  " + consistency_report.format().replace("\n", "\n  "))
        if update_report is not None:
            print("update consistency:")
            print("  " + update_report.format().replace("\n", "\n  "))
    else:
        payload: dict = {
            "ok": ok,
            "config": {
                "protocol": config.protocol,
                "objects": config.num_objects,
                "transactions": config.num_client_transactions,
                "seed": config.seed,
                "modulo_timestamps": config.modulo_timestamps,
            },
            "invariants": report.to_dict(),
        }
        if consistency_report is not None:
            payload["consistency"] = consistency_report.to_dict()
        if update_report is not None:
            payload["update_consistency"] = update_report.to_dict()
        print(json.dumps(payload, indent=2))
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "scenario":
        from ..scenarios.cli import scenario_main

        return scenario_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.shards > 1 and args.executor == "process":
        build_parser().error(
            "--shards requires --executor cohort or analytic (the per-"
            "process executor cannot partition the client population)"
        )

    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("  table1")
        print("  faults")
        print("also: 'scenario list|run|record|replay' — the declarative")
        print("scenario library with envelopes and trace record/replay")
        print("(docs/SCENARIOS.md)")
        return 0

    if args.experiment == "table1":
        print(format_overheads(table1_overheads()))
        return 0

    if args.experiment == "faults":
        import json

        from .faults import format_faults_report, run_faults_report

        transactions = 30 if args.transactions is None else args.transactions
        start = time.time()
        summaries = run_faults_report(transactions=transactions, seed=args.seed)
        elapsed = time.time() - start
        print(format_faults_report(summaries))
        print(f"[faults] {elapsed:.1f}s wall clock")
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(
                json.dumps([s.to_dict() for s in summaries], indent=2) + "\n"
            )
            print(f"wrote {args.output}")
        return 0 if all(s.audit_ok and s.consistency_ok for s in summaries) else 1

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.experiment == "all":
        print(format_overheads(table1_overheads()))
    transactions = 1000 if args.transactions is None else args.transactions
    for name in names:
        _run_one(
            name,
            transactions,
            args.seed,
            args.csv,
            chart=args.chart,
            workers=args.workers,
            executor=args.executor,
            shards=args.shards,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
