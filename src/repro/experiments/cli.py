"""Command-line runner for the paper's experiments.

Installed as ``repro-experiments``.  Examples::

    repro-experiments list
    repro-experiments table1
    repro-experiments fig2 --transactions 200 --seed 7
    repro-experiments all --transactions 200 --csv results/

``--transactions`` trades statistical tightness for wall-clock time; the
paper's setting is 1000 (and takes minutes per figure in pure Python).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from .figures import EXPERIMENTS, table1_overheads
from .report import format_csv, format_overheads, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Re-run the SIGMOD'99 broadcast-CC evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["table1", "all", "list"],
        help="experiment id (see DESIGN.md's per-experiment index)",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=1000,
        help="committed client transactions per data point (paper: 1000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--csv",
        type=pathlib.Path,
        default=None,
        help="directory to write per-experiment CSV files into",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also draw the curves as an ASCII chart (log-scale y)",
    )
    return parser


def _run_one(name: str, transactions: int, seed: int, csv_dir, chart: bool = False) -> None:
    runner = EXPERIMENTS[name]
    start = time.time()
    result = runner(transactions, seed=seed)
    elapsed = time.time() - start
    print(format_table(result))
    if chart:
        from .plotting import render_chart

        print(render_chart(result, log_y=True))
    print(f"[{name}] {elapsed:.1f}s wall clock\n")
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)
        path = csv_dir / f"{name}.csv"
        path.write_text(format_csv(result))
        print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("  table1")
        return 0

    if args.experiment == "table1":
        print(format_overheads(table1_overheads()))
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.experiment == "all":
        print(format_overheads(table1_overheads()))
    for name in names:
        _run_one(name, args.transactions, args.seed, args.csv, chart=args.chart)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
