"""``repro-explain``: diagnose a history string from the command line.

Example::

    repro-explain "r1[IBM] w2[IBM] c2 r3[IBM] r3[Sun] w4[Sun] c4 r1[Sun] c1 c3"

prints the Figure 1 lattice narrative (serializability, APPROX, exact
legality) with serialization-order certificates and cycle culprits.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.explain import explain_history
from ..core.model import HistoryError, parse_history

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description="Explain a transaction history against the paper's "
        "correctness criteria.",
    )
    parser.add_argument(
        "history",
        help='history in the paper notation, e.g. "r1[x] w2[x] c2 c1"',
    )
    parser.add_argument(
        "--no-exact",
        action="store_true",
        help="skip the exact (NP-complete) legality check",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        history = parse_history(args.history)
    except HistoryError as error:
        print(f"cannot parse history: {error}", file=sys.stderr)
        return 2
    print(explain_history(history, exact=not args.no_exact), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
