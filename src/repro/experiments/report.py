"""Plain-text and CSV rendering of experiment results.

The paper plots curves; a terminal harness prints the same information as
aligned tables — one row per x value, one column pair (response time,
restarts) per protocol — which is what the benchmark suite emits and what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence

from .sweeps import ExperimentResult, Series

__all__ = ["format_table", "format_csv", "format_overheads"]


def _fmt_resp(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value / 1e6:10.3f}"


def _fmt_restarts(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value:8.2f}"


def _collect_xs(result: ExperimentResult) -> List[float]:
    xs: List[float] = []
    for series in result.series.values():
        for x in series.xs:
            if x not in xs:
                xs.append(x)
    return sorted(xs)


def _lookup(series: Series, x: float, attr: str) -> Optional[float]:
    for point in series.points:
        if point.x == x:
            return getattr(point, attr).mean
    return None


def format_table(result: ExperimentResult, *, restarts: bool = True) -> str:
    """Aligned text table: response time (×10⁶ bit-units) per protocol."""
    protocols = list(result.series)
    xs = _collect_xs(result)
    out = io.StringIO()
    out.write(f"== {result.name}: response time (x1e6 bit-units) ==\n")
    header = f"{result.xlabel:>38s} | " + " | ".join(f"{p:>10s}" for p in protocols)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for x in xs:
        cells = [
            _fmt_resp(_lookup(result.series[p], x, "response_time"))
            for p in protocols
        ]
        out.write(f"{x:>38g} | " + " | ".join(cells) + "\n")
    if restarts:
        out.write(f"\n== {result.name}: restart ratio ==\n")
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for x in xs:
            cells = [
                _fmt_restarts(_lookup(result.series[p], x, "restart_ratio"))
                for p in protocols
            ]
            out.write(f"{x:>38g} | " + " | ".join(cells) + "\n")
    return out.getvalue()


def format_csv(result: ExperimentResult) -> str:
    """CSV with one row per (protocol, x) point, CI columns included."""
    out = io.StringIO()
    out.write(
        "experiment,protocol,x,response_mean,response_ci_halfwidth,"
        "restart_mean,restart_ci_halfwidth,samples\n"
    )
    for protocol, series in result.series.items():
        for point in series.points:
            out.write(
                f"{result.name},{protocol},{point.x:g},"
                f"{point.response_time.mean:.1f},{point.response_time.ci_halfwidth:.1f},"
                f"{point.restart_ratio.mean:.4f},{point.restart_ratio.ci_halfwidth:.4f},"
                f"{point.response_time.count}\n"
            )
    return out.getvalue()


def format_overheads(overheads: dict) -> str:
    """Render the Table 1 / Sec. 4.1 overhead fractions."""
    out = io.StringIO()
    out.write("== control-information overhead fraction of cycle ==\n")
    for protocol, fraction in overheads.items():
        out.write(f"{protocol:>12s}: {fraction * 100:6.2f}%\n")
    return out.getvalue()
