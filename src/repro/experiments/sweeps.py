"""Parameter-sweep machinery for the evaluation experiments.

An experiment varies one :class:`repro.sim.SimulationConfig` field across
a list of values for several protocols, runs one simulation per (value,
protocol) point, and gathers the series the paper plots: mean response
time (bit-units) and restart ratio, with 95% confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.config import SimulationConfig
from ..sim.metrics import SummaryStat
from ..sim.simulation import SimulationResult, run_simulation

__all__ = ["Point", "Series", "ExperimentResult", "run_sweep"]


@dataclass(frozen=True)
class Point:
    """One (x, protocol) measurement."""

    x: float
    response_time: SummaryStat
    restart_ratio: SummaryStat
    sim_time: float
    events: int


@dataclass
class Series:
    """One protocol's curve across the sweep."""

    protocol: str
    points: List[Point] = field(default_factory=list)

    @property
    def xs(self) -> Tuple[float, ...]:
        return tuple(p.x for p in self.points)

    @property
    def response_means(self) -> Tuple[float, ...]:
        return tuple(p.response_time.mean for p in self.points)

    @property
    def restart_means(self) -> Tuple[float, ...]:
        return tuple(p.restart_ratio.mean for p in self.points)

    def response_at(self, x: float) -> float:
        for p in self.points:
            if p.x == x:
                return p.response_time.mean
        raise KeyError(f"no point at x={x}")

    def restart_at(self, x: float) -> float:
        for p in self.points:
            if p.x == x:
                return p.restart_ratio.mean
        raise KeyError(f"no point at x={x}")


@dataclass
class ExperimentResult:
    """All series of one experiment, ready for reporting."""

    name: str
    xlabel: str
    series: Dict[str, Series] = field(default_factory=dict)

    def protocols(self) -> Tuple[str, ...]:
        return tuple(self.series)

    def ordering_holds(
        self, x: float, better: str, worse: str, *, margin: float = 1.0
    ) -> bool:
        """Does ``better`` beat ``worse`` on response time at ``x``?

        ``margin`` < 1 tolerates near-ties (e.g. 0.95 allows 5% slack).
        """
        return (
            self.series[better].response_at(x)
            <= self.series[worse].response_at(x) * margin
        )


def run_sweep(
    name: str,
    xlabel: str,
    base_config: SimulationConfig,
    param: str,
    values: Sequence,
    protocols: Sequence[str],
    *,
    config_hook: Optional[Callable[[SimulationConfig, object], SimulationConfig]] = None,
    skip: Optional[Callable[[str, object], bool]] = None,
    progress: Optional[Callable[[str, object, SimulationResult], None]] = None,
) -> ExperimentResult:
    """Run the full grid and collect series.

    * ``param`` — the config field to vary (ignored when ``config_hook``
      is given, which maps (base, value) -> config directly);
    * ``skip(protocol, value)`` — omit points (the paper leaves Datacycle
      off the chart where it exceeds the y-axis);
    * ``progress`` — callback after each point (CLI prints rows).
    """
    result = ExperimentResult(name, xlabel)
    for protocol in protocols:
        series = Series(protocol)
        for value in values:
            if skip is not None and skip(protocol, value):
                continue
            if config_hook is not None:
                config = config_hook(base_config, value)
            else:
                config = base_config.replace(**{param: value})
            config = config.replace(protocol=protocol)
            run = run_simulation(config)
            point = Point(
                x=float(value),
                response_time=run.response_time,
                restart_ratio=run.restart_ratio,
                sim_time=run.sim_time,
                events=run.events,
            )
            series.points.append(point)
            if progress is not None:
                progress(protocol, value, run)
        result.series[protocol] = series
    return result
