"""Parameter-sweep machinery for the evaluation experiments.

An experiment varies one :class:`repro.sim.SimulationConfig` field across
a list of values for several protocols, runs one simulation per (value,
protocol) point, and gathers the series the paper plots: mean response
time (bit-units) and restart ratio, with 95% confidence intervals.

Grid points are independent seeded simulations, so ``run_sweep`` can fan
them over a :class:`concurrent.futures.ProcessPoolExecutor`
(``workers=N``) exactly like :mod:`repro.sim.batch` does for
replications.  Results are gathered in submission order and every
simulation derives its randomness from its config's seed, so the
assembled :class:`ExperimentResult` is bit-identical to a sequential run.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.arena import TIMELINE_CACHE
from ..sim.config import SimulationConfig
from ..sim.metrics import SummaryStat
from ..sim.simulation import SimulationResult, run_simulation

__all__ = ["Point", "Series", "ExperimentResult", "run_sweep"]


@dataclass(frozen=True)
class Point:
    """One (x, protocol) measurement."""

    x: float
    response_time: SummaryStat
    restart_ratio: SummaryStat
    sim_time: float
    events: int


@dataclass
class Series:
    """One protocol's curve across the sweep."""

    protocol: str
    points: List[Point] = field(default_factory=list)

    @property
    def xs(self) -> Tuple[float, ...]:
        return tuple(p.x for p in self.points)

    @property
    def response_means(self) -> Tuple[float, ...]:
        return tuple(p.response_time.mean for p in self.points)

    @property
    def restart_means(self) -> Tuple[float, ...]:
        return tuple(p.restart_ratio.mean for p in self.points)

    def point_at(self, x: float) -> Point:
        """The point whose x matches ``x`` up to float tolerance.

        Sweep values that pass through float arithmetic (a fraction
        computed by a ``config_hook``, ``0.1 * 3``, a value re-parsed
        from CSV/JSON) need not be bit-equal to the number the caller
        types, so the lookup takes the nearest point and accepts it when
        it is close (1e-9 relative).  Exact-equality lookup raised
        ``KeyError`` on points that plainly exist — the same float-``==``
        bug class PR 1 fixed in ``server/workload.py``.
        """
        best: Optional[Point] = None
        best_err = math.inf
        for p in self.points:
            err = abs(p.x - x)
            if err < best_err:
                best, best_err = p, err
        if best is not None and math.isclose(
            best.x, x, rel_tol=1e-9, abs_tol=1e-12
        ):
            return best
        raise KeyError(f"no point at x={x}")

    def response_at(self, x: float) -> float:
        return self.point_at(x).response_time.mean

    def restart_at(self, x: float) -> float:
        return self.point_at(x).restart_ratio.mean


@dataclass
class ExperimentResult:
    """All series of one experiment, ready for reporting."""

    name: str
    xlabel: str
    series: Dict[str, Series] = field(default_factory=dict)
    #: timeline-cache traffic this sweep generated in *this* process
    #: (hits/misses/stores/... deltas); grid points that replay a
    #: cached broadcast timeline show up here as hits.  Pool workers
    #: keep their own caches, so a parallel sweep only counts the
    #: parent's share.
    timeline_cache: Dict[str, int] = field(default_factory=dict)

    def protocols(self) -> Tuple[str, ...]:
        return tuple(self.series)

    def ordering_holds(
        self, x: float, better: str, worse: str, *, margin: float = 1.0
    ) -> bool:
        """Does ``better`` beat ``worse`` on response time at ``x``?

        ``margin`` < 1 tolerates near-ties (e.g. 0.95 allows 5% slack).
        """
        return (
            self.series[better].response_at(x)
            <= self.series[worse].response_at(x) * margin
        )


def _run_grid_point(
    job: "Tuple[str, object, SimulationConfig]",
) -> "Tuple[str, object, SimulationResult]":
    """One (protocol, value) point; module-level so pools can pickle it."""
    protocol, value, config = job
    return (protocol, value, run_simulation(config))


def run_sweep(
    name: str,
    xlabel: str,
    base_config: SimulationConfig,
    param: str,
    values: Sequence,
    protocols: Sequence[str],
    *,
    config_hook: Optional[Callable[[SimulationConfig, object], SimulationConfig]] = None,
    skip: Optional[Callable[[str, object], bool]] = None,
    progress: Optional[Callable[[str, object, SimulationResult], None]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the full grid and collect series.

    * ``param`` — the config field to vary (ignored when ``config_hook``
      is given, which maps (base, value) -> config directly);
    * ``skip(protocol, value)`` — omit points (the paper leaves Datacycle
      off the chart where it exceeds the y-axis);
    * ``progress`` — callback after each point (CLI prints rows);
    * ``workers`` — fan grid points over that many processes (``None``/1
      runs sequentially).  Hooks run in the parent — only finished,
      picklable configs ship to the pool — and results are gathered in
      grid order, so the returned series (and every ``progress`` call)
      are identical to the sequential run's.
    """
    result = ExperimentResult(name, xlabel)
    grid: List[Tuple[str, object, SimulationConfig]] = []
    for protocol in protocols:
        result.series[protocol] = Series(protocol)
        for value in values:
            if skip is not None and skip(protocol, value):
                continue
            if config_hook is not None:
                config = config_hook(base_config, value)
            else:
                config = base_config.replace(**{param: value})
            grid.append((protocol, value, config.replace(protocol=protocol)))

    outcomes: "Iterable[Tuple[str, object, SimulationResult]]"
    cache_before = TIMELINE_CACHE.stats.as_dict()
    if workers is not None and workers > 1 and len(grid) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_grid_point, grid, chunksize=1))
    else:
        # a lazy iterator, so progress callbacks interleave with the runs
        outcomes = (_run_grid_point(job) for job in grid)

    for protocol, value, run in outcomes:
        point = Point(
            x=float(value),
            response_time=run.response_time,
            restart_ratio=run.restart_ratio,
            sim_time=run.sim_time,
            events=run.events,
        )
        result.series[protocol].points.append(point)
        if progress is not None:
            progress(protocol, value, run)
    cache_after = TIMELINE_CACHE.stats.as_dict()
    result.timeline_cache = {
        key: cache_after[key] - cache_before[key] for key in cache_after
    }
    return result
