"""``repro-experiments scenario ...`` — the scenario subcommand.

Four verbs over the scenario library (docs/SCENARIOS.md):

* ``scenario list`` — the shipped scenarios, their seeds and protocols;
* ``scenario run NAME... | --all`` — run scenarios, check envelopes;
* ``scenario record NAME --out FILE`` — capture a replayable trace;
* ``scenario replay FILE [--executor E]`` — re-drive a trace, assert
  bit-identity with the recording.

Exit codes follow the repo-wide contract: **0** all checks passed,
**1** an envelope missed or a replay diverged, **2** usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

from .envelope import scenario_metrics
from .loader import builtin_scenarios, get_scenario
from .recording import RecordedTrace, record_scenario, replay_trace
from .schema import Scenario, ScenarioError

__all__ = ["build_scenario_parser", "scenario_main"]


def build_scenario_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments scenario",
        description="Run, record and replay declarative scenarios "
        "(docs/SCENARIOS.md).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    sub.add_parser("list", help="show the shipped scenario library")

    run = sub.add_parser(
        "run", help="run scenarios and check their metric envelopes"
    )
    run.add_argument(
        "names",
        nargs="*",
        help="library scenario names or paths to scenario files",
    )
    run.add_argument(
        "--all", action="store_true", help="run every library scenario"
    )
    run.add_argument(
        "--protocol",
        default=None,
        help="force one protocol instead of the scenario's list",
    )
    run.add_argument(
        "--executor",
        choices=["process", "cohort", "analytic"],
        default=None,
        help="override the scenario's client executor",
    )
    run.add_argument(
        "--no-envelope",
        action="store_true",
        help="report metrics but never fail on envelope misses",
    )
    run.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="write a JSON summary of every run",
    )

    record = sub.add_parser(
        "record", help="run one scenario and save a replayable trace"
    )
    record.add_argument("name", help="library scenario name or file path")
    record.add_argument(
        "--out", type=pathlib.Path, required=True, help="trace file to write"
    )
    record.add_argument(
        "--protocol", default=None, help="protocol (default: scenario's first)"
    )
    record.add_argument(
        "--executor",
        choices=["process", "cohort"],
        default=None,
        help="executor to record under (default: scenario's)",
    )

    replay = sub.add_parser(
        "replay", help="re-drive a recorded trace and assert bit-identity"
    )
    replay.add_argument("trace", type=pathlib.Path, help="recorded trace file")
    replay.add_argument(
        "--executor",
        choices=["process", "cohort"],
        default=None,
        help="executor to replay through (default: the recorded one); "
        "picking the other executor is the cross-engine identity check",
    )
    return parser


def _cmd_list() -> int:
    library = builtin_scenarios()
    if not library:
        print("scenario library is empty")
        return 0
    print(f"{len(library)} library scenario(s):")
    for name in sorted(library):
        scenario = library[name]
        envelope = (
            f"{len(scenario.envelope.bounds)} envelope bound(s)"
            if scenario.envelope is not None
            else "no envelope"
        )
        print(
            f"  {name}  seed={scenario.seed}  "
            f"protocols={','.join(scenario.protocols)}  {envelope}"
        )
        if scenario.description:
            print(f"      {scenario.description}")
    return 0


def _run_scenarios(
    scenarios: List[Scenario], args: argparse.Namespace
) -> int:
    from ..sim.simulation import run_simulation

    runs: List[Dict[str, object]] = []
    failures = 0
    for scenario in scenarios:
        protocols = (
            [args.protocol]
            if args.protocol is not None
            else list(scenario.protocols)
        )
        for protocol in protocols:
            overrides: Dict[str, object] = {}
            if args.executor is not None:
                overrides["client_executor"] = args.executor
            config = scenario.config_for(protocol, **overrides)
            start = time.time()
            result = run_simulation(config)
            elapsed = time.time() - start
            metrics = scenario_metrics(result)
            entry: Dict[str, object] = {
                "scenario": scenario.name,
                "protocol": protocol,
                "seed": scenario.seed,
                "executor": config.client_executor,
                "metrics": metrics,
                "wall_seconds": elapsed,
            }
            line = (
                f"[{scenario.name}/{protocol}] "
                f"commits={metrics['commits']:g} "
                f"response={metrics['response_time_mean']:.0f} "
                f"restarts={metrics['restart_ratio_mean']:.3f} "
                f"({elapsed:.1f}s)"
            )
            if scenario.envelope is not None and not args.no_envelope:
                report = scenario.envelope.check(result)
                entry["envelope"] = report.to_dict()
                if report.ok:
                    line += f"  envelope ok ({len(report.checks)} bounds)"
                else:
                    failures += 1
                    line += "  ENVELOPE MISS"
                    for miss in report.misses:
                        line += f"\n    {miss.describe()}"
            print(line)
            runs.append(entry)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps({"ok": failures == 0, "runs": runs}, indent=2) + "\n"
        )
        print(f"wrote {args.output}")
    if failures:
        print(f"{failures} envelope miss(es)")
        return 1
    return 0


def _cmd_run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.all and args.names:
        parser.error("give scenario names or --all, not both")
    if not args.all and not args.names:
        parser.error("give at least one scenario name (or --all)")
    if args.all:
        scenarios = [s for _, s in sorted(builtin_scenarios().items())]
    else:
        scenarios = [get_scenario(name) for name in args.names]
    return _run_scenarios(scenarios, args)


def _cmd_record(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.name)
    start = time.time()
    _result, trace = record_scenario(
        scenario, protocol=args.protocol, executor=args.executor
    )
    trace.save(args.out)
    elapsed = time.time() - start
    print(
        f"recorded {scenario.name} under {trace.recorded_executor} "
        f"({elapsed:.1f}s): digest {trace.digest[:12]}"
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = RecordedTrace.load(args.trace)
    start = time.time()
    _result, report = replay_trace(trace, executor=args.executor)
    elapsed = time.time() - start
    print(report.describe())
    print(f"({elapsed:.1f}s)")
    return 0 if report.ok else 1


def scenario_main(argv: Optional[List[str]] = None) -> int:
    parser = build_scenario_parser()
    args = parser.parse_args(argv)
    try:
        if args.verb == "list":
            return _cmd_list()
        if args.verb == "run":
            return _cmd_run(parser, args)
        if args.verb == "record":
            return _cmd_record(args)
        return _cmd_replay(args)
    except (ScenarioError, ValueError) as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - exit() raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(scenario_main())
