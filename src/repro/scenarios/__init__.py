"""Scenario DSL + trace record/replay (docs/SCENARIOS.md).

The front door for workloads: instead of hand-building
:class:`repro.sim.SimulationConfig` objects, a run is described by a
small declarative document (YAML or JSON) that composes workload shape,
fault plan, caching/currency tiers, broadcast layout, executor/shard/
timeline-mode choice and a protocol list — validated into configs by
:mod:`repro.scenarios.schema`.

* :mod:`repro.scenarios.schema` — the format, validation, and
  ``Scenario.config_for()``;
* :mod:`repro.scenarios.loader` — YAML/JSON parsing plus the shipped
  library of named, seeded scenarios under ``library/``;
* :mod:`repro.scenarios.envelope` — expected-metric envelopes (ranges
  for response time, restart ratio, abort causes, cache hit rate …)
  checked in CI by ``make scenario-smoke``;
* :mod:`repro.scenarios.recording` — record a run's
  :class:`repro.sim.trace.TraceRecorder` observables to a versioned
  file and re-drive any engine or executor from it, asserting
  bit-identity where the determinism contract promises it;
* :mod:`repro.scenarios.cli` — the ``repro-experiments scenario
  list|run|record|replay`` subcommand.
"""

from __future__ import annotations

from .envelope import (
    ENVELOPE_METRICS,
    EnvelopeCheck,
    EnvelopeReport,
    MetricBound,
    MetricEnvelope,
    scenario_metrics,
)
from .loader import (
    builtin_scenarios,
    get_scenario,
    library_dir,
    library_paths,
    load_scenario,
    loads_scenario,
)
from .recording import (
    TRACE_FORMAT_VERSION,
    RecordedTrace,
    ReplayReport,
    record_config,
    record_scenario,
    replay_trace,
    result_signature,
)
from .schema import (
    SCENARIO_FORMAT_VERSION,
    Scenario,
    ScenarioError,
    parse_scenario,
)

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "TRACE_FORMAT_VERSION",
    "Scenario",
    "ScenarioError",
    "parse_scenario",
    "load_scenario",
    "loads_scenario",
    "builtin_scenarios",
    "get_scenario",
    "library_dir",
    "library_paths",
    "ENVELOPE_METRICS",
    "MetricBound",
    "MetricEnvelope",
    "EnvelopeCheck",
    "EnvelopeReport",
    "scenario_metrics",
    "RecordedTrace",
    "ReplayReport",
    "record_config",
    "record_scenario",
    "replay_trace",
    "result_signature",
]
