"""The scenario document format and its validation.

A scenario is a small declarative mapping (usually authored as YAML,
see ``library/``) that composes every axis of a run:

.. code-block:: yaml

    format_version: 1
    name: commuter-doze
    description: Dozing clients under modulo timestamps.
    seed: 1999
    protocols: [f-matrix, r-matrix]
    config:                    # any SimulationConfig field except
      num_clients: 8           # protocol/seed/faults, which are owned
      client_executor: cohort  # by the sections around it
      modulo_timestamps: true
    faults:                    # optional; builds a FaultPlan
      seeded:                  # generator block (doze renewal process)
        horizon: 2.0e7
        mean_time_between_dozes: 4.0e6
        mean_doze_duration: 1.0e6
      crashes: []              # explicit events compose with the block
      uplink_loss_probability: 0.0
    envelope:                  # optional; [lo, hi] per metric
      restart_ratio_mean: [0.0, 3.0]
      doze_slots_missed: [1, 100000]

Validation is eager and total: unknown keys anywhere are rejected, and
:func:`parse_scenario` builds a :class:`repro.sim.SimulationConfig` for
every listed protocol before returning, so a scenario that loads is a
scenario that runs.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.validators import PROTOCOL_NAMES
from ..sim.config import SimulationConfig
from ..sim.faults import DozeInterval, FaultPlan, ServerCrash
from .envelope import MetricEnvelope

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "ScenarioError",
    "Scenario",
    "parse_scenario",
]

#: the on-disk format revision; bump on incompatible schema changes
SCENARIO_FORMAT_VERSION = 1

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")

_TOP_LEVEL_KEYS = frozenset(
    {
        "format_version",
        "name",
        "description",
        "seed",
        "protocols",
        "config",
        "faults",
        "envelope",
    }
)

#: SimulationConfig fields a scenario's ``config`` section may not set:
#: they are owned by dedicated top-level sections so a document cannot
#: contradict itself
_RESERVED_CONFIG_FIELDS = frozenset({"protocol", "seed", "faults"})

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(SimulationConfig))

_FAULTS_KEYS = frozenset(
    {
        "doze",
        "crashes",
        "seeded",
        "uplink_loss_probability",
        "uplink_max_retries",
        "uplink_timeout",
        "uplink_backoff",
    }
)

_SEEDED_KEYS = frozenset(
    {"seed", "horizon", "mean_time_between_dozes", "mean_doze_duration"}
)


class ScenarioError(ValueError):
    """A scenario document failed validation."""


@dataclass(frozen=True)
class Scenario:
    """A validated scenario: named, seeded, and ready to configure runs."""

    name: str
    seed: int
    description: str = ""
    #: protocols the scenario runs under by default (``scenario run``
    #: iterates these; any valid protocol may still be forced per run)
    protocols: Tuple[str, ...] = ("f-matrix",)
    #: raw ``config:`` section — SimulationConfig field overrides
    config_fields: Mapping[str, object] = field(default_factory=dict)
    faults: Optional[FaultPlan] = None
    envelope: Optional[MetricEnvelope] = None

    def config_for(
        self, protocol: Optional[str] = None, **overrides: object
    ) -> SimulationConfig:
        """The :class:`SimulationConfig` this scenario describes.

        ``protocol`` defaults to the scenario's first listed protocol;
        ``overrides`` patch individual config fields on top of the
        scenario's (the CLI uses this for ``--executor``/``--shards``).
        """
        chosen = protocol if protocol is not None else self.protocols[0]
        fields: Dict[str, object] = dict(self.config_fields)
        fields.update(overrides)
        return SimulationConfig(  # type: ignore[arg-type]
            protocol=chosen, seed=self.seed, faults=self.faults, **fields
        )

    def to_dict(self) -> Dict[str, object]:
        """The scenario as a document mapping (parse round-trips it)."""
        payload: Dict[str, object] = {
            "format_version": SCENARIO_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "protocols": list(self.protocols),
            "config": dict(self.config_fields),
        }
        if self.faults is not None:
            payload["faults"] = self.faults.to_dict()
        if self.envelope is not None:
            payload["envelope"] = self.envelope.to_dict()
        return payload


def _fail(source: str, message: str) -> "ScenarioError":
    return ScenarioError(f"{source}: {message}")


def _parse_faults(
    section: object, *, seed: int, num_clients: int, source: str
) -> FaultPlan:
    if not isinstance(section, Mapping):
        raise _fail(source, "'faults' must be a mapping")
    unknown = sorted(set(section) - _FAULTS_KEYS)
    if unknown:
        raise _fail(
            source,
            f"unknown faults key(s) {unknown}; known keys: "
            f"{sorted(_FAULTS_KEYS)}",
        )
    seeded = section.get("seeded")
    explicit_doze = section.get("doze", [])
    if seeded is not None and explicit_doze:
        raise _fail(
            source,
            "faults may declare 'doze' intervals or a 'seeded' generator "
            "block, not both",
        )
    try:
        crashes = tuple(
            ServerCrash.from_dict(entry) for entry in section.get("crashes", [])
        )
        uplink = {
            "uplink_loss_probability": float(
                section.get("uplink_loss_probability", 0.0)  # type: ignore[arg-type]
            ),
            "uplink_max_retries": int(
                section.get("uplink_max_retries", 3)  # type: ignore[arg-type]
            ),
            "uplink_timeout": float(
                section.get("uplink_timeout", 16_384.0)  # type: ignore[arg-type]
            ),
            "uplink_backoff": float(
                section.get("uplink_backoff", 2.0)  # type: ignore[arg-type]
            ),
        }
        if seeded is not None:
            if not isinstance(seeded, Mapping):
                raise ValueError("faults 'seeded' must be a mapping")
            bad = sorted(set(seeded) - _SEEDED_KEYS)
            if bad:
                raise ValueError(
                    f"unknown faults.seeded key(s) {bad}; known keys: "
                    f"{sorted(_SEEDED_KEYS)}"
                )
            if "horizon" not in seeded:
                raise ValueError("faults.seeded requires 'horizon'")
            return FaultPlan.seeded(
                int(seeded.get("seed", seed)),  # type: ignore[arg-type]
                num_clients=num_clients,
                horizon=float(seeded["horizon"]),  # type: ignore[arg-type]
                mean_time_between_dozes=float(
                    seeded.get("mean_time_between_dozes", 0.0)  # type: ignore[arg-type]
                ),
                mean_doze_duration=float(
                    seeded.get("mean_doze_duration", 0.0)  # type: ignore[arg-type]
                ),
                crashes=crashes,
                **uplink,  # type: ignore[arg-type]
            )
        doze = tuple(DozeInterval.from_dict(entry) for entry in explicit_doze)
        return FaultPlan(doze=doze, crashes=crashes, **uplink)  # type: ignore[arg-type]
    except ScenarioError:
        raise
    except (ValueError, TypeError, KeyError) as exc:
        raise _fail(source, f"invalid faults section: {exc}") from exc


def parse_scenario(
    payload: object, *, source: str = "<scenario>"
) -> Scenario:
    """Validate a decoded scenario document into a :class:`Scenario`.

    ``source`` names the document in error messages (the loader passes
    the file path).  Validation is eager: a config is built for every
    listed protocol, so constraint violations inside
    :class:`SimulationConfig` (analytic + faults, sharded process
    executor, …) surface here, not at run time.
    """
    if not isinstance(payload, Mapping):
        raise _fail(source, "scenario document must be a mapping")
    unknown = sorted(set(payload) - _TOP_LEVEL_KEYS)
    if unknown:
        raise _fail(
            source,
            f"unknown top-level key(s) {unknown}; known keys: "
            f"{sorted(_TOP_LEVEL_KEYS)}",
        )
    version = payload.get("format_version")
    if version != SCENARIO_FORMAT_VERSION:
        raise _fail(
            source,
            f"format_version must be {SCENARIO_FORMAT_VERSION}, "
            f"got {version!r}",
        )

    name = payload.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise _fail(
            source,
            f"'name' must be a lowercase kebab-case identifier, got {name!r}",
        )
    description = payload.get("description", "")
    if not isinstance(description, str):
        raise _fail(source, "'description' must be a string")

    seed = payload.get("seed")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise _fail(
            source,
            "scenarios must name an integer 'seed' (reproducibility is "
            f"the point), got {seed!r}",
        )

    protocols_raw = payload.get("protocols", ["f-matrix"])
    if not isinstance(protocols_raw, (list, tuple)) or not protocols_raw:
        raise _fail(source, "'protocols' must be a non-empty list")
    protocols = []
    for proto in protocols_raw:
        if proto not in PROTOCOL_NAMES:
            raise _fail(
                source,
                f"unknown protocol {proto!r}; choose from {PROTOCOL_NAMES}",
            )
        if proto in protocols:
            raise _fail(source, f"duplicate protocol {proto!r}")
        protocols.append(proto)

    config_raw = payload.get("config", {})
    if not isinstance(config_raw, Mapping):
        raise _fail(source, "'config' must be a mapping")
    reserved = sorted(set(config_raw) & _RESERVED_CONFIG_FIELDS)
    if reserved:
        raise _fail(
            source,
            f"config section may not set {reserved}: protocol comes from "
            "'protocols', seed from 'seed', faults from 'faults'",
        )
    bad_fields = sorted(set(config_raw) - _CONFIG_FIELDS)
    if bad_fields:
        raise _fail(
            source,
            f"unknown SimulationConfig field(s) {bad_fields} in config "
            "section",
        )

    faults: Optional[FaultPlan] = None
    if payload.get("faults") is not None:
        faults = _parse_faults(
            payload["faults"],
            seed=seed,
            num_clients=int(config_raw.get("num_clients", 1)),  # type: ignore[arg-type]
            source=source,
        )
        if faults.is_noop:
            faults = None

    envelope: Optional[MetricEnvelope] = None
    if payload.get("envelope") is not None:
        raw_env = payload["envelope"]
        if not isinstance(raw_env, Mapping):
            raise _fail(source, "'envelope' must be a mapping")
        try:
            envelope = MetricEnvelope.from_dict(raw_env)
        except ValueError as exc:
            raise _fail(source, str(exc)) from exc

    scenario = Scenario(
        name=name,
        seed=seed,
        description=description,
        protocols=tuple(protocols),
        config_fields=dict(config_raw),
        faults=faults,
        envelope=envelope,
    )
    for proto in scenario.protocols:
        try:
            scenario.config_for(proto)
        except (ValueError, TypeError) as exc:
            raise _fail(
                source, f"config invalid under protocol {proto!r}: {exc}"
            ) from exc
    return scenario
