"""Loading scenario documents from YAML/JSON text, files, and the library.

The shipped library lives in ``repro/scenarios/library/`` next to this
module — one file per named scenario, each with a pinned seed and a
calibrated metric envelope.  ``repro-experiments scenario list`` prints
it; :func:`get_scenario` resolves a CLI argument as a library name
first and a filesystem path second.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .schema import Scenario, ScenarioError, parse_scenario

__all__ = [
    "loads_scenario",
    "load_scenario",
    "library_dir",
    "library_paths",
    "builtin_scenarios",
    "get_scenario",
]

_YAML_SUFFIXES = (".yaml", ".yml")


def _decode(text: str, *, fmt: str, source: str) -> object:
    if fmt == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{source}: invalid JSON: {exc}") from exc
    if fmt == "yaml":
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - PyYAML is a dep
            raise ScenarioError(
                f"{source}: PyYAML is required to read YAML scenarios; "
                "install pyyaml or author the scenario as JSON"
            ) from exc
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"{source}: invalid YAML: {exc}") from exc
    raise ScenarioError(f"{source}: unknown scenario format {fmt!r}")


def loads_scenario(
    text: str, *, fmt: str = "yaml", source: str = "<scenario>"
) -> Scenario:
    """Parse scenario text (``fmt`` is ``"yaml"`` or ``"json"``)."""
    return parse_scenario(_decode(text, fmt=fmt, source=source), source=source)


def load_scenario(path: "Path | str") -> Scenario:
    """Load one scenario file; the suffix picks the format."""
    p = Path(path)
    fmt = "yaml" if p.suffix in _YAML_SUFFIXES else "json"
    try:
        text = p.read_text()
    except OSError as exc:
        raise ScenarioError(f"{p}: cannot read scenario file: {exc}") from exc
    return loads_scenario(text, fmt=fmt, source=str(p))


def library_dir() -> Path:
    """The shipped scenario library directory."""
    return Path(__file__).resolve().parent / "library"


def library_paths() -> List[Path]:
    """Every scenario file in the library, sorted by name."""
    root = library_dir()
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.iterdir()
        if p.suffix in (*_YAML_SUFFIXES, ".json") and p.is_file()
    )


def builtin_scenarios() -> Dict[str, Scenario]:
    """The shipped library, loaded and validated, keyed by name.

    A library file whose ``name`` disagrees with its stem is rejected:
    the CLI resolves scenarios by name, so the two must not drift.
    """
    out: Dict[str, Scenario] = {}
    for path in library_paths():
        scenario = load_scenario(path)
        if scenario.name != path.stem:
            raise ScenarioError(
                f"{path}: scenario is named {scenario.name!r} but the file "
                f"stem is {path.stem!r}; rename one to match"
            )
        if scenario.name in out:
            raise ScenarioError(
                f"{path}: duplicate scenario name {scenario.name!r}"
            )
        out[scenario.name] = scenario
    return out


def get_scenario(name_or_path: str) -> Scenario:
    """Resolve a CLI argument: library name first, then a file path."""
    library = builtin_scenarios()
    if name_or_path in library:
        return library[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return load_scenario(path)
    known: Optional[str] = ", ".join(sorted(library)) or None
    raise ScenarioError(
        f"unknown scenario {name_or_path!r}: not a library name "
        f"({known or 'library is empty'}) and no such file"
    )
