"""Record a run's observable outcome; re-drive engines from the file.

The determinism contract (docs/DESIGN.md, docs/PERFORMANCE.md) promises
that a config plus its seed pins a run bit-for-bit, and that the
``process`` and ``cohort`` executors produce identical results.  This
module turns that promise into an executable artefact:

* :func:`record_scenario` / :func:`record_config` run a simulation with
  tracing on and capture a :class:`RecordedTrace` — the exact config
  (via :meth:`SimulationConfig.to_dict`), the committed-transaction
  observables (:meth:`TraceRecorder.observables`), and a metric
  signature — into a versioned JSON file;
* :func:`replay_trace` re-runs the recorded config under any eligible
  executor and asserts the replayed observables and signature are
  *bit-identical* to the recording, reporting the first divergence
  otherwise.

Eligibility is the contract's own boundary: the ``analytic`` executor
records no trace, and sharded runs keep no global trace, so replays are
restricted to unsharded ``process``/``cohort`` runs — exactly where
bit-identity is promised.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from ..sim.config import SimulationConfig

if TYPE_CHECKING:
    from ..sim.simulation import SimulationResult
    from .schema import Scenario

__all__ = [
    "TRACE_FORMAT_VERSION",
    "RecordedTrace",
    "ReplayMismatch",
    "ReplayReport",
    "result_signature",
    "record_config",
    "record_scenario",
    "replay_trace",
]

#: on-disk trace format revision; bump on incompatible changes
TRACE_FORMAT_VERSION = 1

#: executors a trace can be recorded under / replayed through
_REPLAYABLE_EXECUTORS = ("process", "cohort")


def result_signature(result: "SimulationResult") -> Dict[str, object]:
    """The metric fingerprint a bit-identical replay must reproduce."""
    return {
        "commits": result.metrics.commit_count,
        "counters": result.metrics.counters(),
        "response_mean": result.response_time.mean,
        "restart_mean": result.restart_ratio.mean,
        "sim_time": result.sim_time,
    }


def _canonical(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _canonical_observables(
    observables: Mapping[str, object]
) -> Dict[str, object]:
    """Raw trace observables in executor-independent canonical form.

    The contract pins each committed transaction's content and each
    client's program order bit-for-bit; the *global interleaving* of
    simultaneous commits is an executor scheduling detail (the cohort
    executor coalesces same-slot clients, so ties drain in a different
    order than the per-process oracle).  Canonical form therefore sorts
    commits by transaction id and groups session order per client —
    everything the contract promises, nothing it does not.
    """
    commits = observables.get("client_commits", [])
    sessions = observables.get("session_commits", [])
    assert isinstance(commits, list) and isinstance(sessions, list)
    per_client: Dict[int, List[str]] = {}
    for client_id, tid in sessions:
        per_client.setdefault(int(client_id), []).append(str(tid))
    return {
        "client_commits": sorted(
            (dict(commit) for commit in commits),
            key=lambda commit: str(commit["tid"]),
        ),
        "session_commits": [
            [client_id, tids] for client_id, tids in sorted(per_client.items())
        ],
    }


def _check_replayable(config: SimulationConfig, *, verb: str) -> None:
    if config.client_executor not in _REPLAYABLE_EXECUTORS:
        raise ValueError(
            f"cannot {verb} under client_executor="
            f"{config.client_executor!r}: the analytic tier records no "
            "trace; use 'process' or 'cohort'"
        )
    if config.shards != 1:
        raise ValueError(
            f"cannot {verb} a sharded run: shards keep no global trace; "
            "use shards=1"
        )
    if config.timeline_mode != "recompute":
        raise ValueError(
            f"cannot {verb} with timeline_mode="
            f"{config.timeline_mode!r}: use 'recompute'"
        )


@dataclass(frozen=True)
class RecordedTrace:
    """One recorded run: config, observables, and metric signature."""

    config: SimulationConfig
    #: :meth:`TraceRecorder.observables` of the recorded run, in
    #: canonical executor-independent form (commits sorted by tid,
    #: session order grouped per client)
    observables: Mapping[str, object]
    #: :func:`result_signature` of the recorded run
    signature: Mapping[str, object]
    #: executor the recording ran under (replays may pick another)
    recorded_executor: str = "process"
    #: scenario name, when recorded through one ("" for ad-hoc configs)
    scenario: str = ""

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical observables + signature.

        Deliberately excludes the config: a replay under a different
        executor must reproduce this digest exactly — that *is* the
        bit-identity assertion.
        """
        return hashlib.sha256(
            _canonical({"observables": self.observables, "signature": self.signature})
        ).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "scenario": self.scenario,
            "recorded_executor": self.recorded_executor,
            "config": self.config.to_dict(),
            "observables": dict(self.observables),
            "signature": dict(self.signature),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RecordedTrace":
        version = payload.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format_version {version!r} "
                f"(this build reads {TRACE_FORMAT_VERSION})"
            )
        config = payload.get("config")
        if not isinstance(config, Mapping):
            raise ValueError("trace file has no 'config' mapping")
        trace = cls(
            config=SimulationConfig.from_dict(dict(config)),
            observables=payload.get("observables", {}),  # type: ignore[arg-type]
            signature=payload.get("signature", {}),  # type: ignore[arg-type]
            recorded_executor=str(payload.get("recorded_executor", "process")),
            scenario=str(payload.get("scenario", "")),
        )
        stored = payload.get("digest")
        if stored is not None and stored != trace.digest:
            raise ValueError(
                "trace file is corrupt: stored digest "
                f"{stored!r} != recomputed {trace.digest!r}"
            )
        return trace

    def save(self, path: "Path | str") -> None:
        """Write the versioned trace file atomically."""
        target = Path(path)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        tmp.replace(target)

    @classmethod
    def load(cls, path: "Path | str") -> "RecordedTrace":
        source = Path(path)
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{source}: cannot read trace file: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise ValueError(f"{source}: trace file must hold a JSON object")
        return cls.from_dict(payload)


def record_config(
    config: SimulationConfig, *, scenario_name: str = ""
) -> "Tuple[SimulationResult, RecordedTrace]":
    """Run ``config`` with tracing and capture a :class:`RecordedTrace`."""
    from ..sim.simulation import run_simulation

    _check_replayable(config, verb="record")
    result = run_simulation(config, collect_trace=True)
    if result.trace is None:
        raise RuntimeError("run produced no trace despite collect_trace=True")
    return result, RecordedTrace(
        config=config,
        observables=_canonical_observables(result.trace.observables()),
        signature=result_signature(result),
        recorded_executor=config.client_executor,
        scenario=scenario_name,
    )


def record_scenario(
    scenario: "Scenario",
    *,
    protocol: Optional[str] = None,
    executor: Optional[str] = None,
) -> "Tuple[SimulationResult, RecordedTrace]":
    """Record one of a scenario's runs (default: first protocol)."""
    overrides: Dict[str, object] = {}
    if executor is not None:
        overrides["client_executor"] = executor
    config = scenario.config_for(protocol, **overrides)
    return record_config(config, scenario_name=scenario.name)


@dataclass(frozen=True)
class ReplayMismatch:
    """One observed divergence between recording and replay."""

    where: str
    detail: str

    def describe(self) -> str:
        return f"{self.where}: {self.detail}"


@dataclass(frozen=True)
class ReplayReport:
    """The verdict of one replay run against its recording."""

    executor: str
    recorded_executor: str
    recorded_digest: str
    replayed_digest: str
    mismatches: Tuple[ReplayMismatch, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        head = (
            f"replay[{self.executor}] vs recording"
            f"[{self.recorded_executor}]: "
        )
        if self.ok:
            return head + f"bit-identical (digest {self.recorded_digest[:12]})"
        lines = [head + f"{len(self.mismatches)} divergence(s)"]
        lines.extend("  " + m.describe() for m in self.mismatches)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "executor": self.executor,
            "recorded_executor": self.recorded_executor,
            "recorded_digest": self.recorded_digest,
            "replayed_digest": self.replayed_digest,
            "mismatches": [
                {"where": m.where, "detail": m.detail} for m in self.mismatches
            ],
        }


def _diff_observables(
    recorded: Mapping[str, object], replayed: Mapping[str, object]
) -> List[ReplayMismatch]:
    out: List[ReplayMismatch] = []
    rec_commits = recorded.get("client_commits", [])
    rep_commits = replayed.get("client_commits", [])
    assert isinstance(rec_commits, list) and isinstance(rep_commits, list)
    if len(rec_commits) != len(rep_commits):
        out.append(
            ReplayMismatch(
                "client_commits",
                f"recorded {len(rec_commits)} commits, replayed "
                f"{len(rep_commits)}",
            )
        )
    for index, (a, b) in enumerate(zip(rec_commits, rep_commits)):
        if a != b:
            out.append(
                ReplayMismatch(
                    f"client_commits[{index}]",
                    f"recorded {json.dumps(a, sort_keys=True)} != replayed "
                    f"{json.dumps(b, sort_keys=True)}",
                )
            )
            break  # first divergence is the story; the rest is noise
    rec_sessions = dict(
        (entry[0], entry[1]) for entry in recorded.get("session_commits", [])
    )
    rep_sessions = dict(
        (entry[0], entry[1]) for entry in replayed.get("session_commits", [])
    )
    for client_id in sorted(set(rec_sessions) | set(rep_sessions)):
        if rec_sessions.get(client_id) != rep_sessions.get(client_id):
            out.append(
                ReplayMismatch(
                    f"session_commits[client {client_id}]",
                    "per-client commit order diverged",
                )
            )
            break
    return out


def replay_trace(
    trace: RecordedTrace, *, executor: Optional[str] = None
) -> "Tuple[SimulationResult, ReplayReport]":
    """Re-drive a recorded run; assert bit-identity with the recording.

    ``executor`` defaults to the recorded one; passing the *other*
    eligible executor is the cross-engine check — the contract says the
    digest must come out identical either way.
    """
    from ..sim.simulation import run_simulation

    chosen = executor if executor is not None else trace.recorded_executor
    config = trace.config.replace(client_executor=chosen)
    _check_replayable(config, verb="replay")
    result = run_simulation(config, collect_trace=True)
    if result.trace is None:
        raise RuntimeError("replay produced no trace despite collect_trace=True")

    replayed = RecordedTrace(
        config=config,
        observables=_canonical_observables(result.trace.observables()),
        signature=result_signature(result),
        recorded_executor=chosen,
        scenario=trace.scenario,
    )
    mismatches = _diff_observables(trace.observables, replayed.observables)
    for key, recorded_value in trace.signature.items():
        replayed_value = replayed.signature.get(key)
        if recorded_value != replayed_value:
            mismatches.append(
                ReplayMismatch(
                    f"signature.{key}",
                    f"recorded {recorded_value!r} != replayed "
                    f"{replayed_value!r}",
                )
            )
    report = ReplayReport(
        executor=chosen,
        recorded_executor=trace.recorded_executor,
        recorded_digest=trace.digest,
        replayed_digest=replayed.digest,
        mismatches=tuple(mismatches),
    )
    return result, report
