"""Expected-metric envelopes for scenario runs.

A scenario can declare, per metric, a ``[lo, hi]`` range the run's
outcome must fall inside.  The envelope is the scenario's regression
contract: the library scenarios ship with envelopes calibrated from
their pinned seeds, and ``make scenario-smoke`` re-runs them in CI and
fails (exit code 1) when a run drifts outside its ranges.

Envelopes are *ranges*, not exact values, on purpose: exact values
belong to the determinism contract (record/replay,
:mod:`repro.scenarios.recording`); envelopes instead encode the
qualitative claim a scenario exists to demonstrate — "the update storm
pushes the restart ratio above X", "the quasi-cache fleet actually
hits its cache", "exactly one crash happened".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Tuple

if TYPE_CHECKING:
    from ..sim.simulation import SimulationResult

__all__ = [
    "ENVELOPE_METRICS",
    "scenario_metrics",
    "MetricBound",
    "EnvelopeCheck",
    "EnvelopeReport",
    "MetricEnvelope",
]


def _cache_hit_rate(result: "SimulationResult") -> float:
    m = result.metrics
    served = m.cache_hits + m.reads_delivered
    return m.cache_hits / served if served else 0.0


#: every metric name an envelope may bound, mapped to its extractor.
#: Counter names resolve through :meth:`MetricsCollector.counters`, so
#: the set tracks ``_COUNTER_FIELDS`` automatically; the derived
#: entries below add the summary statistics the paper plots.
ENVELOPE_METRICS: Dict[str, Callable[["SimulationResult"], float]] = {
    "response_time_mean": lambda r: r.response_time.mean,
    "restart_ratio_mean": lambda r: r.restart_ratio.mean,
    "commits": lambda r: float(r.metrics.commit_count),
    "cache_hit_rate": _cache_hit_rate,
    "sim_time": lambda r: r.sim_time,
}


def _install_counter_metrics() -> None:
    from ..sim.metrics import MetricsCollector

    def make(name: str) -> Callable[["SimulationResult"], float]:
        return lambda r: float(getattr(r.metrics, name))

    for name in MetricsCollector._COUNTER_FIELDS:
        ENVELOPE_METRICS.setdefault(name, make(name))


_install_counter_metrics()


def scenario_metrics(result: "SimulationResult") -> Dict[str, float]:
    """Every envelope-checkable metric of a finished run, by name."""
    return {name: fn(result) for name, fn in ENVELOPE_METRICS.items()}


@dataclass(frozen=True)
class MetricBound:
    """An inclusive ``[lo, hi]`` range one metric must land in."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"envelope bound has lo {self.lo} > hi {self.hi}")

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class EnvelopeCheck:
    """One metric's verdict against its bound."""

    metric: str
    value: float
    lo: float
    hi: float
    ok: bool

    def describe(self) -> str:
        verdict = "ok" if self.ok else "MISS"
        return (
            f"{self.metric}: {self.value:g} "
            f"in [{self.lo:g}, {self.hi:g}] -> {verdict}"
        )


@dataclass(frozen=True)
class EnvelopeReport:
    """All of one run's envelope verdicts."""

    checks: Tuple[EnvelopeCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def misses(self) -> Tuple[EnvelopeCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def describe(self) -> str:
        if not self.checks:
            return "no envelope declared"
        return "\n".join(check.describe() for check in self.checks)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": [
                {
                    "metric": c.metric,
                    "value": c.value,
                    "lo": c.lo,
                    "hi": c.hi,
                    "ok": c.ok,
                }
                for c in self.checks
            ],
        }


@dataclass(frozen=True)
class MetricEnvelope:
    """A scenario's expected-metric ranges, checked after each run."""

    #: (metric name, bound) pairs in declaration order
    bounds: Tuple[Tuple[str, MetricBound], ...]

    def __post_init__(self) -> None:
        seen = set()
        for name, _bound in self.bounds:
            if name not in ENVELOPE_METRICS:
                raise ValueError(
                    f"unknown envelope metric {name!r}; known metrics: "
                    f"{sorted(ENVELOPE_METRICS)}"
                )
            if name in seen:
                raise ValueError(f"duplicate envelope metric {name!r}")
            seen.add(name)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricEnvelope":
        """Build from a ``{metric: [lo, hi]}`` mapping (scenario files)."""
        bounds: List[Tuple[str, MetricBound]] = []
        for name, raw in payload.items():
            if (
                not isinstance(raw, (list, tuple))
                or len(raw) != 2
                or not all(isinstance(v, (int, float)) for v in raw)
            ):
                raise ValueError(
                    f"envelope metric {name!r} must map to a [lo, hi] pair, "
                    f"got {raw!r}"
                )
            bounds.append((str(name), MetricBound(float(raw[0]), float(raw[1]))))
        return cls(tuple(bounds))

    def to_dict(self) -> Dict[str, List[float]]:
        """The inverse of :meth:`from_dict` (round-trips losslessly)."""
        return {name: [bound.lo, bound.hi] for name, bound in self.bounds}

    def check(self, result: "SimulationResult") -> EnvelopeReport:
        """Evaluate every declared bound against a finished run."""
        values = scenario_metrics(result)
        return EnvelopeReport(
            tuple(
                EnvelopeCheck(
                    metric=name,
                    value=values[name],
                    lo=bound.lo,
                    hi=bound.hi,
                    ok=bound.contains(values[name]),
                )
                for name, bound in self.bounds
            )
        )
