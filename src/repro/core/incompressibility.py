"""Theorem 8 (Appendix D): the control matrix is worst-case incompressible.

The theorem shows that, no matter the compression scheme, transmitting
the F-Matrix control information costs Ω(n²·log(max_cycles)) bits per
cycle in the worst case, because a quadratically large family of distinct
``C`` matrices is *realisable*: every partial specification

    C(i, j) arbitrary for i, j in the first (n-1)/2 objects,
    subject to C(i, j) ≤ C(j, j)

arises from an actual history of update transactions.  The proof's
construction is executable here:

* each object ``ob_k`` in the quadrant has a *twin* ``ob_{n-1-k}`` used
  as a dependency accumulator, avoiding unwanted cross-column pollution;
* for every non-zero off-diagonal entry ``C(i, j) = c`` a transaction
  ``r[twin_j] w[ob_i] w[twin_j]`` commits in cycle ``c`` — it stamps "a
  transaction affecting ``twin_j`` wrote ``ob_i`` at cycle ``c``" while
  preserving the twin's earlier dependencies;
* finally, per quadrant column ``j``, a transaction ``r[twin_j] w[ob_j]``
  commits in the last cycle, transferring the twin's accumulated
  dependency column onto ``ob_j`` itself.

:func:`history_for_spec` emits the commit sequence;
:func:`realize_spec` replays it through the real
:class:`repro.core.control_matrix.ControlMatrix` and returns the final
matrix — the tests assert the quadrant comes out exactly as specified,
for random specifications, which is the theorem's counting argument made
concrete.  :func:`worst_case_bits` is the resulting lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .control_matrix import ControlMatrix

__all__ = [
    "SpecCommit",
    "quadrant_size",
    "twin",
    "validate_spec",
    "history_for_spec",
    "realize_spec",
    "worst_case_bits",
]


@dataclass(frozen=True)
class SpecCommit:
    """One committed update transaction of the construction."""

    tid: str
    cycle: int
    read_set: Tuple[int, ...]
    write_set: Tuple[int, ...]


def quadrant_size(num_objects: int) -> int:
    """The (n-1)/2 freely-specifiable rows/columns (n odd per the proof)."""
    if num_objects < 3 or num_objects % 2 == 0:
        raise ValueError("the construction wants an odd n >= 3")
    return (num_objects - 1) // 2


def twin(obj: int, num_objects: int) -> int:
    """The dependency-accumulator twin of a quadrant object."""
    return num_objects - 1 - obj


def validate_spec(
    spec: Dict[Tuple[int, int], int], num_objects: int, max_cycle: int
) -> None:
    """Check a partial specification against the theorem's constraints."""
    m = quadrant_size(num_objects)
    for (i, j), cycle in spec.items():
        if not (0 <= i < m and 0 <= j < m):
            raise ValueError(f"entry ({i},{j}) outside the {m}x{m} quadrant")
        if i == j:
            raise ValueError("diagonal entries are fixed to max_cycle by the construction")
        if not 0 <= cycle < max_cycle:
            raise ValueError(
                f"entry ({i},{j})={cycle} violates 0 <= C(i,j) < C(j,j) = {max_cycle}"
            )


def history_for_spec(
    spec: Dict[Tuple[int, int], int], num_objects: int, max_cycle: int
) -> List[SpecCommit]:
    """The Appendix D commit sequence realising ``spec``.

    Off-diagonal quadrant entries take the specified values (0 = never);
    diagonal quadrant entries come out as ``max_cycle``.
    """
    validate_spec(spec, num_objects, max_cycle)
    m = quadrant_size(num_objects)
    commits: List[SpecCommit] = []
    counter = 0
    for (i, j), cycle in sorted(spec.items(), key=lambda kv: (kv[1], kv[0])):
        if cycle == 0:
            continue  # zero means "no transaction affecting j wrote i"
        counter += 1
        tw = twin(j, num_objects)
        commits.append(
            SpecCommit(f"e{counter}", cycle, (tw,), (i, tw))
        )
    for j in range(m):
        tw = twin(j, num_objects)
        commits.append(SpecCommit(f"d{j}", max_cycle, (tw,), (j,)))
    return commits


def realize_spec(
    spec: Dict[Tuple[int, int], int], num_objects: int, max_cycle: int
) -> np.ndarray:
    """Replay the construction through the real control matrix."""
    matrix = ControlMatrix(num_objects)
    for commit in history_for_spec(spec, num_objects, max_cycle):
        matrix.apply_commit(commit.cycle, commit.read_set, commit.write_set)
    return matrix.snapshot()


def worst_case_bits(num_objects: int, max_cycles: int) -> float:
    """Theorem 8's lower bound: (n² − 4n + 3)/4 · log₂(max_cycles) bits."""
    if max_cycles < 2:
        raise ValueError("need at least two distinguishable cycles")
    n = num_objects
    return max(0.0, (n * n - 4 * n + 3) / 4) * math.log2(max_cycles)
