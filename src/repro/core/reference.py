"""Pure-Python reference implementations (differential-testing oracles).

The production control-state code (:mod:`repro.core.control_matrix`,
:mod:`repro.core.group_matrix`) is numpy-vectorised — the paper's future
work frets about "efficient computation of the control matrix", and
vectorisation is our answer.  To keep the fast path honest, this module
re-implements the Theorem 2 rules in the most literal way possible
(nested loops over plain lists, transcribing the paper's three cases
verbatim) so property tests can diff the two and the benchmark suite can
quantify the speed-up.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["ReferenceControlMatrix", "ReferenceLastWriteVector"]


class ReferenceControlMatrix:
    """Literal transcription of the Theorem 2 incremental algorithm.

    * ``C_new(i, j) = c2``                       if ob_i, ob_j ∈ WS
    * ``C_new(i, j) = max_{ob_k ∈ RS} C_old(i, k)``  if ob_i ∉ WS, ob_j ∈ WS
      (0 when RS is empty)
    * ``C_new(i, j) = C_old(i, j)``              otherwise
    """

    def __init__(self, num_objects: int):
        if num_objects <= 0:
            raise ValueError("num_objects must be positive")
        self._n = num_objects
        self._c: List[List[int]] = [
            [0] * num_objects for _ in range(num_objects)
        ]

    @property
    def num_objects(self) -> int:
        return self._n

    def entry(self, i: int, j: int) -> int:
        return self._c[i][j]

    def rows(self) -> List[List[int]]:
        return [list(row) for row in self._c]

    def apply_commit(
        self,
        commit_cycle: int,
        read_set: Iterable[int],
        write_set: Iterable[int],
    ) -> None:
        ws = set(write_set)
        if not ws:
            return
        rs = sorted(set(read_set))
        old = [list(row) for row in self._c]
        for i in range(self._n):
            for j in range(self._n):
                if j not in ws:
                    continue  # case 3: column untouched
                if i in ws:
                    self._c[i][j] = commit_cycle          # case 1
                elif rs:
                    self._c[i][j] = max(old[i][k] for k in rs)  # case 2
                else:
                    self._c[i][j] = 0                     # case 2, RS empty


class ReferenceLastWriteVector:
    """Literal last-committed-write-cycle bookkeeping."""

    def __init__(self, num_objects: int):
        self._mc = [0] * num_objects

    def entry(self, i: int) -> int:
        return self._mc[i]

    def values(self) -> List[int]:
        return list(self._mc)

    def apply_commit(
        self, commit_cycle: int, read_set: Iterable[int], write_set: Iterable[int]
    ) -> None:
        for obj in set(write_set):
            self._mc[obj] = commit_cycle
