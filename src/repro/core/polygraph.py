"""Polygraphs and the per-reader polygraph ``P_H(t)`` (Definitions 4–6).

A polygraph ``(N, A, B)`` is a digraph ``(N, A)`` plus a set ``B`` of
*bipaths*: pairs of optional arcs ``((v,u),(u,w))`` associated with an arc
``(w,v) ∈ A``; a compatible digraph must contain at least one arc of every
bipath.  The polygraph is *acyclic* iff some compatible digraph is acyclic
(Definition 5) — deciding this is NP-complete in general, so
:meth:`Polygraph.is_acyclic` uses backtracking over bipath choices with
unit propagation; it is exact and fast for the history sizes the theory
module works with.

``P_H(t)`` (Definition 6) has nodes ``LIVE_H(t)``, arcs for reads-from
pairs, and a bipath ``((t',t''),(t''',t'))`` whenever ``t'`` writes an
object that ``t'''`` reads from ``t''`` — the "either before the writer or
after the reader" choice of version-order placement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .model import History, T0
from .readsfrom import live_set
from .serialgraph import Digraph

__all__ = ["Bipath", "Polygraph", "PolygraphRefutation", "reader_polygraph"]

Arc = Tuple[str, str]


class Bipath:
    """A bipath ``(a1, a2)``: a compatible digraph includes a1 or a2."""

    __slots__ = ("first", "second")

    def __init__(self, first: Arc, second: Arc):
        self.first = first
        self.second = second

    def __iter__(self) -> Iterator[Arc]:
        return iter((self.first, self.second))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bipath)
            and {self.first, self.second} == {other.first, other.second}
        )

    def __hash__(self) -> int:
        return hash(frozenset((self.first, self.second)))

    def __repr__(self) -> str:
        return f"Bipath({self.first} | {self.second})"


class Polygraph:
    """``(N, A, B)`` with an exact acyclicity decision procedure."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        arcs: Iterable[Arc] = (),
        bipaths: Iterable[Bipath] = (),
    ):
        self.nodes: Set[str] = set(nodes)
        self.arcs: Set[Arc] = set()
        self.bipaths: List[Bipath] = []
        self._bipath_set: Set[Bipath] = set()  # dedup index over bipaths
        for arc in arcs:
            self.add_arc(*arc)
        for bipath in bipaths:
            self.add_bipath(bipath)

    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        self.nodes.add(node)

    def add_arc(self, src: str, dst: str) -> None:
        if src == dst:
            return
        self.nodes.update((src, dst))
        self.arcs.add((src, dst))

    def add_bipath(self, bipath: Bipath) -> None:
        for src, dst in bipath:
            self.nodes.update((src, dst))
        if bipath not in self._bipath_set:
            self._bipath_set.add(bipath)
            self.bipaths.append(bipath)

    def __repr__(self) -> str:
        return (
            f"Polygraph(|N|={len(self.nodes)}, |A|={len(self.arcs)}, "
            f"|B|={len(self.bipaths)})"
        )

    # ------------------------------------------------------------------
    def compatible_digraphs(self) -> Iterable[Digraph]:
        """Enumerate the (up to 2^|B|) digraphs of the family D(N, A, B).

        Intended for tests on small polygraphs; :meth:`is_acyclic` does not
        enumerate exhaustively.
        """
        for choices in itertools.product(*(tuple(b) for b in self.bipaths)):
            g = Digraph(sorted(self.nodes))
            for arc in self.arcs:
                g.add_edge(*arc)
            for arc in choices:
                g.add_edge(*arc)
            yield g

    # ------------------------------------------------------------------
    def satisfied_by(self, order: Sequence[str]) -> bool:
        """Is ``order`` a serialization witness for this polygraph?

        True iff ``order`` is a duplicate-free cover of the node set that
        orients every fixed arc forwards and satisfies at least one side
        of every bipath.  Linear in ``|A| + |B|`` — callers with a good
        guess (e.g. a run's commit order) can certify acyclicity without
        entering the exponential search.
        """
        index = {node: i for i, node in enumerate(order)}
        if len(index) != len(order):
            return False
        if any(node not in index for node in self.nodes):
            return False
        for src, dst in self.arcs:
            if index[src] >= index[dst]:
                return False
        for bipath in self.bipaths:
            (a1, b1), (a2, b2) = bipath.first, bipath.second
            if index[a1] >= index[b1] and index[a2] >= index[b2]:
                return False
        return True

    def is_acyclic(self) -> bool:
        """True iff some compatible digraph is acyclic (Definition 5)."""
        return self.acyclic_witness() is not None

    def acyclic_witness(self) -> Optional[Digraph]:
        """An acyclic compatible digraph, or ``None`` when none exists.

        Backtracking over bipath arc choices.  Before branching, bipaths
        that are already satisfied by the current arc set are discarded and
        *forced* choices (one side would close a cycle immediately) are
        propagated.
        """
        base = Digraph(sorted(self.nodes))
        for arc in self.arcs:
            base.add_edge(*arc)
        if not base.is_acyclic():
            return None
        return self._search(base, list(self.bipaths))

    def refutation(self) -> Optional["PolygraphRefutation"]:
        """Explain why no acyclic compatible digraph exists.

        Returns ``None`` when the polygraph is acyclic.  Otherwise the
        refutation is found by *saturation*: starting from the fixed arcs,
        bipaths whose one side would close a cycle have their other side
        forced, until either a fixpoint is reached or a contradiction
        surfaces.  Three kinds of contradiction witness, in increasing
        generality:

        - ``"arc-cycle"``: the fixed arcs alone contain a cycle;
        - ``"bipath-blocked"``: saturation reached a bipath whose *both*
          arcs would close a cycle — the witness carries the bipath and
          the two would-be cycles;
        - ``"search-exhausted"``: saturation alone is inconclusive but the
          backtracking search proved every compatible digraph cyclic (rare
          for the history sizes here; no single minimal cycle exists).
        """
        base = Digraph(sorted(self.nodes))
        for arc in self.arcs:
            base.add_edge(*arc)
        if not base.is_acyclic():
            return PolygraphRefutation("arc-cycle", cycle=tuple(base.find_cycle() or ()))

        pending = list(self.bipaths)
        while True:
            remaining: List[Bipath] = []
            forced: List[Arc] = []
            for bipath in pending:
                a1, a2 = bipath.first, bipath.second
                if base.has_edge(*a1) or base.has_edge(*a2):
                    continue
                path1 = self._closing_cycle(base, a1)
                path2 = self._closing_cycle(base, a2)
                if path1 is not None and path2 is not None:
                    return PolygraphRefutation(
                        "bipath-blocked",
                        bipath=bipath,
                        first_cycle=path1,
                        second_cycle=path2,
                    )
                if path1 is None and path2 is None:
                    remaining.append(bipath)
                else:
                    forced.append(a2 if path1 is not None else a1)
            if not forced:
                pending = remaining
                break
            for arc in forced:
                cycle = self._closing_cycle(base, arc)
                if cycle is not None:
                    return PolygraphRefutation("arc-cycle", cycle=cycle)
                base.add_edge(*arc)
            pending = remaining

        if not pending:
            return None  # saturated graph is acyclic and complete
        if self._search(base.copy(), list(pending)) is not None:
            return None
        return PolygraphRefutation("search-exhausted")

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _closing_cycle(graph: Digraph, arc: Arc) -> Optional[Tuple[str, ...]]:
        """The cycle adding ``arc`` would close, or ``None``.

        The cycle is returned as ``(src, dst, ..., src)`` — ``arc``
        followed by a shortest existing ``dst → … → src`` path.
        """
        src, dst = arc
        if src == dst:
            return (src, src)
        parent: Dict[str, str] = {dst: dst}
        frontier = [dst]
        while frontier:
            nxt_frontier: List[str] = []
            for node in frontier:
                for succ in graph.successors(node):
                    if succ in parent:
                        continue
                    parent[succ] = node
                    if succ == src:
                        path = [src]
                        while path[-1] != dst:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return (src,) + tuple(path)
                    nxt_frontier.append(succ)
            frontier = nxt_frontier
        return None

    @staticmethod
    def _creates_cycle(graph: Digraph, arc: Arc) -> bool:
        """Would adding ``arc`` close a cycle?  (Is dst→…→src reachable?)"""
        src, dst = arc
        if src == dst:
            return True
        stack = [dst]
        seen = {dst}
        while stack:
            node = stack.pop()
            if node == src:
                return True
            for nxt in graph.successors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _search(self, graph: Digraph, pending: List[Bipath]) -> Optional[Digraph]:
        # Unit propagation: drop satisfied bipaths, force single-choice ones.
        while True:
            remaining: List[Bipath] = []
            forced: List[Arc] = []
            for bipath in pending:
                a1, a2 = bipath.first, bipath.second
                if graph.has_edge(*a1) or graph.has_edge(*a2):
                    continue
                ok1 = not self._creates_cycle(graph, a1)
                ok2 = not self._creates_cycle(graph, a2)
                if not ok1 and not ok2:
                    return None
                if ok1 and ok2:
                    remaining.append(bipath)
                else:
                    forced.append(a1 if ok1 else a2)
            if not forced:
                pending = remaining
                break
            for arc in forced:
                if self._creates_cycle(graph, arc):
                    return None
                graph.add_edge(*arc)
            pending = remaining

        if not pending:
            return graph

        bipath, rest = pending[0], pending[1:]
        for arc in bipath:
            if self._creates_cycle(graph, arc):
                continue
            branch = graph.copy()
            branch.add_edge(*arc)
            solution = self._search(branch, list(rest))
            if solution is not None:
                return solution
        return None


@dataclass(frozen=True)
class PolygraphRefutation:
    """Why a polygraph has no acyclic compatible digraph.

    ``kind`` is ``"arc-cycle"`` (the ``cycle`` field holds a cycle
    ``(a, b, ..., a)`` over fixed/forced arcs), ``"bipath-blocked"``
    (``bipath`` plus the ``first_cycle``/``second_cycle`` each side would
    close), or ``"search-exhausted"`` (refuted only by exhaustive search).
    """

    kind: str
    cycle: Tuple[str, ...] = ()
    bipath: Optional[Bipath] = None
    first_cycle: Tuple[str, ...] = ()
    second_cycle: Tuple[str, ...] = ()

    def nodes(self) -> Tuple[str, ...]:
        """All distinct nodes implicated, in first-seen order."""
        seen: Dict[str, None] = {}
        for group in (self.cycle, self.first_cycle, self.second_cycle):
            for node in group:
                seen.setdefault(node, None)
        if self.bipath is not None:
            for src, dst in self.bipath:
                seen.setdefault(src, None)
                seen.setdefault(dst, None)
        return tuple(seen)


def reader_polygraph(history: History, tid: str) -> Polygraph:
    """``P_H(t)`` (Definition 6) for transaction ``tid`` in ``history``.

    Nodes are ``LIVE_H(t)``; there is an arc ``t' -> t''`` whenever ``t''``
    reads some object from ``t'``; and a bipath ``((t',t''),(t''',t'))``
    whenever ``t'`` (in the live set, distinct from reader and writer)
    writes an object that ``t'''`` reads from ``t''``.
    """
    live = set(live_set(history, tid))
    poly = Polygraph(sorted(live))

    rf = history.reads_from
    # arcs: writer -> reader for each reads-from pair within the live set
    for (reader, obj), writer in rf.items():
        if reader in live and writer in live and writer != T0:
            poly.add_arc(writer, reader)

    # writers per object within the live set
    writers: Dict[str, Set[str]] = {}
    for op in history:
        if op.is_write and op.txn in live:
            writers.setdefault(op.obj or "", set()).add(op.txn)

    for (reader, obj), writer in rf.items():
        if reader not in live:
            continue
        for other in writers.get(obj, ()):  # t' writes obj
            if other in (reader, writer):
                continue
            if writer == T0:
                # reads the initial value: the other writer must come after
                # the reader — a forced arc, not a bipath.
                poly.add_arc(reader, other)
            else:
                poly.add_bipath(Bipath((other, writer), (reader, other)))
    return poly
