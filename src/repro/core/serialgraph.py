"""Conflict serialization graphs and the per-reader graph ``S_H(t)``.

Two graph constructions are provided:

* :func:`conflict_graph` — the classical serialization graph of a history
  (nodes = committed transactions, arcs = ordered wr/ww/rw conflicts); a
  history is conflict serializable iff this graph is acyclic.
* :func:`reader_serialization_graph` — ``S_H(t)`` of Definition 9: the
  graph restricted to ``LIVE_H(t)`` with arcs

  - X: ``t' -> t''`` when ``t''`` reads some object from ``t'``;
  - Y: ``t' -> t''`` when a write of ``t'`` precedes a write of ``t''`` on
    the same object;
  - Z: ``t' -> t''`` when a read of ``t'`` precedes a write of ``t''`` on
    the same object.

APPROX (:mod:`repro.core.approx`) accepts a history iff the update
sub-history's conflict graph and every reader's ``S_H(t_R)`` are acyclic.

The tiny digraph helper here is self-contained (no networkx dependency in
the core path) and also exposes topological orders, which double as
serialization-order certificates in tests and examples.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .model import History, T0
from .readsfrom import live_set

__all__ = [
    "Digraph",
    "conflict_graph",
    "is_conflict_serializable",
    "conflict_serialization_order",
    "reader_serialization_graph",
]


class Digraph:
    """A minimal directed graph with cycle detection and topological sort."""

    def __init__(self, nodes: Iterable[str] = ()):
        self._adj: Dict[str, Set[str]] = {n: set() for n in nodes}

    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        self._adj.setdefault(node, set())

    def add_edge(self, src: str, dst: str) -> None:
        if src == dst:
            return  # self-conflicts are not serialization constraints
        self.add_node(src)
        self.add_node(dst)
        self._adj[src].add(dst)

    def has_edge(self, src: str, dst: str) -> bool:
        return dst in self._adj.get(src, ())

    @property
    def nodes(self) -> FrozenSet[str]:
        return frozenset(self._adj)

    @property
    def edges(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(
            (src, dst) for src, dsts in self._adj.items() for dst in dsts
        )

    def successors(self, node: str) -> FrozenSet[str]:
        return frozenset(self._adj.get(node, ()))

    def copy(self) -> "Digraph":
        g = Digraph()
        g._adj = {n: set(d) for n, d in self._adj.items()}
        return g

    # ------------------------------------------------------------------
    def topological_order(self) -> Optional[List[str]]:
        """A topological order, or ``None`` if the graph has a cycle.

        Ties are broken by node name for determinism.
        """
        indegree: Dict[str, int] = {n: 0 for n in self._adj}
        for dsts in self._adj.values():
            for dst in dsts:
                indegree[dst] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = []
            for dst in self._adj[node]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    inserted.append(dst)
            if inserted:
                ready.extend(inserted)
                ready.sort()
        if len(order) != len(self._adj):
            return None
        return order

    def is_acyclic(self) -> bool:
        return self.topological_order() is not None

    def find_cycle(self) -> Optional[List[str]]:
        """Some cycle as a node list ``[a, b, ..., a]``, or ``None``."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self._adj}
        parent: Dict[str, Optional[str]] = {}

        for start in self._adj:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterable[str]]] = [(start, iter(sorted(self._adj[start])))]
            color[start] = GRAY
            parent[start] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self._adj[nxt]))))
                        advanced = True
                        break
                    if color[nxt] == GRAY:
                        # reconstruct cycle nxt -> ... -> node -> nxt
                        cycle = [nxt]
                        cur: Optional[str] = node
                        while cur is not None and cur != nxt:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.append(nxt)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
            # continue with next start
        return None


def _committed_update_aware_nodes(history: History, committed_only: bool) -> Set[str]:
    nodes: Set[str] = set()
    for txn in history.transactions.values():
        if committed_only and not txn.committed:
            continue
        nodes.add(txn.tid)
    return nodes


def conflict_graph(history: History, *, committed_only: bool = True) -> Digraph:
    """The serialization (conflict) graph of a history.

    Arcs for each ordered pair of conflicting operations by distinct
    transactions: write→read (wr), write→write (ww) and read→write (rw) on
    the same object.  By default only committed transactions participate,
    matching the usual definition over the committed projection.
    """
    nodes = _committed_update_aware_nodes(history, committed_only)
    graph = Digraph(sorted(nodes))
    per_object: Dict[str, List] = {}
    for op in history:
        if op.obj is not None and op.txn in nodes:
            per_object.setdefault(op.obj, []).append(op)
    for ops in per_object.values():
        for i, earlier in enumerate(ops):
            for later in ops[i + 1 :]:
                if later.txn == earlier.txn:
                    continue
                if earlier.is_write or later.is_write:
                    graph.add_edge(earlier.txn, later.txn)
    return graph


def is_conflict_serializable(history: History, *, committed_only: bool = True) -> bool:
    """True iff the history's conflict graph is acyclic."""
    return conflict_graph(history, committed_only=committed_only).is_acyclic()


def conflict_serialization_order(
    history: History, *, committed_only: bool = True
) -> Optional[List[str]]:
    """A serialization-order certificate, or ``None`` if not serializable."""
    return conflict_graph(history, committed_only=committed_only).topological_order()


def reader_serialization_graph(history: History, tid: str) -> Digraph:
    """``S_H(t)`` (Definition 9): the serialization graph over ``LIVE_H(t)``.

    The node set is ``LIVE_H(t)`` and the arcs are the X (write→read),
    Y (write→write) and Z (read→write) conflict arcs *between members of
    the live set*, ordered as in the history.
    """
    live = set(live_set(history, tid))
    graph = Digraph(sorted(live))
    per_object: Dict[str, List] = {}
    for op in history:
        if op.obj is not None and op.txn in live:
            per_object.setdefault(op.obj, []).append(op)
    for obj, ops in per_object.items():
        for i, earlier in enumerate(ops):
            for later in ops[i + 1 :]:
                if later.txn == earlier.txn:
                    continue
                if earlier.is_write and later.is_read:
                    # X arcs use reads-from, not mere precedence: the read
                    # must actually observe that write.  Precedence-based wr
                    # arcs are still sound for committed-writer histories,
                    # but the reads-from relation keeps S_H(t) faithful to
                    # Definition 9.
                    if history.reads_from.get((later.txn, obj)) == earlier.txn:
                        graph.add_edge(earlier.txn, later.txn)
                elif earlier.is_write and later.is_write:
                    graph.add_edge(earlier.txn, later.txn)
                elif earlier.is_read and later.is_write:
                    graph.add_edge(earlier.txn, later.txn)
    # X arcs to `tid` from writers it read from that precede any same-object
    # write arcs are already covered above; additionally wire reads-from
    # edges whose write predates the projection (t0 excluded by live_set).
    for (reader, _obj), writer in history.reads_from.items():
        if reader in live and writer in live and writer != T0:
            graph.add_edge(writer, reader)
    return graph
