"""Broadcast-cycle arithmetic, including the modulo timestamp window.

The control matrix stores broadcast-cycle numbers.  Storing absolute cycle
numbers would need unbounded timestamps, so the paper observes (Sec. 3.2.1)
that if ``max_cycles`` bounds the number of cycles any transaction spans,
entries can be kept modulo ``max_cycles + 1`` and compared with wrap-around
semantics.  The evaluation uses 8-bit timestamps.

:class:`UnboundedCycles` is the trivially correct arithmetic (absolute
ints); :class:`ModuloCycles` implements the wrap-around comparison.  Both
satisfy the same protocol so validators are parameterised by either; the
test suite checks they agree whenever the compared cycles lie within the
window, which is the regime the paper's protocols guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CycleArithmetic", "UnboundedCycles", "ModuloCycles"]


class CycleArithmetic:
    """Interface: encode absolute cycles, compare encoded timestamps."""

    #: number of bits one encoded timestamp occupies on the broadcast
    timestamp_bits: int

    def encode(self, cycle: int) -> int:
        raise NotImplementedError

    def encode_array(self, cycles: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` for numpy arrays (returns a copy)."""
        raise NotImplementedError

    def less(self, a: int, b: int, *, reference: int) -> bool:
        """Is encoded timestamp ``a`` < encoded ``b``?

        ``reference`` is the current (absolute) cycle at the client, which
        anchors wrap-around comparisons; unbounded arithmetic ignores it.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class UnboundedCycles(CycleArithmetic):
    """Absolute cycle numbers; timestamps conceptually unbounded.

    ``timestamp_bits`` still matters for overhead accounting: the paper's
    experiments charge 8 bits per matrix entry, which this class mirrors by
    default so that switching arithmetics never changes broadcast sizing.
    """

    timestamp_bits: int = 8

    def encode(self, cycle: int) -> int:
        return cycle

    def encode_array(self, cycles: np.ndarray) -> np.ndarray:
        return cycles.copy()

    def less(self, a: int, b: int, *, reference: int) -> bool:
        return a < b


@dataclass(frozen=True)
class ModuloCycles(CycleArithmetic):
    """Timestamps kept modulo ``window = 2**timestamp_bits``.

    The comparison ``less(a, b, reference=now)`` re-anchors both encoded
    values to the most recent absolute cycle ≤ ``now`` with the given
    residue, then compares.  This is correct provided both absolute values
    lie within ``window`` cycles of ``now`` — i.e. provided no transaction
    spans ``max_cycles = window - 1`` cycles, the paper's assumption.
    """

    timestamp_bits: int = 8

    @property
    def window(self) -> int:
        return 1 << self.timestamp_bits

    def encode(self, cycle: int) -> int:
        return cycle % self.window

    def encode_array(self, cycles: np.ndarray) -> np.ndarray:
        return cycles % self.window

    def _anchor(self, encoded: int, reference: int) -> int:
        """Most recent absolute cycle ≤ reference with this residue."""
        w = self.window
        base = reference - ((reference - encoded) % w)
        return base

    def less(self, a: int, b: int, *, reference: int) -> bool:
        return self._anchor(a, reference) < self._anchor(b, reference)
