"""Broadcast-cycle arithmetic, including the modulo timestamp window.

The control matrix stores broadcast-cycle numbers.  Storing absolute cycle
numbers would need unbounded timestamps, so the paper observes (Sec. 3.2.1)
that if ``max_cycles`` bounds the number of cycles any transaction spans,
entries can be kept modulo ``max_cycles + 1`` and compared with wrap-around
semantics.  The evaluation uses 8-bit timestamps.

:class:`UnboundedCycles` is the trivially correct arithmetic (absolute
ints); :class:`ModuloCycles` implements the wrap-around comparison.  Both
satisfy the same protocol so validators are parameterised by either; the
test suite checks they agree whenever the compared cycles lie within the
window, which is the regime the paper's protocols guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CycleArithmetic", "UnboundedCycles", "ModuloCycles"]


class CycleArithmetic:
    """Interface: encode absolute cycles, compare encoded timestamps."""

    #: number of bits one encoded timestamp occupies on the broadcast
    timestamp_bits: int

    def encode(self, cycle: int) -> int:
        raise NotImplementedError

    def encode_array(self, cycles: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` for numpy arrays (returns a copy)."""
        raise NotImplementedError

    def less(self, a: int, b: int, *, reference: int) -> bool:
        """Is encoded timestamp ``a`` < encoded ``b``?

        ``reference`` is the current (absolute) cycle at the client, which
        anchors wrap-around comparisons; unbounded arithmetic ignores it.
        """
        raise NotImplementedError

    def less_encoded_absolute(self, a: int, b: int, *, reference: int) -> bool:
        """Is encoded timestamp ``a`` < *absolute* cycle ``b``?

        The read condition compares a broadcast control entry (encoded on
        the wire) against a cycle number the client holds in absolute form
        (the cycle it performed a read in).  Encoding ``b`` and comparing
        two re-anchored residues loses information: when ``b`` lies outside
        the window around ``reference`` the anchor lands a full window away
        and the comparison silently flips.  Anchoring only the wire-format
        side against ``reference`` and comparing with the absolute value
        directly is exact whenever the *entry* is within the window of
        ``reference`` — the one assumption the paper actually grants.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class UnboundedCycles(CycleArithmetic):
    """Absolute cycle numbers; timestamps conceptually unbounded.

    ``timestamp_bits`` still matters for overhead accounting: the paper's
    experiments charge 8 bits per matrix entry, which this class mirrors by
    default so that switching arithmetics never changes broadcast sizing.
    """

    timestamp_bits: int = 8

    def encode(self, cycle: int) -> int:
        return cycle

    def encode_array(self, cycles: np.ndarray) -> np.ndarray:
        return cycles.copy()

    def less(self, a: int, b: int, *, reference: int) -> bool:
        return a < b

    def less_encoded_absolute(self, a: int, b: int, *, reference: int) -> bool:
        return a < b


@dataclass(frozen=True)
class ModuloCycles(CycleArithmetic):
    """Timestamps kept modulo ``window = 2**timestamp_bits``.

    The comparison ``less(a, b, reference=now)`` re-anchors both encoded
    values to the most recent absolute cycle ≤ ``now`` with the given
    residue, then compares.  This is correct provided both absolute values
    lie within ``window`` cycles of ``now`` — i.e. provided no transaction
    spans ``max_cycles = window - 1`` cycles, the paper's assumption.
    """

    timestamp_bits: int = 8

    @property
    def window(self) -> int:
        return 1 << self.timestamp_bits

    def encode(self, cycle: int) -> int:
        return cycle % self.window

    def encode_array(self, cycles: np.ndarray) -> np.ndarray:
        return cycles % self.window

    def _anchor(self, encoded: int, reference: int) -> int:
        """Most recent absolute cycle ≤ reference with this residue."""
        w = self.window
        base = reference - ((reference - encoded) % w)
        return base

    def less(self, a: int, b: int, *, reference: int) -> bool:
        return self._anchor(a, reference) < self._anchor(b, reference)

    def less_encoded_absolute(self, a: int, b: int, *, reference: int) -> bool:
        """Anchored wire entry vs. an absolute cycle the client holds.

        Re-anchoring ``b``'s residue (what :meth:`less` would do) is wrong
        twice over once ``b`` strays outside the window of ``reference``:

        * ``b > reference`` (a retained cached read postdating the current
          snapshot) anchors a full window *back*, rejecting reads the
          unbounded arithmetic accepts;
        * ``b <= reference - window`` (a transaction spanning the wrap gap)
          anchors back *onto* recent cycles, silently accepting reads the
          unbounded arithmetic rejects — an unsound validation.

        Keeping ``b`` absolute removes both failure modes; the comparison
        is then exact whenever the *entry* ``a`` is within ``window``
        cycles of ``reference``, which holds for every control entry a
        client consults while it obeys the paper's ``max_cycles`` bound
        (the client-side staleness guard enforces exactly that bound on
        rejoin after a doze).
        """
        return self._anchor(a, reference) < b
