"""Independently checkable serialization certificates.

APPROX and the protocols are graph-theoretic; a sceptical consumer may
want *witnesses* rather than verdicts.  This module extracts them and —
crucially — verifies them by a completely different route (serial
replay), so the test suite can cross-examine the graph machinery:

* :func:`update_certificate` — a serial order of the committed update
  transactions such that replaying them serially reproduces every read
  (reads-from) and the final database state;
* :func:`reader_certificate` — per read-only transaction ``t_R``, a
  serial order of ``LIVE(t_R)`` ending in ``t_R`` under which ``t_R``
  observes exactly the versions it observed in the history;
* :func:`verify_update_certificate` / :func:`verify_reader_certificate`
  — the replay checkers (no graphs involved).

``certify_history`` bundles everything for an APPROX-accepted history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .approx import approx_report
from .model import History, T0
from .readsfrom import live_set
from .serialgraph import reader_serialization_graph

__all__ = [
    "Certificate",
    "update_certificate",
    "reader_certificate",
    "verify_update_certificate",
    "verify_reader_certificate",
    "certify_history",
    "CertificationError",
]


class CertificationError(ValueError):
    """The history is not APPROX-accepted; no certificate exists."""


@dataclass(frozen=True)
class Certificate:
    """All witnesses for one history."""

    update_order: Tuple[str, ...]
    reader_orders: Dict[str, Tuple[str, ...]]


def _serial_replay(
    history: History, order: Tuple[str, ...]
) -> Tuple[Dict[Tuple[str, str], str], Dict[str, str]]:
    """Reads-from and final writes of executing ``order`` serially."""
    txns = history.transactions
    last_writer: Dict[str, str] = {}
    reads_from: Dict[Tuple[str, str], str] = {}
    for tid in order:
        txn = txns[tid]
        for obj in sorted(txn.read_set):
            reads_from[(tid, obj)] = last_writer.get(obj, T0)
        for obj in sorted(txn.write_set):
            last_writer[obj] = tid
    return reads_from, last_writer


def update_certificate(history: History) -> Tuple[str, ...]:
    """A serialization order for the committed update transactions."""
    report = approx_report(history)
    if report.update_serialization_order is None:
        raise CertificationError("update sub-history is not conflict serializable")
    return report.update_serialization_order


def verify_update_certificate(history: History, order: Tuple[str, ...]) -> bool:
    """Serial replay of ``order`` must reproduce the update sub-history's
    reads-from relation and final writes — checked with no graph code."""
    update = history.committed_projection().update_subhistory()
    if sorted(order) != sorted(update.transaction_ids):
        return False
    replay_rf, replay_final = _serial_replay(update, order)
    if replay_rf != update.reads_from:
        return False
    actual_final: Dict[str, str] = {}
    for op in update:
        if op.is_write:
            actual_final[op.obj or ""] = op.txn
    return replay_final == actual_final


def reader_certificate(history: History, reader: str) -> Tuple[str, ...]:
    """A serial order of ``LIVE(reader)`` witnessing the reader's
    consistency (reader placed by the topological sort of S(t_R))."""
    committed = history.committed_projection()
    graph = reader_serialization_graph(committed, reader)
    order = graph.topological_order()
    if order is None:
        raise CertificationError(f"S({reader}) is cyclic: no witness exists")
    return tuple(order)


def verify_reader_certificate(
    history: History, reader: str, order: Tuple[str, ...]
) -> bool:
    """Replay check: under the serial order, the reader and every live
    update transaction observe exactly the writers they observed in the
    history."""
    committed = history.committed_projection()
    live = live_set(committed, reader)
    if sorted(order) != sorted(live):
        return False
    projection = committed.projection(order)
    replay_rf, _final = _serial_replay(projection, tuple(order))
    for (tid, obj), writer in projection.reads_from.items():
        # live transactions read either from live writers or from t0 /
        # outside-live writers; replay can only be checked for reads whose
        # writer is inside the projection (others read "initial" there)
        expected = writer if writer in live or writer == T0 else None
        got = replay_rf.get((tid, obj))
        if expected is None:
            continue
        if got != expected:
            return False
    return True


def certify_history(history: History) -> Certificate:
    """Certificates for an APPROX-accepted history (raises otherwise)."""
    report = approx_report(history)
    if not report.accepted:
        raise CertificationError(
            "history rejected by APPROX; rejected readers: "
            + ", ".join(report.rejected_readers)
        )
    orders = {
        reader: reader_certificate(history, reader)
        for reader in history.committed_projection().read_only_transactions()
    }
    assert report.update_serialization_order is not None
    return Certificate(report.update_serialization_order, orders)
