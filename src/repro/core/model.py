"""Formal model of transactions and histories (paper Appendix A).

A *history* is a totally ordered sequence of operation events — reads,
writes, commits and aborts — produced by a set of transactions.  The model
follows the conventions of the paper:

* every history implicitly contains an initial transaction ``t0`` that
  writes every object accessed by any transaction and reads nothing;
* a transaction reads or writes any given object at most once (helpers
  enforce this where the theory requires it, but the simulator-facing code
  path tolerates repetition);
* a read observes the value produced by the *latest preceding write* on the
  same object in the history (the paper's histories are over committed
  update transactions, so this coincides with committed-value semantics).

The classes here are deliberately small and immutable-ish: the analysis
modules (:mod:`repro.core.readsfrom`, :mod:`repro.core.serialgraph`,
:mod:`repro.core.polygraph`, ...) are pure functions over a
:class:`History`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "T0",
    "OpKind",
    "Operation",
    "read",
    "write",
    "commit",
    "abort",
    "Transaction",
    "History",
    "HistoryError",
    "parse_history",
]

#: Identifier of the conventional initial transaction that writes every
#: object before the history begins (paper Appendix A).
T0 = "t0"


class HistoryError(ValueError):
    """Raised when a history is malformed (e.g. operation after commit)."""


class OpKind(enum.Enum):
    """The four event kinds a history may contain."""

    READ = "r"
    WRITE = "w"
    COMMIT = "c"
    ABORT = "a"


@dataclass(frozen=True)
class Operation:
    """One event in a history.

    ``obj`` is ``None`` exactly for commit/abort events.  ``cycle`` is an
    optional broadcast-cycle annotation used by the broadcast protocols: for
    a read it records the cycle whose committed snapshot was observed, for a
    commit it records the cycle during which the commit happened.
    """

    kind: OpKind
    txn: str
    obj: Optional[str] = None
    cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind in (OpKind.READ, OpKind.WRITE) and self.obj is None:
            raise HistoryError(f"{self.kind.value} operation requires an object")
        if self.kind in (OpKind.COMMIT, OpKind.ABORT) and self.obj is not None:
            raise HistoryError(f"{self.kind.value} operation takes no object")

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_commit(self) -> bool:
        return self.kind is OpKind.COMMIT

    @property
    def is_abort(self) -> bool:
        return self.kind is OpKind.ABORT

    def __str__(self) -> str:
        if self.obj is None:
            return f"{self.kind.value}_{self.txn}"
        suffix = f"@{self.cycle}" if self.cycle is not None else ""
        return f"{self.kind.value}_{self.txn}[{self.obj}]{suffix}"


def read(txn: str, obj: str, cycle: Optional[int] = None) -> Operation:
    """Convenience constructor for a read event."""
    return Operation(OpKind.READ, txn, obj, cycle)


def write(txn: str, obj: str, cycle: Optional[int] = None) -> Operation:
    """Convenience constructor for a write event."""
    return Operation(OpKind.WRITE, txn, obj, cycle)


def commit(txn: str, cycle: Optional[int] = None) -> Operation:
    """Convenience constructor for a commit event."""
    return Operation(OpKind.COMMIT, txn, None, cycle)


def abort(txn: str) -> Operation:
    """Convenience constructor for an abort event."""
    return Operation(OpKind.ABORT, txn)


@dataclass(frozen=True)
class Transaction:
    """Static view of one transaction extracted from a history."""

    tid: str
    read_set: FrozenSet[str]
    write_set: FrozenSet[str]
    committed: bool
    aborted: bool
    commit_cycle: Optional[int] = None

    @property
    def is_read_only(self) -> bool:
        """A transaction performing no write operation (paper Sec. 3.1)."""
        return not self.write_set

    @property
    def is_update(self) -> bool:
        """A transaction performing at least one write (H_update member)."""
        return bool(self.write_set)


class History:
    """A totally ordered sequence of operations with analysis helpers.

    Instances are conceptually immutable: build one from a sequence of
    :class:`Operation` (or via :func:`parse_history`), then query it.  All
    derived structures are computed lazily and cached.
    """

    def __init__(self, operations: Iterable[Operation], *, strict: bool = True):
        self._ops: Tuple[Operation, ...] = tuple(operations)
        self._strict = strict
        self._txns: Optional[Dict[str, Transaction]] = None
        self._reads_from: Optional[Dict[Tuple[str, str], str]] = None
        if strict:
            self._validate()

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> Operation:
        return self._ops[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, History) and self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:
        return f"History({' '.join(str(op) for op in self._ops)})"

    @property
    def operations(self) -> Tuple[Operation, ...]:
        return self._ops

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        finished: Set[str] = set()
        seen_reads: Set[Tuple[str, str]] = set()
        seen_writes: Set[Tuple[str, str]] = set()
        for op in self._ops:
            if op.txn == T0:
                raise HistoryError(
                    f"operations of the implicit initial transaction {T0!r} "
                    "must not appear explicitly"
                )
            if op.txn in finished:
                raise HistoryError(f"operation {op} after commit/abort of {op.txn}")
            if op.is_commit or op.is_abort:
                finished.add(op.txn)
            elif op.is_read:
                key = (op.txn, op.obj or "")
                if key in seen_reads:
                    raise HistoryError(f"{op.txn} reads {op.obj} more than once")
                seen_reads.add(key)
            elif op.is_write:
                key = (op.txn, op.obj or "")
                if key in seen_writes:
                    raise HistoryError(f"{op.txn} writes {op.obj} more than once")
                seen_writes.add(key)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> Dict[str, Transaction]:
        """Mapping transaction id -> :class:`Transaction` (excluding t0)."""
        if self._txns is None:
            reads: Dict[str, Set[str]] = {}
            writes: Dict[str, Set[str]] = {}
            committed: Set[str] = set()
            aborted: Set[str] = set()
            commit_cycles: Dict[str, int] = {}
            order: List[str] = []
            for op in self._ops:
                if op.txn not in reads:
                    reads[op.txn] = set()
                    writes[op.txn] = set()
                    order.append(op.txn)
                if op.is_read:
                    reads[op.txn].add(op.obj or "")
                elif op.is_write:
                    writes[op.txn].add(op.obj or "")
                elif op.is_commit:
                    committed.add(op.txn)
                    if op.cycle is not None:
                        commit_cycles[op.txn] = op.cycle
                elif op.is_abort:
                    aborted.add(op.txn)
            self._txns = {
                tid: Transaction(
                    tid,
                    frozenset(reads[tid]),
                    frozenset(writes[tid]),
                    tid in committed,
                    tid in aborted,
                    commit_cycles.get(tid),
                )
                for tid in order
            }
        return self._txns

    @property
    def objects(self) -> FrozenSet[str]:
        """All objects read or written anywhere in the history."""
        objs: Set[str] = set()
        for op in self._ops:
            if op.obj is not None:
                objs.add(op.obj)
        return frozenset(objs)

    @property
    def transaction_ids(self) -> Tuple[str, ...]:
        return tuple(self.transactions)

    def transaction(self, tid: str) -> Transaction:
        if tid == T0:
            return Transaction(T0, frozenset(), self.objects, True, False, 0)
        return self.transactions[tid]

    def operations_of(self, tid: str) -> Tuple[Operation, ...]:
        return tuple(op for op in self._ops if op.txn == tid)

    # ------------------------------------------------------------------
    # reads-from (Definition 1)
    # ------------------------------------------------------------------
    @property
    def reads_from(self) -> Dict[Tuple[str, str], str]:
        """READS_FROM as a map ``(reader, obj) -> writer``.

        The writer of the latest write on ``obj`` preceding the read, or
        :data:`T0` when no transaction wrote ``obj`` earlier.  Writes by
        transactions that aborted *before* the read are skipped, matching
        committed-value semantics for histories that interleave aborts.
        """
        if self._reads_from is None:
            rf: Dict[Tuple[str, str], str] = {}
            abort_pos: Dict[str, int] = {}
            for idx, op in enumerate(self._ops):
                if op.is_abort:
                    abort_pos[op.txn] = idx
            last_writer: Dict[str, List[Tuple[int, str]]] = {}
            for idx, op in enumerate(self._ops):
                if op.is_write:
                    last_writer.setdefault(op.obj or "", []).append((idx, op.txn))
                elif op.is_read:
                    writer = T0
                    for widx, wtxn in reversed(last_writer.get(op.obj or "", [])):
                        if wtxn == op.txn:
                            continue  # own earlier write: skip (model forbids anyway)
                        if wtxn in abort_pos and abort_pos[wtxn] < idx:
                            continue
                        writer = wtxn
                        break
                    rf[(op.txn, op.obj or "")] = writer
            self._reads_from = rf
        return self._reads_from

    def writer_of(self, reader: str, obj: str) -> str:
        """The transaction whose write ``reader`` observed on ``obj``."""
        return self.reads_from[(reader, obj)]

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------
    def committed_projection(self) -> "History":
        """The history restricted to committed transactions."""
        committed = {t.tid for t in self.transactions.values() if t.committed}
        return History(
            (op for op in self._ops if op.txn in committed), strict=self._strict
        )

    def update_subhistory(self) -> "History":
        """H_update: operations of transactions performing a write (Sec. 3.1)."""
        updaters = {t.tid for t in self.transactions.values() if t.is_update}
        return History(
            (op for op in self._ops if op.txn in updaters), strict=self._strict
        )

    def projection(self, tids: Iterable[str]) -> "History":
        """The history restricted to the given transaction ids."""
        keep = set(tids)
        return History((op for op in self._ops if op.txn in keep), strict=self._strict)

    def read_only_transactions(self) -> Tuple[str, ...]:
        return tuple(
            t.tid for t in self.transactions.values() if t.is_read_only
        )

    def update_transactions(self) -> Tuple[str, ...]:
        return tuple(t.tid for t in self.transactions.values() if t.is_update)

    # ------------------------------------------------------------------
    # serial histories
    # ------------------------------------------------------------------
    def is_serial(self) -> bool:
        """True iff transactions execute one after another (no interleaving)."""
        seen: Set[str] = set()
        current: Optional[str] = None
        for op in self._ops:
            if op.txn != current:
                if op.txn in seen:
                    return False
                seen.add(op.txn)
                current = op.txn
        return True

    @staticmethod
    def serial(transactions: Sequence[Sequence[Operation]]) -> "History":
        """Build a serial history from per-transaction operation blocks."""
        return History(itertools.chain.from_iterable(transactions))

    # ------------------------------------------------------------------
    def to_notation(self) -> str:
        """The paper-style compact notation, re-parseable by
        :func:`parse_history` (``parse_history(h.to_notation()) == h``)."""
        tokens: List[str] = []
        for op in self._ops:
            tid = op.txn[1:] if op.txn.startswith("t") and op.txn[1:].isdigit() else op.txn
            if op.obj is not None:
                token = f"{op.kind.value}{tid}[{op.obj}]"
            else:
                token = f"{op.kind.value}{tid}"
            if op.cycle is not None:
                token += f"@{op.cycle}"
            tokens.append(token)
        return " ".join(tokens)


def parse_history(text: str) -> History:
    """Parse the paper's compact notation into a :class:`History`.

    Tokens are whitespace separated; ``r1[x]`` / ``w2[y]`` are reads and
    writes, ``c1`` / ``a2`` commits and aborts.  An optional ``@cycle``
    suffix annotates the broadcast cycle, e.g. ``r1[x]@3`` or ``c2@5``.

    >>> h = parse_history("r1[IBM] w2[IBM] c2 r3[IBM] r3[Sun] w4[Sun] c4 r1[Sun]")
    >>> len(h)
    8
    """
    ops: List[Operation] = []
    for token in text.split():
        cycle: Optional[int] = None
        if "@" in token:
            token, cycle_text = token.rsplit("@", 1)
            cycle = int(cycle_text)
        kind_char = token[0]
        rest = token[1:]
        if kind_char in ("r", "w"):
            if "[" not in rest or not rest.endswith("]"):
                raise HistoryError(f"malformed operation token {token!r}")
            tid, obj = rest[:-1].split("[", 1)
            op_kind = OpKind.READ if kind_char == "r" else OpKind.WRITE
            ops.append(Operation(op_kind, f"t{tid}" if tid.isdigit() else tid, obj, cycle))
        elif kind_char in ("c", "a"):
            tid = rest
            op_kind = OpKind.COMMIT if kind_char == "c" else OpKind.ABORT
            ops.append(
                Operation(op_kind, f"t{tid}" if tid.isdigit() else tid, None, cycle)
            )
        else:
            raise HistoryError(f"unknown operation token {token!r}")
    return History(ops)
