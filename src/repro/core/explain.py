"""Human-readable diagnosis of histories against the paper's criteria.

:func:`explain_history` walks the Figure 1 lattice on a history and
produces a narrative a developer can read: which criteria hold, the
serialization-order certificates when they do, and concrete culprits
(conflict cycles, rejected readers, their live sets) when they don't.
Used by examples and handy in a REPL::

    >>> from repro.core import parse_history
    >>> from repro.core.explain import explain_history
    >>> h = parse_history("r1[IBM] w2[IBM] c2 r3[IBM] r3[Sun] w4[Sun] c4 r1[Sun] c1 c3")
    >>> print(explain_history(h))          # doctest: +SKIP
"""

from __future__ import annotations

import io
from typing import List, Optional

from .approx import approx_report
from .legality import legality_report
from .model import History
from .readsfrom import live_set
from .serialgraph import conflict_graph
from typing import Sequence

from .viewser import ViewSerializabilityLimitError

__all__ = ["explain_history"]


def _fmt_order(order: "Sequence[str]") -> str:
    return " ; ".join(order)


def explain_history(history: History, *, exact: bool = True) -> str:
    """A multi-line report on the history's standing in the criteria
    lattice.  ``exact=False`` skips the (potentially exponential)
    view-serializability/polygraph legality check."""
    out = io.StringIO()
    committed = history.committed_projection()
    out.write(f"history: {history}\n")
    readers = committed.read_only_transactions()
    updaters = committed.update_transactions()
    out.write(
        f"committed transactions: {len(committed.transaction_ids)} "
        f"({len(updaters)} update, {len(readers)} read-only)\n"
    )

    # 1. serializability of the whole history
    whole = conflict_graph(committed)
    order = whole.topological_order()
    if order is not None:
        out.write(f"conflict serializable: yes — order {_fmt_order(order)}\n")
    else:
        cycle = whole.find_cycle() or []
        out.write(
            "conflict serializable: NO — cycle "
            + " -> ".join(cycle)
            + "\n"
        )

    # 2. APPROX
    report = approx_report(history)
    if report.update_serialization_order is None:
        out.write(
            "APPROX: rejected — the update sub-history itself is not "
            "conflict serializable"
        )
        if report.update_cycle:
            out.write(f" (cycle {' -> '.join(report.update_cycle)})")
        out.write("\n")
    else:
        out.write(
            "update sub-history serializable: order "
            f"{_fmt_order(report.update_serialization_order)}\n"
        )
        for reader, ok in sorted(report.reader_verdicts.items()):
            live = sorted(live_set(committed, reader) - {reader})
            if ok:
                out.write(
                    f"  reader {reader}: consistent with the updates it "
                    f"depends on {live}\n"
                )
            else:
                cycle = report.reader_cycles.get(reader, ())
                out.write(
                    f"  reader {reader}: INCONSISTENT — S({reader}) has "
                    f"cycle {' -> '.join(cycle)} within {live}\n"
                )
        verdict = "accepted" if report.accepted else "rejected"
        out.write(f"APPROX: {verdict}\n")

    # 3. exact legality (Theorem 3)
    if exact:
        try:
            legal = legality_report(history)
        except ViewSerializabilityLimitError:
            out.write("legal (update consistent): too large for the exact check\n")
        else:
            if legal.legal:
                out.write("legal (update consistent): yes\n")
                if not report.accepted:
                    out.write(
                        "  note: legal but APPROX-rejected — this history "
                        "sits in the gap Theorem 6 proves non-empty\n"
                    )
            elif not legal.update_view_serializable:
                out.write(
                    "legal (update consistent): NO — updates not view "
                    "serializable\n"
                )
            else:
                out.write(
                    "legal (update consistent): NO — readers "
                    f"{', '.join(legal.rejected_readers)} have cyclic "
                    "polygraphs\n"
                )
    return out.getvalue()
