"""NP-completeness machinery of Appendix B.

The paper proves that deciding legality is NP-complete even when the
update sub-history is serial (Theorem 5), by the chain

    3SAT  →  "satisfiable with x = false"  →  non-circular formula
          →  polygraph P_φ  →  polygraph P'_φ (add reader t_R)
          →  history H with H_update serial and P_H(t_R) = P'_φ.

This module implements every step so the reduction is executable:

* :class:`CNF` — small CNF representation with a DPLL satisfiability
  check (instances produced by the reduction are tiny);
* :func:`add_universal_literal` / :func:`to_three_sat` /
  :func:`make_non_circular` — the formula transformations (ψ → ψ' → ψ'''
  → φ), preserving "ψ satisfiable ⇔ φ satisfiable with x false";
* :func:`polygraph_from_noncircular` — the variable/clause gadget
  construction used by Lemma 8 (choice arcs encode truth values; a clause
  whose literals are all false closes a cycle);
* :func:`reduction_polygraph` — P'_φ of Theorem 5 (reader node, arcs from
  every node to the reader, and the x-forcing bipath);
* :func:`history_from_reduction` — the serial-update history whose reader
  polygraph is exactly P'_φ, so ``is_legal(H)`` decides satisfiability of
  the original ψ.

The integration tests drive the full pipeline both ways (satisfiable and
unsatisfiable ψ) and check ``reader_polygraph(H, t_R) == P'_φ`` node for
node, arc for arc, bipath for bipath.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .model import History, Operation, commit, read, write
from .polygraph import Bipath, Polygraph

__all__ = [
    "Literal",
    "CNF",
    "add_universal_literal",
    "to_three_sat",
    "make_non_circular",
    "polygraph_from_noncircular",
    "assignment_digraph_arcs",
    "reduction_polygraph",
    "history_from_reduction",
    "ReductionArtifacts",
    "reduce_sat_to_history",
]


@dataclass(frozen=True)
class Literal:
    """A variable or its negation."""

    var: str
    positive: bool = True

    def negate(self) -> "Literal":
        return Literal(self.var, not self.positive)

    def value_under(self, assignment: Dict[str, bool]) -> bool:
        return assignment[self.var] == self.positive

    def __str__(self) -> str:
        return self.var if self.positive else f"¬{self.var}"


Clause = Tuple[Literal, ...]


class CNF:
    """A boolean formula in conjunctive normal form."""

    def __init__(self, clauses: Iterable[Sequence[Literal]]):
        self.clauses: Tuple[Clause, ...] = tuple(tuple(c) for c in clauses)
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause makes the formula trivially false")

    # ------------------------------------------------------------------
    @property
    def variables(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for clause in self.clauses:
            for lit in clause:
                if lit.var not in seen:
                    seen.append(lit.var)
        return tuple(seen)

    def is_mixed(self, clause: Clause) -> bool:
        """Does the clause contain both positive and negated literals?"""
        return any(l.positive for l in clause) and any(not l.positive for l in clause)

    def is_non_circular(self) -> bool:
        """At most one occurrence of each variable lies in a mixed clause."""
        mixed_occurrences: Dict[str, int] = {}
        for clause in self.clauses:
            if self.is_mixed(clause):
                for lit in clause:
                    mixed_occurrences[lit.var] = mixed_occurrences.get(lit.var, 0) + 1
        return all(count <= 1 for count in mixed_occurrences.values())

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return all(
            any(lit.value_under(assignment) for lit in clause)
            for clause in self.clauses
        )

    # ------------------------------------------------------------------
    def satisfying_assignment(
        self, forced: Optional[Dict[str, bool]] = None
    ) -> Optional[Dict[str, bool]]:
        """DPLL search for a satisfying assignment extending ``forced``."""
        assignment: Dict[str, bool] = dict(forced or {})
        clauses = [list(c) for c in self.clauses]
        result = self._dpll(clauses, assignment)
        if result is None:
            return None
        # give unconstrained variables a definite value
        for var in self.variables:
            result.setdefault(var, False)
        return result

    def is_satisfiable(self, forced: Optional[Dict[str, bool]] = None) -> bool:
        return self.satisfying_assignment(forced) is not None

    def _dpll(
        self, clauses: List[List[Literal]], assignment: Dict[str, bool]
    ) -> Optional[Dict[str, bool]]:
        # simplify under current assignment
        simplified: List[List[Literal]] = []
        for clause in clauses:
            kept: List[Literal] = []
            satisfied = False
            for lit in clause:
                if lit.var in assignment:
                    if lit.value_under(assignment):
                        satisfied = True
                        break
                else:
                    kept.append(lit)
            if satisfied:
                continue
            if not kept:
                return None  # clause falsified
            simplified.append(kept)
        if not simplified:
            return dict(assignment)
        # unit propagation
        for clause in simplified:
            if len(clause) == 1:
                lit = clause[0]
                new_assignment = dict(assignment)
                new_assignment[lit.var] = lit.positive
                return self._dpll(simplified, new_assignment)
        # branch on the first unassigned variable
        var = simplified[0][0].var
        for value in (True, False):
            new_assignment = dict(assignment)
            new_assignment[var] = value
            result = self._dpll(simplified, new_assignment)
            if result is not None:
                return result
        return None

    def __repr__(self) -> str:
        body = " ∧ ".join(
            "(" + " ∨ ".join(str(l) for l in clause) + ")" for clause in self.clauses
        )
        return f"CNF[{body}]"


# ----------------------------------------------------------------------
# formula transformations (Theorem 5 proof, step by step)
# ----------------------------------------------------------------------

def add_universal_literal(cnf: CNF, var: str = "x*") -> CNF:
    """ψ → ψ': add a fresh positive literal ``var`` to every clause.

    ψ' is satisfiable (set ``var`` true) and ψ is satisfiable iff ψ' is
    satisfiable with ``var`` false.
    """
    if var in cnf.variables:
        raise ValueError(f"{var!r} already occurs in the formula")
    lit = Literal(var)
    return CNF([tuple(clause) + (lit,) for clause in cnf.clauses])


def to_three_sat(cnf: CNF, prefix: str = "s") -> CNF:
    """Rewrite so every clause has at most three literals.

    A clause ``(a ∨ b ∨ c ∨ d ∨ ...)`` becomes
    ``(a ∨ b ∨ z) ∧ (¬z ∨ c ∨ d ∨ ...)`` recursively, with fresh ``z``s.
    Preserves satisfiability (with or without forced values on original
    variables).
    """
    fresh = itertools.count()
    out: List[Clause] = []

    def split(clause: Clause) -> None:
        if len(clause) <= 3:
            out.append(clause)
            return
        z = Literal(f"{prefix}{next(fresh)}")
        out.append((clause[0], clause[1], z))
        split((z.negate(),) + clause[2:])

    for clause in cnf.clauses:
        split(clause)
    return CNF(out)


def make_non_circular(cnf: CNF, prefix: str = "d") -> CNF:
    """ψ''' → φ: make the formula non-circular.

    For each variable ``z`` with occurrences beyond the first, occurrence
    ``k`` is replaced by a fresh variable ``d`` constrained to ``d ≡ ¬z``
    via the two *non-mixed* clauses ``(z ∨ d)`` and ``(¬z ∨ ¬d)``; the
    replaced literal's polarity flips accordingly.  Each variable then
    occurs at most once in a mixed clause, and satisfiability (with forced
    values on original variables) is preserved.
    """
    fresh = itertools.count()
    counts: Dict[str, int] = {}
    new_clauses: List[List[Literal]] = []
    equivalences: List[Clause] = []
    for clause in cnf.clauses:
        rewritten: List[Literal] = []
        for lit in clause:
            counts[lit.var] = counts.get(lit.var, 0) + 1
            if counts[lit.var] == 1:
                rewritten.append(lit)
            else:
                copy = Literal(f"{prefix}{next(fresh)}")
                # copy ≡ ¬original  ⇒  original literal ℓ becomes ¬-flipped copy
                equivalences.append((Literal(lit.var), Literal(copy.var)))
                equivalences.append(
                    (Literal(lit.var, False), Literal(copy.var, False))
                )
                rewritten.append(Literal(copy.var, not lit.positive))
        new_clauses.append(rewritten)
    return CNF([tuple(c) for c in new_clauses] + equivalences)


# ----------------------------------------------------------------------
# polygraph gadgets (Lemma 8 construction)
# ----------------------------------------------------------------------

def _var_nodes(var: str) -> Tuple[str, str, str]:
    return (f"a({var})", f"b({var})", f"c({var})")


def polygraph_from_noncircular(cnf: CNF) -> Polygraph:
    """The polygraph ``P_φ`` associated with a non-circular formula.

    Per variable ``v``: nodes ``a(v), b(v), c(v)``, arc ``a→b`` and the
    choice bipath {``c→a`` (v true), ``b→c`` (v false)}.

    Per clause ``C_i`` with literals ``λ_i1..λ_ik``: nodes ``y_im, z_im``,
    arcs ``y_im → z_i(m+1 mod k)``, and per literal the choice bipath
    {``z_im → y_im`` (literal false), literal-true arc} where the
    literal-true arc is ``y_im → b(v)`` for a positive literal (with fixed
    arcs ``b(v) → z_im`` and ``c(v) → y_im``) and ``a(v) → z_im`` for a
    negative literal (with fixed arcs ``y_im → a(v)`` and ``z_im → c(v)``).

    The compatible digraphs then encode truth assignments: the polygraph
    admits an acyclic compatible digraph containing ``b(v)→c(v)`` iff the
    formula is satisfiable with ``v`` false (Lemma 8).
    """
    if not cnf.is_non_circular():
        raise ValueError("construction requires a non-circular formula")
    poly = Polygraph()
    for var in cnf.variables:
        a, b, c = _var_nodes(var)
        poly.add_arc(a, b)
        poly.add_bipath(Bipath((c, a), (b, c)))
    for ci, clause in enumerate(cnf.clauses):
        k = len(clause)
        for m, lit in enumerate(clause):
            y = f"y({ci},{m})"
            z = f"z({ci},{m})"
            z_next = f"z({ci},{(m + 1) % k})"
            poly.add_arc(y, z_next)
            a, b, c = _var_nodes(lit.var)
            if lit.positive:
                poly.add_arc(b, z)
                poly.add_arc(c, y)
                poly.add_bipath(Bipath((z, y), (y, b)))
            else:
                poly.add_arc(y, a)
                poly.add_arc(z, c)
                poly.add_bipath(Bipath((z, y), (a, z)))
    return poly


def assignment_digraph_arcs(
    cnf: CNF, assignment: Dict[str, bool]
) -> List[Tuple[str, str]]:
    """Lemma 9: bipath choices realising a satisfying assignment.

    Returns the optional arcs to add to ``A`` so the resulting digraph is
    acyclic: the truth arc per variable, the false arc per false literal,
    and the literal-true arc per true literal.
    """
    if not cnf.evaluate(assignment):
        raise ValueError("assignment does not satisfy the formula")
    arcs: List[Tuple[str, str]] = []
    for var in cnf.variables:
        a, b, c = _var_nodes(var)
        arcs.append((c, a) if assignment[var] else (b, c))
    for ci, clause in enumerate(cnf.clauses):
        for m, lit in enumerate(clause):
            y = f"y({ci},{m})"
            z = f"z({ci},{m})"
            a, b, c = _var_nodes(lit.var)
            if lit.value_under(assignment):
                arcs.append((y, b) if lit.positive else ((a, z)))
            else:
                arcs.append((z, y))
    return arcs


# ----------------------------------------------------------------------
# Theorem 5: reader polygraph and history construction
# ----------------------------------------------------------------------

READER = "tR"


def reduction_polygraph(poly: Polygraph, forced_var: str) -> Polygraph:
    """``P'_φ``: add reader ``tR``, arcs ``y → tR`` for every node, and the
    forcing bipath {``tR → a(x)``, ``a(x) → c(x)``} whose only viable choice
    pins ``b(x) → c(x)`` (i.e. ``x`` false) in any acyclic digraph."""
    a, _b, c = _var_nodes(forced_var)
    out = Polygraph(poly.nodes, poly.arcs, poly.bipaths)
    for node in sorted(poly.nodes):
        out.add_arc(node, READER)
    out.add_bipath(Bipath((READER, a), (a, c)))
    return out


def _arc_object(src: str, dst: str) -> str:
    return f"y[{src}->{dst}]"


@dataclass(frozen=True)
class ReductionArtifacts:
    """Everything produced by :func:`reduce_sat_to_history`."""

    phi: CNF
    polygraph: Polygraph
    reader_polygraph_: Polygraph
    history: History
    forced_var: str

    @property
    def reader(self) -> str:
        return READER


def history_from_reduction(
    poly_prime: Polygraph,
    topo_order: Sequence[str],
    forced_var: str,
) -> History:
    """Build the Theorem 5 history from ``P'_φ`` and a serial order.

    ``topo_order`` must be a topological order of an acyclic digraph
    compatible with the *reader-free* polygraph (the update transactions).
    One object exists per fixed arc of ``P'_φ``; per bipath
    ``{(r,p),(p,q)}`` (fixed arc ``(q,r)``) the extra writer ``p``
    additionally writes the object of arc ``(q,r)``.  Update transactions
    run serially in ``topo_order`` (reads before writes); the reader's
    read of the ``c(x) → tR`` object is placed immediately after ``c(x)``
    commits — before ``a(x)`` overwrites it — and its remaining reads go
    at the end.
    """
    a_x, _b_x, c_x = _var_nodes(forced_var)

    reads: Dict[str, List[str]] = {n: [] for n in poly_prime.nodes}
    writes: Dict[str, List[str]] = {n: [] for n in poly_prime.nodes}
    for src, dst in sorted(poly_prime.arcs):
        obj = _arc_object(src, dst)
        writes[src].append(obj)
        reads[dst].append(obj)
    # extra writers from bipaths: p writes the object of the fixed arc (q,r)
    for bipath in poly_prime.bipaths:
        (v1, u1), (v2, u2) = bipath.first, bipath.second
        # identify the shared middle node p: appears in both arcs
        shared = {v1, u1} & {v2, u2}
        if len(shared) != 1:
            raise ValueError(f"malformed bipath {bipath}")
        p = shared.pop()
        # orient as (r,p),(p,q)
        if u1 == p and v2 == p:
            r, q = v1, u2
        elif u2 == p and v1 == p:
            r, q = v2, u1
        else:
            raise ValueError(f"malformed bipath {bipath}")
        obj = _arc_object(q, r)
        if obj not in writes[p]:
            writes[p].append(obj)

    ops: List[Operation] = []
    special_obj = _arc_object(c_x, READER)
    for position, tid in enumerate(topo_order):
        if tid == READER:
            raise ValueError("topo_order must contain update transactions only")
        for obj in reads[tid]:
            ops.append(read(tid, obj))
        for obj in writes[tid]:
            ops.append(write(tid, obj))
        ops.append(commit(tid, cycle=position + 1))
        if tid == c_x:
            ops.append(read(READER, special_obj))
    for obj in sorted(reads[READER]):
        if obj != special_obj:
            ops.append(read(READER, obj))
    ops.append(commit(READER, cycle=len(topo_order) + 1))
    return History(ops)


def reduce_sat_to_history(cnf: CNF) -> ReductionArtifacts:
    """Run the entire Theorem 5 reduction on a CNF formula ψ.

    The returned history has a serial update sub-history and satisfies
    ``is_legal(history) ⇔ ψ is satisfiable``.
    """
    forced = "x*"
    psi_prime = add_universal_literal(cnf, forced)
    psi3 = to_three_sat(psi_prime)
    phi = make_non_circular(psi3)
    assert phi.is_non_circular()

    poly = polygraph_from_noncircular(phi)
    poly_prime = reduction_polygraph(poly, forced)

    # a satisfying assignment of φ with x true always exists
    assignment = phi.satisfying_assignment(forced={forced: True})
    if assignment is None:  # pragma: no cover - construction guarantees it
        raise RuntimeError("φ must be satisfiable with the universal literal true")

    from .serialgraph import Digraph  # local import to avoid cycles

    digraph = Digraph(sorted(poly.nodes))
    for arc in poly.arcs:
        digraph.add_edge(*arc)
    for arc in assignment_digraph_arcs(phi, assignment):
        digraph.add_edge(*arc)
    order = digraph.topological_order()
    if order is None:  # pragma: no cover - Lemma 9 guarantees acyclicity
        raise RuntimeError("assignment digraph unexpectedly cyclic")

    history = history_from_reduction(poly_prime, order, forced)
    return ReductionArtifacts(phi, poly, poly_prime, history, forced)
