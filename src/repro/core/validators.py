"""Client-side read-validation protocols (Sections 3.2.1–3.2.2, 3.3).

Each validator embodies one protocol's *read condition*.  A read-only
transaction is executed by calling :meth:`begin`, then
:meth:`validate_read` before each read: ``True`` means the read may
proceed (and it is recorded in ``R_t``); ``False`` means the protocol
aborts the transaction (the caller restarts it).  Commit is always
allowed for read-only transactions — per Theorem 1, per-read validation
already guarantees ``S(t_R)`` is acyclic on commit.

Implemented protocols:

* :class:`FMatrixValidator`   — full ``n × n`` matrix (implements APPROX);
* :class:`RMatrixValidator`   — vector with the weakened disjunctive
  condition (accepts only APPROX schedules, Theorem 9);
* :class:`DatacycleValidator` — vector with the strict condition
  (serializability; Herman et al.'s Datacycle);
* :class:`GroupMatrixValidator` — the tunable ``n × g`` middle ground.

Validators see per-cycle *control snapshots* — the control information as
frozen at the beginning of the broadcast cycle the read observes — via
:class:`ControlSnapshot`, and they *retain* each read's control slice
(the object's matrix column, or the vector): exactly what Sec. 3.3 says a
caching client must store.

**Cached (out-of-order) reads.**  Off the air, read cycles are
non-decreasing and the paper's one-directional condition::

    ∀ (ob_i, c_i) ∈ R_t :  C(i, j) < c_i

is exact (Theorem 1).  A quasi-cached read, however, observes a version
from an *earlier* cycle ``c_j`` than previous reads, and the one-way check
cannot see transactions that affected an earlier read ``ob_i`` *and*
overwrote ``ob_j`` after ``c_j`` — those commits postdate the cached
column.  Validators therefore also apply the symmetric *backward*
condition against each earlier read's retained slice::

    ∀ (ob_i, c_i) ∈ R_t with c_i > c_j :  C_{c_i}(j, i) < c_j

i.e. nothing affecting the value of ``ob_i`` as read wrote ``ob_j`` at or
after the cached version's cycle.  For in-order reads the backward
condition is vacuous (every entry of a cycle-``c_i`` column is < ``c_i``
≤ ``c_j``), so plain broadcast behaviour is unchanged.

Timestamp comparison is delegated to a
:class:`repro.core.cycles.CycleArithmetic`, so the same logic runs with
absolute cycle numbers or the paper's 8-bit modulo timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .cycles import CycleArithmetic, UnboundedCycles
from .group_matrix import Partition

__all__ = [
    "ControlSnapshot",
    "ReadRecord",
    "ReadValidator",
    "FMatrixValidator",
    "DatacycleValidator",
    "RMatrixValidator",
    "GroupMatrixValidator",
    "PROTOCOL_NAMES",
    "make_validator",
    "validate_read_batch",
    "validate_read_batch_inorder",
]


@dataclass(frozen=True)
class ControlSnapshot:
    """Control information frozen at the beginning of one broadcast cycle.

    Exactly one of ``matrix`` / ``vector`` / ``grouped`` is populated,
    matching the protocol in force.  Entries are *encoded* timestamps (see
    :mod:`repro.core.cycles`); ``cycle`` is the absolute cycle number the
    snapshot belongs to, used as the wrap-around anchor.
    """

    cycle: int
    matrix: Optional[np.ndarray] = None
    vector: Optional[np.ndarray] = None
    grouped: Optional[np.ndarray] = None
    partition: Optional[Partition] = None

    def fmatrix_entry(self, i: int, j: int) -> int:
        assert self.matrix is not None, "snapshot carries no full matrix"
        return int(self.matrix[i, j])

    def vector_entry(self, i: int) -> int:
        assert self.vector is not None, "snapshot carries no vector"
        return int(self.vector[i])

    def grouped_entry(self, i: int, group: int) -> int:
        assert self.grouped is not None, "snapshot carries no grouped matrix"
        return int(self.grouped[i, group])


@dataclass(frozen=True)
class ReadRecord:
    """One validated read in ``R_t``: object, cycle, retained control slice.

    ``slice_`` is the protocol-specific control information that rode with
    the read — the object's matrix column (F-Matrix), the vector
    (Datacycle/R-Matrix), or the object's group column (group-matrix) —
    and is what a caching client keeps alongside the object (Sec. 3.3).
    Slotted because the scalar validation sweeps touch ``obj``/``cycle``
    once per retained read per validation — the hottest attribute reads
    in the whole simulation.
    """

    __slots__ = ("obj", "cycle", "slice_")

    obj: int
    cycle: int
    slice_: np.ndarray

    def __iter__(self) -> Iterator[int]:
        # unpacking compatibility: (obj, cycle) = record
        return iter((self.obj, self.cycle))

    def __reduce__(self):
        # frozen + manual __slots__ (py3.9-compatible) defeats the
        # default pickle path
        return (self.__class__, (self.obj, self.cycle, self.slice_))


#: smallest ``R_t`` for which the fancy-indexed numpy evaluation beats the
#: scalar loop; below it, numpy call overhead dominates the few comparisons
_VECTOR_MIN_READS = 4
#: bucket size below which batch validation falls back to the scalar loop
_BATCH_MIN_CLIENTS = 8
#: R_t-entry total above which batch validation uses the fancy-indexed
#: gather instead of the shared-column scalar sweep
_BATCH_GATHER_MIN_RECORDS = 512


class ReadValidator:
    """Base class: tracks ``R_t`` and defers the condition to subclasses.

    ``R_t``'s (object, cycle) pairs are mirrored into growing numpy
    arrays so subclasses can evaluate the read condition with one
    fancy-indexed comparison (the :class:`UnboundedCycles` fast path,
    where encoded timestamps are absolute cycle numbers and ``<`` is the
    plain integer order).  Modulo arithmetic and cached (out-of-order)
    reads fall back to the scalar loop, which remains the semantics
    oracle.
    """

    #: short protocol identifier used in configs/reports
    name: str = "abstract"

    def __init__(self, arithmetic: Optional[CycleArithmetic] = None):
        self.arithmetic = arithmetic or UnboundedCycles()
        self.records: List[ReadRecord] = []
        self._vectorisable = isinstance(self.arithmetic, UnboundedCycles)
        self._objs = np.zeros(8, dtype=np.int64)
        self._cycles = np.zeros(8, dtype=np.int64)
        self._capacity = 8
        self._count = 0
        self._max_cycle = 0

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start (or restart) a transaction: clear ``R_t``."""
        self.records = []
        self._count = 0
        self._max_cycle = 0

    @property
    def reads(self) -> List[Tuple[int, int]]:
        """``R_t`` as (object, cycle) pairs."""
        return [(r.obj, r.cycle) for r in self.records]

    @property
    def first_read_cycle(self) -> Optional[int]:
        return self.records[0].cycle if self.records else None

    def validate_read(self, obj: int, snapshot: ControlSnapshot) -> bool:
        """Apply the protocol's read condition for reading ``obj`` now.

        On success the read is recorded into ``R_t`` with the snapshot's
        cycle (the client reads the latest committed value as of the
        beginning of that cycle) and its control slice.
        """
        if self._condition_holds(obj, snapshot):
            self._record(
                ReadRecord(obj, snapshot.cycle, self._slice(obj, snapshot))
            )
            return True
        return False

    # ------------------------------------------------------------------
    def _record(self, record: ReadRecord) -> None:
        """Append to ``R_t``, mirroring (obj, cycle) into the arrays."""
        self.records.append(record)
        count = self._count
        if count == self._capacity:
            grow = np.zeros(self._capacity, dtype=np.int64)
            self._objs = np.concatenate([self._objs, grow])
            self._cycles = np.concatenate([self._cycles, grow])
            self._capacity *= 2
        cycle = record.cycle
        self._objs[count] = record.obj
        self._cycles[count] = cycle
        self._count = count + 1
        if cycle > self._max_cycle:
            self._max_cycle = cycle

    def _fast_path(self, now: int) -> bool:
        """May this validation use the fancy-indexed evaluation?

        Requires absolute (unbounded) timestamps, an ``R_t`` large enough
        for numpy to win, and in-order reads only — ``max cycle <= now``
        means no retained read postdates the snapshot, so the backward
        (cached-read) condition is vacuous and the one-directional
        comparison is the whole read condition.
        """
        return (
            self._vectorisable
            and self._count >= _VECTOR_MIN_READS
            and self._max_cycle <= now
        )

    def _condition_holds(self, obj: int, snapshot: ControlSnapshot) -> bool:
        raise NotImplementedError

    def _slice(self, obj: int, snapshot: ControlSnapshot) -> np.ndarray:
        raise NotImplementedError

    def _less(self, entry: int, cycle: int, *, now: int) -> bool:
        """entry < cycle under the configured timestamp arithmetic.

        ``entry`` is wire-format (encoded); ``cycle`` is an absolute cycle
        number the client tracked itself, so it is compared as such —
        encoding it first would re-anchor it against ``now`` and flip the
        comparison whenever it lies outside the modulo window (cached
        out-of-order reads, or a transaction spanning the wrap gap).
        """
        return self.arithmetic.less_encoded_absolute(entry, cycle, reference=now)


class FMatrixValidator(ReadValidator):
    """F-Matrix read condition (Sec. 3.2.1)::

        ∀ (ob_i, cycle) ∈ R_t :  C(i, j) < cycle

    using the matrix at the beginning of the read's cycle — the column
    ``j`` broadcast alongside object ``j`` contains every entry consulted.
    Equivalent to keeping ``S(t_R)`` acyclic (Theorem 1).  For cached
    reads the symmetric backward condition on retained columns applies
    (module docstring).
    """

    name = "f-matrix"

    def _slice(self, obj: int, snapshot: ControlSnapshot) -> np.ndarray:
        assert snapshot.matrix is not None
        return snapshot.matrix[:, obj]

    def _condition_holds(self, obj: int, snapshot: ControlSnapshot) -> bool:
        now = snapshot.cycle
        if self._fast_path(now):
            assert snapshot.matrix is not None
            k = self._count
            entries = snapshot.matrix[self._objs[:k], obj]
            return bool(np.all(entries < self._cycles[:k]))
        for record in self.records:
            if not self._less(snapshot.fmatrix_entry(record.obj, obj), record.cycle, now=now):
                return False
            if record.cycle > now:  # cached (out-of-order) read: backward
                if not self._less(int(record.slice_[obj]), now, now=record.cycle):
                    return False
        return True


class DatacycleValidator(ReadValidator):
    """Datacycle read condition (Sec. 3.2.2)::

        ∀ (ob_i, cycle) ∈ R_t :  MC(i) < cycle

    i.e. abort as soon as *any* previously read value has been overwritten
    by a committed transaction — this enforces serializability.
    """

    name = "datacycle"

    def _slice(self, obj: int, snapshot: ControlSnapshot) -> np.ndarray:
        assert snapshot.vector is not None
        return snapshot.vector

    def _condition_holds(self, obj: int, snapshot: ControlSnapshot) -> bool:
        now = snapshot.cycle
        if self._fast_path(now):
            assert snapshot.vector is not None
            k = self._count
            entries = snapshot.vector[self._objs[:k]]
            return bool(np.all(entries < self._cycles[:k]))
        for record in self.records:
            if not self._less(snapshot.vector_entry(record.obj), record.cycle, now=now):
                return False
            if record.cycle > now:  # cached read: backward condition
                if not self._less(int(record.slice_[obj]), now, now=record.cycle):
                    return False
        return True


class RMatrixValidator(ReadValidator):
    """R-Matrix read condition (Sec. 3.2.2)::

        (∀ (ob_i, cycle) ∈ R_t : MC(i) < cycle)  ∨  (MC(j) < c₁)

    where ``c₁`` is the cycle of the transaction's first read.  Either no
    previously read value has been overwritten (the transaction sees the
    database as of its last read), or the value now being read has not
    been overwritten since the transaction began (it sees the database as
    of its first read).  Accepts only APPROX schedules (Theorem 9) and,
    unlike Datacycle, never aborts a transaction that performs no further
    reads.

    The first-read-state disjunct presumes in-order reads; a cached
    (out-of-order) read falls back to the strict conjunctive condition
    with the backward check — conservative, still sound.
    """

    name = "r-matrix"

    def _slice(self, obj: int, snapshot: ControlSnapshot) -> np.ndarray:
        assert snapshot.vector is not None
        return snapshot.vector

    def _condition_holds(self, obj: int, snapshot: ControlSnapshot) -> bool:
        now = snapshot.cycle
        if self._fast_path(now):
            assert snapshot.vector is not None
            k = self._count
            entries = snapshot.vector[self._objs[:k]]
            if bool(np.all(entries < self._cycles[:k])):
                return True
            # in-order is guaranteed on the fast path: try the
            # first-read-state disjunct
            c1 = self.first_read_cycle
            assert c1 is not None  # _count >= _VECTOR_MIN_READS > 0
            return int(snapshot.vector[obj]) < c1
        strict_ok = True
        in_order = True
        for record in self.records:
            if not self._less(snapshot.vector_entry(record.obj), record.cycle, now=now):
                strict_ok = False
            if record.cycle > now:
                in_order = False
                if not self._less(int(record.slice_[obj]), now, now=record.cycle):
                    return False
        if strict_ok:
            return True
        if not in_order:
            return False
        c1 = self.first_read_cycle
        assert c1 is not None  # strict_ok vacuously true when R_t empty
        return self._less(snapshot.vector_entry(obj), c1, now=now)


class GroupMatrixValidator(ReadValidator):
    """Grouped read condition (Sec. 3.2.2)::

        ∀ (ob_i, cycle) ∈ R_t :  MC(i, s) < cycle   where ob_j ∈ s

    With singleton groups this *is* F-Matrix; with one group it is the
    Datacycle condition evaluated on the vector.  Group sizes trade
    broadcast overhead against false conflicts.
    """

    name = "group-matrix"

    def __init__(
        self,
        partition: Partition,
        arithmetic: Optional[CycleArithmetic] = None,
    ):
        super().__init__(arithmetic)
        self.partition = partition

    def _slice(self, obj: int, snapshot: ControlSnapshot) -> np.ndarray:
        assert snapshot.grouped is not None
        return snapshot.grouped[:, self.partition.group_of(obj)]

    def _condition_holds(self, obj: int, snapshot: ControlSnapshot) -> bool:
        now = snapshot.cycle
        group = self.partition.group_of(obj)
        if self._fast_path(now):
            assert snapshot.grouped is not None
            k = self._count
            entries = snapshot.grouped[self._objs[:k], group]
            return bool(np.all(entries < self._cycles[:k]))
        for record in self.records:
            if not self._less(
                snapshot.grouped_entry(record.obj, group), record.cycle, now=now
            ):
                return False
            if record.cycle > now:  # cached read: backward condition
                if not self._less(int(record.slice_[obj]), now, now=record.cycle):
                    return False
        return True


#: protocols selectable by name in configs; ``f-matrix-no`` shares the
#: F-Matrix validator and differs only in broadcast sizing (zero-cost
#: control information), which is a simulation-level concern.
PROTOCOL_NAMES = ("f-matrix", "r-matrix", "datacycle", "f-matrix-no", "group-matrix")


def make_validator(
    protocol: str,
    *,
    arithmetic: Optional[CycleArithmetic] = None,
    partition: Optional[Partition] = None,
) -> ReadValidator:
    """Instantiate the validator for a protocol name."""
    if protocol in ("f-matrix", "f-matrix-no"):
        return FMatrixValidator(arithmetic)
    if protocol == "r-matrix":
        return RMatrixValidator(arithmetic)
    if protocol == "datacycle":
        return DatacycleValidator(arithmetic)
    if protocol == "group-matrix":
        if partition is None:
            raise ValueError("group-matrix requires a partition")
        return GroupMatrixValidator(partition, arithmetic)
    raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}")


# ----------------------------------------------------------------------
# cohort (batch) validation
# ----------------------------------------------------------------------

def validate_read_batch(
    validators: Sequence[ReadValidator],
    obj: int,
    snapshot: ControlSnapshot,
) -> List[bool]:
    """Apply one read condition for many clients with one comparison.

    All ``validators`` belong to clients reading the *same* object from
    the *same* broadcast cycle (the cohort executor buckets clients by
    broadcast slot, and a slot determines both).  Each validator keeps
    its own ``R_t``; this stacks every eligible validator's (object,
    cycle) int64 mirrors into one pair of arrays, gathers the control
    entries with a single fancy-indexed lookup, and reduces the
    comparison per client with ``np.add.reduceat`` — extending the
    per-transaction fast path of :meth:`ReadValidator._fast_path` across
    the whole bucket.

    Per validator the result (and the recorded ``R_t`` on success) is
    exactly what :meth:`ReadValidator.validate_read` would produce:
    validators that are not batchable — modulo timestamps, or a retained
    cached read postdating the snapshot — are evaluated through their
    scalar path, which remains the semantics oracle.  Returns a list of
    booleans aligned with ``validators``.
    """
    n = len(validators)
    results = [False] * n
    if n == 0:
        return results
    now = snapshot.cycle
    proto = validators[0].__class__
    batch: List[int] = []
    total = 0
    for i, validator in enumerate(validators):
        if (
            validator.__class__ is proto
            and validator._vectorisable
            and validator._max_cycle <= now
        ):
            batch.append(i)
            total += validator._count
        elif validator.validate_read(obj, snapshot):
            results[i] = True
    if not batch:
        return results
    if len(batch) < _BATCH_MIN_CLIENTS:
        # tiny buckets: any shared setup cost exceeds the scalar loop's —
        # same outcomes, same recorded R_t
        for i in batch:
            if validators[i].validate_read(obj, snapshot):
                results[i] = True
        return results

    ok_flags = _strict_ok_flags(validators, batch, total, proto, obj, snapshot)

    if proto is RMatrixValidator and not all(ok_flags):
        # the disjunct: the value being read is unchanged since the
        # transaction's first read (in-order is guaranteed for batch
        # members, so the disjunct is admissible)
        assert snapshot.vector is not None
        entry_now = int(snapshot.vector[obj])
        for j, i in enumerate(batch):
            if not ok_flags[j]:
                # strict failed => R_t non-empty => a first read exists
                first_cycle = validators[i].records[0].cycle
                ok_flags[j] = entry_now < first_cycle

    if any(ok_flags):
        # one frozen record serves every successful member: the content
        # (object, cycle, control slice) is bucket-wide identical and
        # ReadRecord is immutable, so sharing the instance is observably
        # the same as constructing one per client
        shared_slice = validators[batch[0]]._slice(obj, snapshot)
        record = ReadRecord(obj, now, shared_slice)
        for j, i in enumerate(batch):
            if ok_flags[j]:
                validators[i]._record(record)
                results[i] = True
    return results


def validate_read_batch_inorder(
    validators: Sequence[ReadValidator],
    obj: int,
    snapshot: ControlSnapshot,
) -> List[bool]:
    """:func:`validate_read_batch` minus the per-member eligibility test.

    Precondition (the caller's to guarantee): every validator shares one
    protocol class, uses absolute (unbounded) timestamps, and retains no
    read postdating the snapshot — which holds for any cache-less client
    population, since every retained read then came off an earlier (or
    this) broadcast cycle.  The cohort executor checks these properties
    once at construction; per bucket the eligibility loop is a third of
    the validation cost, which is why this entry point exists.
    """
    n = len(validators)
    if n < _BATCH_MIN_CLIENTS:
        return [v.validate_read(obj, snapshot) for v in validators]
    now = snapshot.cycle
    total = 0
    for validator in validators:
        total += validator._count
    proto = validators[0].__class__
    batch = range(n)
    ok_flags = _strict_ok_flags(validators, batch, total, proto, obj, snapshot)

    if proto is RMatrixValidator and not all(ok_flags):
        # first-read-state disjunct, as in validate_read_batch
        assert snapshot.vector is not None
        entry_now = int(snapshot.vector[obj])
        for j in batch:
            if not ok_flags[j]:
                ok_flags[j] = entry_now < validators[j].records[0].cycle

    if any(ok_flags):
        shared_slice = validators[0]._slice(obj, snapshot)
        record = ReadRecord(obj, now, shared_slice)
        for ok, validator in zip(ok_flags, validators):
            if ok:
                # _record, inlined: at tens of thousands of recorded
                # reads per wall-clock second the call frame itself is
                # measurable (obj/now are loop-invariant here, too)
                validator.records.append(record)
                count = validator._count
                if count == validator._capacity:
                    grow = np.zeros(validator._capacity, dtype=np.int64)
                    validator._objs = np.concatenate([validator._objs, grow])
                    validator._cycles = np.concatenate([validator._cycles, grow])
                    validator._capacity *= 2
                validator._objs[count] = obj
                validator._cycles[count] = now
                validator._count = count + 1
                if now > validator._max_cycle:
                    validator._max_cycle = now
    return ok_flags


def _strict_ok_flags(
    validators: Sequence[ReadValidator],
    batch: Sequence[int],
    total: int,
    proto: type,
    obj: int,
    snapshot: ControlSnapshot,
) -> List[bool]:
    """The strict (conjunctive) read condition for each batch member.

    Three tiers by total ``R_t`` size — empty, shared-column scalar
    sweep, fancy-indexed gather — all equivalent to evaluating
    ``_condition_holds`` per member on the fast path.  No recording and
    no R-Matrix disjunct here; the callers apply those.
    """
    if total == 0:
        return [True] * len(batch)
    if total < _BATCH_GATHER_MIN_RECORDS:
        # mid-size buckets: one shared control column as a plain python
        # list, then each R_t entry costs a list index + int compare —
        # beats the fancy-gather pipeline's fixed numpy overhead
        if proto is FMatrixValidator:
            assert snapshot.matrix is not None
            column = snapshot.matrix[:, obj].tolist()
        elif proto is GroupMatrixValidator:
            assert snapshot.grouped is not None
            first = validators[batch[0]]
            assert isinstance(first, GroupMatrixValidator)
            column = snapshot.grouped[:, first.partition.group_of(obj)].tolist()
        else:
            assert snapshot.vector is not None
            column = snapshot.vector.tolist()
        ok_flags = []
        append = ok_flags.append
        for i in batch:
            ok = True
            for record in validators[i].records:
                if column[record.obj] >= record.cycle:
                    ok = False
                    break
            append(ok)
        return ok_flags
    # large buckets: stack every member's (object, cycle) mirrors and
    # evaluate the whole bucket with one fancy-indexed comparison
    counts = np.fromiter(
        (validators[i]._count for i in batch),
        dtype=np.int64,
        count=len(batch),
    )
    objs = np.concatenate(
        [validators[i]._objs[: validators[i]._count] for i in batch]
    )
    cycles = np.concatenate(
        [validators[i]._cycles[: validators[i]._count] for i in batch]
    )
    if proto is FMatrixValidator:
        assert snapshot.matrix is not None
        entries = snapshot.matrix[objs, obj]
    elif proto is GroupMatrixValidator:
        assert snapshot.grouped is not None
        first_v = validators[batch[0]]
        assert isinstance(first_v, GroupMatrixValidator)
        entries = snapshot.grouped[objs, first_v.partition.group_of(obj)]
    else:
        assert snapshot.vector is not None
        entries = snapshot.vector[objs]
    fail = (entries >= cycles).astype(np.int64)
    offsets = np.zeros(len(batch), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    # reduceat returns the element at an empty segment's offset
    # instead of 0, so reduce over the non-empty segments only;
    # their offsets still partition [0, total) exactly
    nonempty = counts > 0
    seg_fail = np.zeros(len(batch), dtype=np.int64)
    seg_fail[nonempty] = np.add.reduceat(fail, offsets[nonempty])
    return (seg_fail == 0).tolist()
