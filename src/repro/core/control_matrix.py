"""The F-Matrix control matrix ``C`` (Section 3.2.1).

For a database of ``n`` objects with ids ``0..n-1``::

    C(i, j) = max { commit-cycle(t') : t' ∈ LIVE_H(t_j), t' writes ob_i }

where ``t_j`` is the last committed update transaction that wrote ``ob_j``
(``t0``, committing at cycle 0, when none has).  ``C(i, j)`` is thus the
latest cycle at which some transaction *affecting* the current committed
value of ``ob_j`` wrote ``ob_i``.

Two computations are provided:

* :meth:`ControlMatrix.apply_commit` — the incremental maintenance of
  Theorem 2, numpy-vectorised, used by the server on every commit;
* :func:`matrix_from_history` — the definitional computation from a full
  history, used as the oracle in the Theorem 2 property tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .model import History, T0
from .readsfrom import last_committed_writer, live_set

__all__ = ["ControlMatrix", "matrix_from_history"]

#: write-set width from which one fancy-indexed assignment beats a loop
#: of contiguous per-column assignments (measured crossover ~20)
_FANCY_MIN_COLUMNS = 20


class ControlMatrix:
    """Incrementally maintained ``n × n`` control matrix.

    Entries are absolute cycle numbers (int64); reduction to modulo
    timestamps happens at broadcast time (:mod:`repro.broadcast`).  Commits
    must be applied in the update transactions' serialization order, which
    under the server's strict-2PL/BOCC executors coincides with commit
    order (Section 3.2.1 "the simple case").
    """

    def __init__(self, num_objects: int):
        if num_objects <= 0:
            raise ValueError("num_objects must be positive")
        self._n = num_objects
        self._c = np.zeros((num_objects, num_objects), dtype=np.int64)
        self._last_cycle_applied = 0
        #: columns touched since the last :meth:`drain_dirty_columns` —
        #: the server's copy-on-write snapshot refreshes exactly these
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return self._n

    @property
    def array(self) -> np.ndarray:
        """The live matrix (a view — do not mutate)."""
        return self._c

    def snapshot(self) -> np.ndarray:
        """An independent copy, e.g. the frozen per-cycle broadcast image."""
        return self._c.copy()

    def entry(self, i: int, j: int) -> int:
        return int(self._c[i, j])

    def column(self, j: int) -> np.ndarray:
        """Column ``j`` — broadcast alongside object ``j`` (Sec. 3.2.1)."""
        return self._c[:, j].copy()

    def drain_dirty_columns(self) -> Tuple[int, ...]:
        """Columns changed since the last drain, in ascending order.

        Supports the server's copy-on-write per-cycle snapshot: only these
        columns differ from the previously frozen image, so re-encoding is
        confined to them (an empty result means the previous frozen image
        is still exact and can be reused outright).  Draining resets the
        tracking; the caller owns keeping its frozen copy in sync.
        """
        dirty = tuple(sorted(self._dirty))
        self._dirty.clear()
        return dirty

    # ------------------------------------------------------------------
    def apply_commit(
        self,
        commit_cycle: int,
        read_set: Iterable[int],
        write_set: Iterable[int],
    ) -> None:
        """Apply one committed update transaction (Theorem 2 algorithm).

        * ``C(i, j) = commit_cycle``            for i, j ∈ WS;
        * ``C(i, j) = max_{k ∈ RS} C_old(i, k)`` for i ∉ WS, j ∈ WS
          (0 when RS is empty);
        * unchanged otherwise.
        """
        ws = sorted({w for w in write_set})
        if not ws:
            return  # read-only at the server: no effect on the matrix
        if commit_cycle < self._last_cycle_applied:
            raise ValueError(
                f"commit cycles must be non-decreasing "
                f"({commit_cycle} < {self._last_cycle_applied})"
            )
        self._last_cycle_applied = commit_cycle
        rs = sorted({r for r in read_set})
        for idx in ws + rs:
            if not 0 <= idx < self._n:
                raise IndexError(f"object id {idx} out of range 0..{self._n - 1}")

        if rs:
            new_column = self._c[:, rs].max(axis=1)
        else:
            new_column = np.zeros(self._n, dtype=np.int64)
        new_column[ws] = commit_cycle
        if len(ws) < _FANCY_MIN_COLUMNS:
            # contiguous column assignment beats fancy indexing until the
            # write set is wide (typical simulated write sets are ~4)
            for j in ws:
                self._c[:, j] = new_column
        else:
            self._c[:, ws] = new_column[:, np.newaxis]
        self._dirty.update(ws)

    # ------------------------------------------------------------------
    def reduce_to_vector(self) -> np.ndarray:
        """``MC(i, db) = max_j C(i, j)``: the one-group reduction.

        This equals the last committed-write cycle per object (Sec. 3.2.2):
        the diagonal dominates each row's maximum because the last writer of
        ``ob_i`` is in its own live set.
        """
        return self._c.max(axis=1)

    def reduce_to_groups(self, groups: Sequence[Sequence[int]]) -> np.ndarray:
        """``MC(i, s) = max_{j ∈ s} C(i, j)`` for each group ``s``."""
        cols = []
        seen: Set[int] = set()
        for group in groups:
            members = list(group)
            if not members:
                raise ValueError("groups must be non-empty")
            seen.update(members)
            cols.append(self._c[:, members].max(axis=1))
        if seen != set(range(self._n)):
            raise ValueError("groups must partition the object ids")
        return np.stack(cols, axis=1)


def matrix_from_history(history: History, num_objects: int) -> np.ndarray:
    """Definitional ``C`` for a history with integer-named objects.

    Objects must be named ``"0" .. str(num_objects-1)``.  For each column
    ``j``, find the last committed writer ``t_j`` of ``ob_j`` and take, per
    row ``i``, the maximum commit cycle among transactions in
    ``LIVE_H(t_j)`` that write ``ob_i`` (0 when none does).  Commit events
    must carry ``cycle`` annotations.
    """
    c = np.zeros((num_objects, num_objects), dtype=np.int64)
    committed = history.committed_projection()
    txns = committed.transactions
    for j in range(num_objects):
        t_j, _cycle = last_committed_writer(committed, str(j))
        if t_j == T0:
            continue  # column stays 0
        live = live_set(committed, t_j)
        for tid in live:
            txn = txns[tid]
            if txn.commit_cycle is None:
                raise ValueError(f"commit of {tid} lacks a cycle annotation")
            for obj in txn.write_set:
                i = int(obj)
                c[i, j] = max(c[i, j], txn.commit_cycle)
    return c
