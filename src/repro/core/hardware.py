"""Hardware-latch variants of the vector protocols (Sec. 3.2.2).

The paper notes the Datacycle implementation sets a *bit* in hardware
whenever any previously read value changes, and that R-Matrix admits the
same optimisation: "a bit could be set by hardware if any of the
previously read values of a transaction are changed.  For a future read
operation ... if the bit is set and if the object being read has been
changed during or after the cycle in which the first read operation was
performed, the transaction is aborted."

These validators are *state-optimal*: instead of retaining ``R_t`` they
keep O(1) state — the latch bit, the first-read cycle, and the set of
objects read (needed only to feed the latch, as radio hardware would
match addresses on the wire).  They must accept exactly the schedules
their list-based counterparts accept; the test suite pins that
equivalence on random schedules.

The latch is fed by :meth:`observe_cycle`: the client hardware watches
every broadcast cycle's vector and ORs in "some object I read changed".
Because a value committed in cycle ``c`` first appears in cycle ``c+1``'s
vector, observing each cycle's snapshot *including the one carrying the
next read* reproduces the list-based ``MC(i) < cycle`` comparisons
exactly (values are read as of the beginning of the read's cycle).

These classes do not support quasi-cached (out-of-order) reads — real
latch hardware monitors the live broadcast only — so they reject
snapshots older than one already observed.
"""

from __future__ import annotations

from typing import Optional, Set

from .validators import ControlSnapshot

__all__ = ["HardwareDatacycleValidator", "HardwareRMatrixValidator"]


class _LatchBase:
    """Shared latch plumbing."""

    name = "abstract-hardware"

    def __init__(self) -> None:
        self.begin()

    def begin(self) -> None:
        self.latch = False
        self.first_read_cycle: Optional[int] = None
        self._read_objects: Set[int] = set()
        self._read_cycles: Dict[int, int] = {}
        self._last_seen_cycle = 0

    @property
    def reads(self) -> List[Tuple[int, int]]:
        """(obj, cycle) pairs, for interface parity with ReadValidator."""
        return sorted(self._read_cycles.items())

    # ------------------------------------------------------------------
    def observe_cycle(self, snapshot: ControlSnapshot) -> None:
        """Feed one broadcast cycle's vector through the latch."""
        assert snapshot.vector is not None, "hardware latch watches the vector"
        if snapshot.cycle < self._last_seen_cycle:
            raise ValueError("hardware latch cannot observe past cycles")
        self._last_seen_cycle = snapshot.cycle
        for obj, read_cycle in self._read_cycles.items():
            if int(snapshot.vector[obj]) >= read_cycle:
                self.latch = True
                return

    def _record(self, obj: int, snapshot: ControlSnapshot) -> None:
        self._read_objects.add(obj)
        self._read_cycles[obj] = snapshot.cycle
        if self.first_read_cycle is None:
            self.first_read_cycle = snapshot.cycle


class HardwareDatacycleValidator(_LatchBase):
    """Latch semantics of the Datacycle condition: abort a read as soon
    as the latch is set."""

    name = "hw-datacycle"

    def validate_read(self, obj: int, snapshot: ControlSnapshot) -> bool:
        self.observe_cycle(snapshot)
        if self.latch:
            return False
        self._record(obj, snapshot)
        return True


class HardwareRMatrixValidator(_LatchBase):
    """Latch semantics of the R-Matrix condition: a set latch is survived
    iff the object being read is unchanged since the first read's cycle."""

    name = "hw-r-matrix"

    def validate_read(self, obj: int, snapshot: ControlSnapshot) -> bool:
        self.observe_cycle(snapshot)
        if self.latch:
            assert snapshot.vector is not None
            c1 = self.first_read_cycle
            assert c1 is not None  # latch can only be set after a read
            if int(snapshot.vector[obj]) >= c1:
                return False
        self._record(obj, snapshot)
        return True
