"""The paper's primary contribution: update consistency, APPROX, and the
matrix protocols' algorithmic core.

Layered as:

* history model and analyses — :mod:`repro.core.model`,
  :mod:`repro.core.readsfrom`, :mod:`repro.core.serialgraph`,
  :mod:`repro.core.polygraph`, :mod:`repro.core.viewser`;
* correctness criteria — :mod:`repro.core.approx` (polynomial test),
  :mod:`repro.core.legality` (Theorem 3, exact, NP-complete);
* protocol state — :mod:`repro.core.control_matrix` (F-Matrix ``C``),
  :mod:`repro.core.group_matrix` (grouped/vector reductions),
  :mod:`repro.core.validators` (client read conditions),
  :mod:`repro.core.cycles` (timestamp arithmetic);
* theory extras — :mod:`repro.core.reductions` (Appendix B, executable).
"""

from .approx import ApproxReport, approx_accepts, approx_report
from .control_matrix import ControlMatrix, matrix_from_history
from .cycles import CycleArithmetic, ModuloCycles, UnboundedCycles
from .explain import explain_history
from .incompressibility import (
    history_for_spec,
    realize_spec,
    worst_case_bits,
)
from .group_matrix import (
    GroupedControlState,
    LastWriteVector,
    Partition,
    uniform_partition,
)
from .legality import (
    LegalityReport,
    criteria_summary,
    is_legal,
    is_prefix_closed_legal,
    legality_report,
)
from .model import (
    History,
    HistoryError,
    Operation,
    OpKind,
    T0,
    Transaction,
    abort,
    commit,
    parse_history,
    read,
    write,
)
from .polygraph import Bipath, Polygraph, reader_polygraph
from .readsfrom import affects_set, last_committed_writer, live_set, live_sets
from .serialgraph import (
    Digraph,
    conflict_graph,
    conflict_serialization_order,
    is_conflict_serializable,
    reader_serialization_graph,
)
from .validators import (
    ControlSnapshot,
    DatacycleValidator,
    FMatrixValidator,
    GroupMatrixValidator,
    PROTOCOL_NAMES,
    ReadValidator,
    RMatrixValidator,
    make_validator,
)
from .viewser import (
    is_view_serializable,
    view_equivalent,
    view_serialization_order,
)

__all__ = [
    # model
    "History", "HistoryError", "Operation", "OpKind", "T0", "Transaction",
    "read", "write", "commit", "abort", "parse_history",
    # analyses
    "live_set", "live_sets", "affects_set", "last_committed_writer",
    "Digraph", "conflict_graph", "is_conflict_serializable",
    "conflict_serialization_order", "reader_serialization_graph",
    "Polygraph", "Bipath", "reader_polygraph",
    "is_view_serializable", "view_equivalent", "view_serialization_order",
    # criteria
    "approx_accepts", "approx_report", "ApproxReport",
    "is_legal", "legality_report", "LegalityReport",
    "is_prefix_closed_legal", "criteria_summary",
    # protocol state
    "ControlMatrix", "matrix_from_history",
    "LastWriteVector", "GroupedControlState", "Partition", "uniform_partition",
    "CycleArithmetic", "UnboundedCycles", "ModuloCycles",
    "explain_history",
    "history_for_spec", "realize_spec", "worst_case_bits",
    "ControlSnapshot", "ReadValidator", "FMatrixValidator", "RMatrixValidator",
    "DatacycleValidator", "GroupMatrixValidator", "make_validator",
    "PROTOCOL_NAMES",
]
