"""Reads-from closure machinery: LIVE sets and affects sets.

Implements Definitions 1–3 of the paper:

* ``READS_FROM`` — exposed on :class:`repro.core.model.History` directly;
* ``LIVE_H(t)`` — the transitive reads-from closure of a transaction
  (:func:`live_set`);
* affects sets of read and write operations (:func:`affects_set`), used by
  the formal-characterization lemmas and exercised by the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .model import History, Operation, OpKind, T0

__all__ = [
    "live_set",
    "live_sets",
    "last_committed_writer",
    "affects_set",
]


def live_set(history: History, tid: str, *, include_t0: bool = False) -> FrozenSet[str]:
    """``LIVE_H(t)``: transactions ``t`` directly or indirectly reads from.

    The minimal set containing ``t`` and closed under "reads the value of an
    object written by".  ``t0`` (the implicit initialiser) is excluded by
    default since most graph constructions treat it as the database's
    initial state rather than a node.
    """
    rf = history.reads_from
    # Index reads-from edges by reader once, so the closure walk is linear.
    by_reader: Dict[str, Set[str]] = {}
    for (reader, _obj), writer in rf.items():
        by_reader.setdefault(reader, set()).add(writer)

    result: Set[str] = {tid}
    queue = deque([tid])
    while queue:
        current = queue.popleft()
        for writer in by_reader.get(current, ()):
            if writer not in result:
                result.add(writer)
                queue.append(writer)
    if not include_t0:
        result.discard(T0)
    return frozenset(result)


def live_sets(history: History, *, include_t0: bool = False) -> Dict[str, FrozenSet[str]]:
    """``LIVE_H(t)`` for every transaction ``t`` in the history."""
    return {
        tid: live_set(history, tid, include_t0=include_t0)
        for tid in history.transaction_ids
    }


def last_committed_writer(history: History, obj: str) -> Tuple[str, Optional[int]]:
    """The last committed transaction that wrote ``obj`` and its commit cycle.

    Returns ``(t0, 0)`` when no committed transaction wrote the object —
    matching the paper's convention that ``t0`` writes everything at cycle 0.
    """
    txns = history.transactions
    last: Tuple[str, Optional[int]] = (T0, 0)
    commit_index: Dict[str, int] = {}
    for idx, op in enumerate(history):
        if op.is_commit:
            commit_index[op.txn] = idx
    best_commit = -1
    for op in history:
        if op.is_write and op.obj == obj:
            txn = txns.get(op.txn)
            if txn is None or not txn.committed:
                continue
            cidx = commit_index[op.txn]
            if cidx > best_commit:
                best_commit = cidx
                last = (op.txn, txn.commit_cycle)
    return last


def _op_index(history: History, op: Operation) -> int:
    for idx, candidate in enumerate(history):
        if candidate is op or candidate == op:
            return idx
    raise ValueError(f"operation {op} not in history")


def affects_set(history: History, op: Operation) -> FrozenSet[Operation]:
    """The affects set ``AS_H(op)`` of a read or write (Definitions 2–3).

    The set of operations that directly or indirectly affected the value
    read/written by ``op``:

    * a read's affects set contains itself, the write it read from, and
      (recursively) everything affecting that write;
    * a write's affects set contains itself, the reads its transaction
      performed before it, and (recursively) everything affecting those.
    """
    if op.kind not in (OpKind.READ, OpKind.WRITE):
        raise ValueError("affects sets are defined for reads and writes only")

    ops = history.operations
    position = {id(o): i for i, o in enumerate(ops)}
    if id(op) not in position:
        # Accept a structurally equal operation not taken from the history.
        idx = _op_index(history, op)
        op = ops[idx]

    rf = history.reads_from

    def writer_op(reader: Operation) -> Optional[Operation]:
        writer = rf.get((reader.txn, reader.obj or ""))
        if writer is None or writer == T0:
            return None
        # the *latest* write by `writer` on the object before the read
        ridx = position[id(reader)]
        found: Optional[Operation] = None
        for i in range(ridx - 1, -1, -1):
            candidate = ops[i]
            if candidate.is_write and candidate.txn == writer and candidate.obj == reader.obj:
                found = candidate
                break
        return found

    def prior_reads(w: Operation) -> List[Operation]:
        widx = position[id(w)]
        return [
            o
            for o in ops[:widx]
            if o.txn == w.txn and o.is_read
        ]

    result: Set[int] = set()
    collected: List[Operation] = []
    stack = [op]
    while stack:
        current = stack.pop()
        if id(current) in result:
            continue
        result.add(id(current))
        collected.append(current)
        if current.is_read:
            w = writer_op(current)
            if w is not None:
                stack.append(w)
        else:  # write
            stack.extend(prior_reads(current))
    return frozenset(collected)
