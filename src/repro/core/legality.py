"""Update-consistency legality (Theorem 3) and its relatives.

Theorem 3 characterizes the histories a scheduler can determine to satisfy
the update-consistency requirements 1–3:

1. ``H_update`` is view serializable, and
2. for every read-only transaction ``t_R``, the polygraph ``P_H(t_R)`` is
   acyclic.

Both sub-problems are NP-complete (Theorems 4–5), so :func:`is_legal` is
exact but intended for small histories only — exactly the regime in which
the theory layer, the tests, and the examples operate.  The simulation
protocols never call this; they implement APPROX via the matrix protocols.

The module also checks the *prefix commit-closed* requirement (requirement
4 of Appendix A.1) on demand, and relates the criteria:

    conflict-serializable(H)  ⊆  APPROX-accepted  ⊆  legal
                              ⊆  update-consistent histories

(the partial order of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .approx import approx_accepts
from .model import History
from .polygraph import reader_polygraph
from .serialgraph import is_conflict_serializable
from .viewser import is_view_serializable

__all__ = [
    "LegalityReport",
    "is_legal",
    "legality_report",
    "is_prefix_closed_legal",
    "criteria_summary",
]


@dataclass(frozen=True)
class LegalityReport:
    """Outcome of the Theorem 3 legality decision."""

    legal: bool
    update_view_serializable: bool
    reader_verdicts: Dict[str, bool] = field(default_factory=dict)

    @property
    def rejected_readers(self) -> Tuple[str, ...]:
        return tuple(t for t, ok in sorted(self.reader_verdicts.items()) if not ok)


def legality_report(history: History) -> LegalityReport:
    """Decide legality (Theorem 3) with per-condition diagnostics."""
    committed = history.committed_projection()
    update = committed.update_subhistory()
    vs = is_view_serializable(update)
    if not vs:
        return LegalityReport(False, False)
    verdicts: Dict[str, bool] = {}
    for tid in committed.read_only_transactions():
        verdicts[tid] = reader_polygraph(committed, tid).is_acyclic()
    return LegalityReport(all(verdicts.values()), True, verdicts)


def is_legal(history: History) -> bool:
    """True iff a scheduler can determine ``history`` update consistent."""
    return legality_report(history).legal


def _committed_prefixes(history: History) -> List[History]:
    """Every prefix of the history, as raw (non-strict) histories."""
    ops = history.operations
    return [History(ops[:i], strict=False) for i in range(len(ops) + 1)]


def is_prefix_closed_legal(history: History) -> bool:
    """Legality of every prefix (requirement 4 of Appendix A.1).

    A prefix may cut a transaction mid-flight; per the appendix, only the
    committed projection of each prefix is judged.
    """
    return all(is_legal(prefix) for prefix in _committed_prefixes(history))


def criteria_summary(history: History) -> Dict[str, bool]:
    """Evaluate the Figure 1 criteria lattice on one history.

    Returns a dict with keys ``conflict_serializable``,
    ``view_serializable``, ``approx`` and ``legal``; the expected
    implications (csr → vsr → legal, csr → approx → legal) are asserted by
    the property-based tests.
    """
    committed = history.committed_projection()
    return {
        "conflict_serializable": is_conflict_serializable(committed),
        "view_serializable": is_view_serializable(committed),
        "approx": approx_accepts(history),
        "legal": is_legal(history),
    }
