"""Grouped control information: the F-Matrix ↔ R-Matrix spectrum (Sec. 3.2.2).

Partitioning the database objects into ``g`` groups turns the ``n × n``
control matrix into an ``n × g`` matrix ``MC(i, s) = max_{j ∈ s} C(i, j)``.
Two extremes:

* every group a singleton → F-Matrix (full matrix);
* one group covering the database → a length-``n`` vector whose entry ``i``
  is simply the last cycle in which a committed value was written to
  ``ob_i`` — the state shared by the Datacycle and R-Matrix protocols.

:class:`GroupedControlState` maintains the grouped matrix *incrementally*
(without materialising the full ``C``), which is what a server configured
with groups would actually run; :class:`LastWriteVector` is the dedicated
one-group fast path used by the Datacycle/R-Matrix simulations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Partition",
    "LastWriteVector",
    "GroupedControlState",
    "uniform_partition",
]


class Partition:
    """A partition of object ids ``0..n-1`` into ordered groups."""

    def __init__(self, groups: Sequence[Sequence[int]], num_objects: int):
        seen: set = set()
        self.groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(g)) for g in groups
        )
        for group in self.groups:
            if not group:
                raise ValueError("groups must be non-empty")
            for member in group:
                if member in seen:
                    raise ValueError(f"object {member} in more than one group")
                seen.add(member)
        if seen != set(range(num_objects)):
            raise ValueError("groups must partition 0..n-1")
        self.num_objects = num_objects
        self._group_of = np.empty(num_objects, dtype=np.int64)
        for gidx, group in enumerate(self.groups):
            for member in group:
                self._group_of[member] = gidx

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of(self, obj: int) -> int:
        return int(self._group_of[obj])

    def group_indices(self) -> np.ndarray:
        """Vector mapping object id -> group index."""
        return self._group_of.copy()


def uniform_partition(num_objects: int, num_groups: int) -> Partition:
    """Contiguous near-equal groups; ``num_groups == n`` gives singletons."""
    if not 1 <= num_groups <= num_objects:
        raise ValueError("need 1 <= num_groups <= num_objects")
    bounds = np.linspace(0, num_objects, num_groups + 1).astype(int)
    groups = [
        list(range(bounds[k], bounds[k + 1]))
        for k in range(num_groups)
        if bounds[k] < bounds[k + 1]
    ]
    return Partition(groups, num_objects)


class LastWriteVector:
    """``MC(i, db)``: last commit cycle writing each object (one group).

    This is the control state of both Datacycle and R-Matrix — their
    protocols differ only in the client-side read condition.
    """

    def __init__(self, num_objects: int):
        self._mc = np.zeros(num_objects, dtype=np.int64)
        self._dirty = False

    @property
    def array(self) -> np.ndarray:
        return self._mc

    def snapshot(self) -> np.ndarray:
        return self._mc.copy()

    def entry(self, i: int) -> int:
        return int(self._mc[i])

    def drain_dirty(self) -> bool:
        """Did any commit change the vector since the last drain?

        Supports the server's copy-on-write per-cycle snapshot: a clean
        vector means the previously frozen image can be reused outright.
        """
        dirty = self._dirty
        self._dirty = False
        return dirty

    def apply_commit(
        self, commit_cycle: int, read_set: Iterable[int], write_set: Iterable[int]
    ) -> None:
        ws = list({w for w in write_set})
        if ws:
            self._mc[ws] = commit_cycle
            self._dirty = True


class GroupedControlState:
    """Incrementally maintained ``n × g`` grouped matrix.

    Maintains, for each group ``s``, the column
    ``MC(·, s) = max_{j ∈ s} C(·, j)`` under the Theorem 2 commit rule.  A
    subtlety: the full-matrix rule *overwrites* columns of written objects,
    but a group's column is a max over members, so overwriting is only
    exact when the group is a singleton.  For larger groups the column max
    is monotone (old members' contributions may linger after being
    overwritten in ``C``), which keeps the grouped state *conservative*:
    ``MC(i, s) >= max_{j∈s} C(i, j)``, so every conflict the exact grouped
    matrix reports is still reported and the protocol stays safe (it only
    ever aborts more).  The exact recomputation used in tests lives in
    :meth:`repro.core.control_matrix.ControlMatrix.reduce_to_groups`.
    """

    def __init__(self, partition: Partition):
        self.partition = partition
        n, g = partition.num_objects, partition.num_groups
        self._mc = np.zeros((n, g), dtype=np.int64)
        self._exact = partition.num_groups == partition.num_objects
        self._dirty = False

    @property
    def array(self) -> np.ndarray:
        return self._mc

    def snapshot(self) -> np.ndarray:
        return self._mc.copy()

    def entry(self, i: int, group: int) -> int:
        return int(self._mc[i, group])

    def drain_dirty(self) -> bool:
        """Did any commit change the grouped matrix since the last drain?

        Supports the server's copy-on-write per-cycle snapshot, as in
        :meth:`LastWriteVector.drain_dirty`.
        """
        dirty = self._dirty
        self._dirty = False
        return dirty

    def apply_commit(
        self, commit_cycle: int, read_set: Iterable[int], write_set: Iterable[int]
    ) -> None:
        ws = sorted({w for w in write_set})
        if not ws:
            return
        self._dirty = True
        rs = sorted({r for r in read_set})
        part = self.partition
        read_groups = sorted({part.group_of(r) for r in rs})
        if read_groups:
            # max over the groups containing read objects over-approximates
            # max over read columns of C; exact when groups are singletons.
            new_column = self._mc[:, read_groups].max(axis=1)
        else:
            new_column = np.zeros(part.num_objects, dtype=np.int64)
        write_groups = sorted({part.group_of(w) for w in ws})
        for gidx in write_groups:
            if self._exact:
                self._mc[:, gidx] = new_column
            else:
                np.maximum(self._mc[:, gidx], new_column, out=self._mc[:, gidx])
        # writes dominate: entries (i ∈ WS, group of j ∈ WS) become the cycle
        self._mc[np.ix_(ws, write_groups)] = np.maximum(
            self._mc[np.ix_(ws, write_groups)], commit_cycle
        )
