"""APPROX: the paper's polynomial-time legality test (Section 3.1).

A history ``H`` is accepted iff

1. ``H_update`` is conflict serializable, and
2. for every read-only transaction ``t_R`` in ``H``, the serialization
   graph ``S_H(t_R)`` over ``LIVE_H(t_R)`` is acyclic.

APPROX accepts a *proper subset* of the legal (update-consistent) histories
(Theorem 6) and runs in polynomial time (Theorem 7).  The property-based
tests assert the inclusion against :mod:`repro.core.legality` on random
small histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import History
from .serialgraph import (
    conflict_graph,
    reader_serialization_graph,
)

__all__ = ["ApproxReport", "approx_accepts", "approx_report"]


@dataclass(frozen=True)
class ApproxReport:
    """Detailed outcome of running APPROX on a history."""

    accepted: bool
    update_serialization_order: Optional[Tuple[str, ...]]
    reader_verdicts: Dict[str, bool] = field(default_factory=dict)
    #: a cycle in H_update's conflict graph, when condition 1 fails
    update_cycle: Optional[Tuple[str, ...]] = None
    #: per-reader cycle in S_H(t_R), when condition 2 fails for that reader
    reader_cycles: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def rejected_readers(self) -> Tuple[str, ...]:
        return tuple(t for t, ok in sorted(self.reader_verdicts.items()) if not ok)


def approx_report(history: History) -> ApproxReport:
    """Run APPROX, returning per-condition diagnostics.

    Only committed transactions are considered (a scheduler decides
    legality over the committed projection); aborted transactions neither
    constrain the update sub-history nor count as readers.
    """
    committed = history.committed_projection()
    update = committed.update_subhistory()
    graph = conflict_graph(update)
    order = graph.topological_order()
    if order is None:
        cycle = graph.find_cycle()
        return ApproxReport(
            accepted=False,
            update_serialization_order=None,
            update_cycle=tuple(cycle) if cycle else None,
        )

    verdicts: Dict[str, bool] = {}
    cycles: Dict[str, Tuple[str, ...]] = {}
    for tid in committed.read_only_transactions():
        sg = reader_serialization_graph(committed, tid)
        ok = sg.is_acyclic()
        verdicts[tid] = ok
        if not ok:
            cyc = sg.find_cycle()
            if cyc:
                cycles[tid] = tuple(cyc)
    return ApproxReport(
        accepted=all(verdicts.values()),
        update_serialization_order=tuple(order),
        reader_verdicts=verdicts,
        reader_cycles=cycles,
    )


def approx_accepts(history: History) -> bool:
    """True iff APPROX accepts ``history`` (Section 3.1)."""
    return approx_report(history).accepted
