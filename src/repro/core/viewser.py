"""Exact view-serializability testing (for small histories).

A history is *view serializable* iff some serial order of its committed
transactions yields the same reads-from relation (including reads of the
initial state) and the same final writes.  The decision problem is
NP-complete (Papadimitriou), so this module provides an exact check that is
only intended for the history sizes the theory layer and the test suite
manipulate — a guard refuses absurdly large inputs instead of silently
taking forever.

Two procedures are exposed:

* :func:`is_view_serializable` / :func:`view_serialization_order` — exact
  search over serial orders with memoized pruning;
* :func:`view_equivalent` — check view equivalence of a history against a
  specific serial order, which the search uses and tests exercise directly.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .model import History, T0

__all__ = [
    "final_writes",
    "view_equivalent",
    "is_view_serializable",
    "view_serialization_order",
    "ViewSerializabilityLimitError",
]

#: Refuse exact search beyond this many committed transactions.
MAX_EXACT_TRANSACTIONS = 10


class ViewSerializabilityLimitError(ValueError):
    """Raised when a history is too large for the exact procedure."""


def final_writes(history: History) -> Dict[str, str]:
    """Map ``obj -> transaction`` whose write is last on ``obj``."""
    result: Dict[str, str] = {}
    for op in history:
        if op.is_write:
            result[op.obj or ""] = op.txn
    return result


def _serial_reads_from(order: Sequence[str], history: History) -> Dict[Tuple[str, str], str]:
    """Reads-from of the serial execution of ``order`` (same op sets)."""
    txns = history.transactions
    last_writer: Dict[str, str] = {}
    rf: Dict[Tuple[str, str], str] = {}
    for tid in order:
        txn = txns[tid]
        for obj in txn.read_set:
            rf[(tid, obj)] = last_writer.get(obj, T0)
        for obj in txn.write_set:
            last_writer[obj] = tid
    return rf


def view_equivalent(history: History, order: Sequence[str]) -> bool:
    """Is ``history`` view equivalent to the serial execution ``order``?

    Requires ``order`` to be a permutation of the committed transactions of
    ``history``.  Both the reads-from relation and the final writes must
    coincide.  Reads and writes *within* a transaction keep their program
    order, so per-transaction behaviour is characterised by the read/write
    sets, consistent with the paper's model (all reads precede all writes).
    """
    committed = history.committed_projection()
    tids = set(committed.transaction_ids)
    if set(order) != tids or len(order) != len(tids):
        raise ValueError("order must be a permutation of committed transactions")
    if _serial_reads_from(order, committed) != committed.reads_from:
        return False
    serial_final: Dict[str, str] = {}
    txns = committed.transactions
    for tid in order:
        for obj in txns[tid].write_set:
            serial_final[obj] = tid
    return serial_final == final_writes(committed)


def view_serialization_order(history: History) -> Optional[List[str]]:
    """A serial order view-equivalent to ``history``, or ``None``.

    Conflict serializability implies view serializability, so a conflict
    serialization order is tried first (this also makes the check cheap
    for serial histories, e.g. those built by the Appendix B reduction).
    Otherwise: exact search with prefix pruning — a partial order is
    viable only if every read issued so far observed the correct writer.
    """
    committed = history.committed_projection()
    tids: Tuple[str, ...] = committed.transaction_ids
    from .serialgraph import conflict_serialization_order

    csr_order = conflict_serialization_order(committed)
    if csr_order is not None:
        return csr_order
    if len(tids) > MAX_EXACT_TRANSACTIONS:
        raise ViewSerializabilityLimitError(
            f"{len(tids)} committed transactions exceed the exact-search limit "
            f"of {MAX_EXACT_TRANSACTIONS}"
        )
    target_rf = committed.reads_from
    target_final = final_writes(committed)
    txns = committed.transactions

    def extend(
        order: List[str],
        remaining: FrozenSet[str],
        last_writer: Dict[str, str],
    ) -> Optional[List[str]]:
        if not remaining:
            serial_final = dict(last_writer)
            return list(order) if serial_final == target_final else None
        for tid in sorted(remaining):
            txn = txns[tid]
            # every read of `tid` must observe the same writer as in history
            if any(
                target_rf[(tid, obj)] != last_writer.get(obj, T0)
                for obj in txn.read_set
            ):
                continue
            new_writer = dict(last_writer)
            for obj in txn.write_set:
                new_writer[obj] = tid
            order.append(tid)
            found = extend(order, remaining - {tid}, new_writer)
            if found is not None:
                return found
            order.pop()
        return None

    return extend([], frozenset(tids), {})


def is_view_serializable(history: History) -> bool:
    """True iff some serial order is view equivalent to ``history``."""
    return view_serialization_order(history) is not None
