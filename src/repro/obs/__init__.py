"""Deterministic observability: spans, telemetry registry, exporters.

The obs layer sits *outside* the deterministic simulation core in one
direction only: simulation code may emit sim-time-stamped spans into a
:class:`~repro.obs.tracer.Tracer`, but nothing in obs feeds back into
simulation behaviour.  Disabled tracing uses the :data:`NULL_TRACER`
singleton whose ``enabled`` flag short-circuits every hot-path guard, so
untraced runs stay bit-identical and allocation-free.

Wall-clock phase timing (:class:`~repro.obs.profiler.PhaseProfiler`)
lives here precisely because it is *not* deterministic; the REP010 lint
rule bans wall-clock reads inside ``repro/sim`` and ``repro/server``,
and this package is the sanctioned home for them.
"""

from .tracer import NULL_TRACER, NullTracer, Span, Tracer, canonical_spans
from .registry import TelemetryRegistry, registry_from_result
from .profiler import PhaseProfiler
from .export import (
    chrome_trace,
    spans_to_jsonl,
    summarize_spans,
    summarize_trace_events,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseProfiler",
    "Span",
    "TelemetryRegistry",
    "Tracer",
    "canonical_spans",
    "chrome_trace",
    "registry_from_result",
    "spans_to_jsonl",
    "summarize_spans",
    "summarize_trace_events",
]
