"""Sim-time span tracing with a bounded ring buffer.

A :class:`Span` is a flat record stamped entirely in *simulation time*
(bit units) — never wall clock — so traced runs are as deterministic as
untraced ones.  Spans are emitted into a :class:`Tracer`, a fixed-size
ring buffer: when full, the oldest spans are overwritten and counted in
``dropped`` rather than growing memory without bound.

The :data:`NULL_TRACER` singleton (an instance of :class:`NullTracer`,
a ``Tracer`` subclass with ``enabled = False`` and a no-op ``emit``) is
the default everywhere.  Hot paths guard bookkeeping writes with
``tracer.enabled`` — a plain class-attribute read — so disabled runs pay
no allocation and no per-event branch beyond that single check.

Span vocabulary (``track`` / ``name`` / ``status``):

========  =============  ===========================================
track     name           meaning
========  =============  ===========================================
client    attempt        one read-phase attempt; status ``ok`` or an
                         abort cause (``conflict``/``staleness``/
                         ``crash``/``uplink``)
client    txn            whole transaction, first submit to commit
client    uplink         update submission round-trip; status ``ok``,
                         ``conflict``, or an uplink-abort cause
client    uplink.retry   instant event: one lost submission retried
timeline  cycle          one broadcast image installed on the air
timeline  server.commit  instant event: server txn commit (``ok``) or
                         loss to a crash (``lost``)
timeline  crash          crash/recovery window, outage start to
                         recovery complete
========  =============  ===========================================

``track_id`` is the client id on the ``client`` track; on ``timeline``
it selects a lane: 0 = broadcast, 1 = server, 2 = recovery.
"""

from typing import List, NamedTuple, Sequence

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "canonical_spans",
]


class Span(NamedTuple):
    """One traced interval (or instant, when ``start == end``).

    Field order is load-bearing: sorting spans as plain tuples yields
    the canonical (start, end, track, track_id, name, status, detail)
    order used for cross-shard determinism comparisons.
    """

    start: float
    end: float
    track: str
    track_id: int
    name: str
    status: str
    detail: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Bounded ring buffer of spans.

    ``enabled`` is a class attribute so the hot-path guard
    ``tracer.enabled`` costs one attribute lookup and no per-instance
    storage; :class:`NullTracer` overrides it to ``False``.
    """

    enabled = True

    __slots__ = ("capacity", "_buffer", "_head", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: List[Span] = []
        self._head = 0
        self.dropped = 0

    def emit(
        self,
        start: float,
        end: float,
        track: str,
        track_id: int,
        name: str,
        status: str,
        detail: str,
    ) -> None:
        span = Span(start, end, track, track_id, name, status, detail)
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(span)
        else:
            buffer[self._head] = span
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._buffer)

    def export(self) -> List[Span]:
        """Spans in emission order (oldest surviving span first)."""
        if self._head == 0:
            return list(self._buffer)
        return self._buffer[self._head :] + self._buffer[: self._head]


class NullTracer(Tracer):
    """Disabled tracer: ``enabled`` is False and ``emit`` is a no-op.

    A real subclass (rather than a sentinel of another type) so every
    ``tracer: Tracer`` annotation stays honest.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(1)

    def emit(
        self,
        start: float,
        end: float,
        track: str,
        track_id: int,
        name: str,
        status: str,
        detail: str,
    ) -> None:
        return None


NULL_TRACER = NullTracer()


def canonical_spans(
    shard_spans: Sequence[Sequence[Span]], upto: float
) -> List[Span]:
    """Merge per-shard span streams into one canonical ordering.

    Spans that *start* after ``upto`` (the merged stop time) are
    truncated — the same predicate the timeline-metrics journal fold
    uses (``time <= upto``), so span counts reconcile with replayed
    counters.  Plain tuple sort gives a total order independent of
    shard count and emission interleaving.
    """
    merged = [
        span
        for spans in shard_spans
        for span in spans
        if span.start <= upto
    ]
    merged.sort()
    return merged
