"""Counter/gauge/histogram telemetry registry.

Generalises the ad-hoc scalar tallies on ``MetricsCollector`` (and the
(time, counter, delta) journal of ``RecordingTimelineMetrics``) into a
named instrument registry.  Instruments are created on first use and
kept in insertion order; :meth:`TelemetryRegistry.merge_from` combines
registries deterministically when callers merge in shard-index order —
the same contract ``MetricsCollector.merge_from`` honours.

:func:`registry_from_result` derives a registry from a finished
``SimulationResult``: because it reads the *merged* collector (whose
counters already crossed the shard and replay boundaries via
``merge_from`` / ``apply_journal``), the registry inherits shard-order
and replay correctness for free.
"""

from typing import Any, Dict, Iterable, List

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetryRegistry",
    "registry_from_result",
]


class Counter:
    """Monotonically increasing tally; merged by summation."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += delta

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time level; merged by maximum (high-water mark)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Power-of-two bucketed distribution; merged by adding counts.

    Bucket ``k`` counts observations in ``(2**(k-1), 2**k]``; bucket 0
    holds everything ``<= 1`` including zeros.  Exponential buckets keep
    the instrument O(log range) regardless of sample count, so mega-runs
    can afford one observation per commit.
    """

    __slots__ = ("name", "counts", "total", "sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        bucket = 0
        upper = 1.0
        while value > upper:
            upper *= 2.0
            bucket += 1
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge_from(self, other: "Histogram") -> None:
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.total += other.total
        self.sum += other.sum

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "total": self.total,
            "sum": self.sum,
            "buckets": {str(k): self.counts[k] for k in sorted(self.counts)},
        }


class TelemetryRegistry:
    """Named instruments, created on first use, in insertion order."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- combination ---------------------------------------------------
    def merge_from(self, other: "TelemetryRegistry") -> None:
        """Fold another registry in: counters sum, gauges take the max,
        histogram buckets add.  Callers merge in shard-index order so
        instrument creation order — and every rendered view — is
        deterministic."""
        for name, counter in other._counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            mine.value = max(mine.value, gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(name).merge_from(hist)

    # -- views ----------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.as_dict() for n, h in self._histograms.items()},
        }

    def render(self) -> str:
        """Plain-text table for terminal output."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            width = max(len(n) for n in self._counters)
            for name, counter in self._counters.items():
                value = counter.value
                shown = int(value) if value == int(value) else value
                lines.append(f"  {name:<{width}}  {shown}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(n) for n in self._gauges)
            for name, gauge in self._gauges.items():
                lines.append(f"  {name:<{width}}  {gauge.value:g}")
        if self._histograms:
            lines.append("histograms:")
            for name, hist in self._histograms.items():
                lines.append(
                    f"  {name}: n={hist.total} mean={hist.mean:.1f} "
                    f"buckets={{{', '.join(f'2^{k}: {v}' for k, v in sorted(hist.counts.items()))}}}"
                )
        return "\n".join(lines)


def registry_from_result(result: Any) -> TelemetryRegistry:
    """Build a registry from a finished ``SimulationResult``.

    Counters mirror every ``MetricsCollector._COUNTER_FIELDS`` tally
    plus ``commits``; gauges carry run extent (stop time, kernel
    events); histograms bucket per-commit response times and restart
    counts straight from the array accumulators (``keep_samples`` is
    irrelevant — no sample objects are materialised).  Timeline cache
    stats, when present, land under ``timeline.*``.
    """
    registry = TelemetryRegistry()
    metrics = result.metrics
    registry.counter("commits").inc(metrics.commit_count)
    for name in type(metrics)._COUNTER_FIELDS:
        registry.counter(name).inc(float(getattr(metrics, name)))
    registry.gauge("sim_time").set(float(result.sim_time))
    registry.gauge("events").set(float(result.events))
    count = metrics._count
    if count:
        responses = (
            metrics._commit_times[:count] - metrics._submit_times[:count]
        ).tolist()
        registry.histogram("response_time_bits").observe_many(responses)
        registry.histogram("restarts").observe_many(
            metrics._restart_counts[:count].tolist()
        )
    stats = getattr(result, "timeline_stats", None)
    if stats:
        for key, value in stats.items():
            if isinstance(value, bool):
                registry.counter(f"timeline.{key}").inc(float(value))
            elif isinstance(value, (int, float)):
                registry.counter(f"timeline.{key}").inc(float(value))
    return registry
