"""Wall-clock phase timing for the harness, outside the deterministic core.

The simulator itself may never read the wall clock (REP001/REP010); the
harness around it — shard setup, timeline record/replay, merge, drive —
legitimately wants to know where real seconds go.  ``PhaseProfiler``
accumulates ``perf_counter`` deltas per named phase and renders to a
plain dict for BENCH_scaling.json points and ``SimulationResult.profile``.
"""

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase.

    Phases may repeat (e.g. a ``shards`` phase entered once per
    sequential worker); durations accumulate.  Not thread-safe — one
    profiler per orchestrating call.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def as_dict(self) -> Dict[str, float]:
        """Phase → seconds, rounded to microseconds, insertion order."""
        return {name: round(sec, 6) for name, sec in self._seconds.items()}
