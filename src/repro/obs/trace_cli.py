"""The ``repro-trace`` command: traced runs, trace inspection, overhead.

Subcommands::

    repro-trace run --out trace.json          # traced smoke run -> Chrome trace
    repro-trace run --spans spans.jsonl       # raw span stream, one per line
    repro-trace summarize trace.json          # per-span-kind table from a file
    repro-trace overhead --output ratio.json  # traced vs untraced wall clock

The default ``run`` configuration is the observability smoke scenario:
a small faulted (doze + mid-run server crash + lossy uplink) 2-shard
replay-mode run under the cohort executor — the same shape the
determinism tests pin — so the produced trace exercises every span
kind: client attempts/transactions/uplinks, broadcast cycles, server
commits, and the crash-recovery window.  The emitted JSON loads
directly in Perfetto / chrome://tracing.

Exit codes: **0** success, **1** the overhead check exceeded its bound
(only with ``--fail-above``), **2** usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import List, Optional

from .export import chrome_trace, summarize_spans, summarize_trace_events
from .registry import registry_from_result

__all__ = ["main", "build_parser", "smoke_config"]


def smoke_config(
    *,
    transactions: int = 10,
    seed: int = 7,
    shards: int = 2,
    timeline_mode: str = "replay",
    tracing: bool = True,
    trace_buffer: int = 1 << 20,
):
    """The smoke scenario: small, faulted, sharded, every span kind."""
    from ..sim import DozeInterval, FaultPlan, ServerCrash, SimulationConfig

    base = dict(
        protocol="f-matrix",
        num_objects=40,
        object_size_bits=1024,
        timestamp_bits=4,
        modulo_timestamps=True,
        num_clients=6,
        num_update_clients=2,
        client_update_fraction=0.3,
        num_client_transactions=transactions,
        client_txn_length=4,
        seed=seed,
    )
    cb = SimulationConfig(**base).cycle_bits
    return SimulationConfig(
        client_executor="cohort",
        shards=shards,
        timeline_mode=timeline_mode,
        tracing=tracing,
        trace_buffer=trace_buffer,
        faults=FaultPlan(
            doze=(DozeInterval(1, 5 * cb, 3 * cb),),
            crashes=(ServerCrash(14.5 * cb, 2.5 * cb),),
            uplink_loss_probability=0.3,
        ),
        **base,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Traced simulation runs and Chrome-trace tooling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run the traced smoke scenario and export its spans"
    )
    run.add_argument("--transactions", type=int, default=10)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--shards",
        type=int,
        default=2,
        help="reader-population shards (each becomes a Perfetto process lane)",
    )
    run.add_argument(
        "--timeline-mode",
        choices=["recompute", "replay"],
        default="replay",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard worker processes (0 = sequential in-process, the "
        "default: smoke runs are small and determinism matters more "
        "than speed)",
    )
    run.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="TRACE.JSON",
        help="write the Chrome trace-event document here",
    )
    run.add_argument(
        "--spans",
        type=pathlib.Path,
        default=None,
        metavar="SPANS.JSONL",
        help="write the canonical span stream here, one JSON object per line",
    )
    run.add_argument(
        "--summary",
        action="store_true",
        help="print the span summary table and telemetry registry",
    )

    summarize = sub.add_parser(
        "summarize", help="summarize a previously written Chrome trace"
    )
    summarize.add_argument("trace", type=pathlib.Path, metavar="TRACE.JSON")

    overhead = sub.add_parser(
        "overhead",
        help="compare traced vs untraced wall clock on the smoke scenario",
    )
    overhead.add_argument("--transactions", type=int, default=10)
    overhead.add_argument("--seed", type=int, default=7)
    overhead.add_argument("--shards", type=int, default=2)
    overhead.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per variant; the minimum is reported (default 3)",
    )
    overhead.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="RATIO.JSON",
        help="write {traced_s, untraced_s, ratio} as JSON",
    )
    overhead.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 if traced/untraced exceeds this (omit to only report)",
    )
    return parser


def _execute(config):
    from ..sim import run_simulation

    return run_simulation(config)


def _run_smoke(args: argparse.Namespace):
    from ..sim.shard import run_sharded

    config = smoke_config(
        transactions=args.transactions,
        seed=args.seed,
        shards=args.shards,
        timeline_mode=args.timeline_mode,
    )
    if config.shards > 1:
        return run_sharded(config, workers=args.workers)
    return _execute(config)


def _cmd_run(args: argparse.Namespace) -> int:
    result = _run_smoke(args)
    spans = result.spans or []
    registry = result.telemetry()
    # truncate each lane with the same predicate canonical_spans uses, so
    # the artifact's span counts reconcile with the counters it carries
    # (the raw primary stream includes extension-phase timeline spans
    # beyond the merged stop time)
    lanes = [
        [s for s in lane if s.start <= result.sim_time]
        for lane in (result.shard_spans or [spans])
    ]
    document = chrome_trace(
        lanes,
        counters=registry.as_dict()["counters"],
        profile=result.profile,
    )
    print(
        f"traced run: {len(spans)} spans across "
        f"{len(result.shard_spans or [spans])} shard lane(s), "
        f"{result.spans_dropped} dropped, "
        f"{result.metrics.commit_count} commits"
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(document) + "\n")
        print(f"wrote {args.out}")
    if args.spans is not None:
        from .export import spans_to_jsonl

        args.spans.parent.mkdir(parents=True, exist_ok=True)
        args.spans.write_text(spans_to_jsonl(spans) + "\n")
        print(f"wrote {args.spans}")
    if args.summary:
        print()
        print(summarize_spans(spans))
        print()
        print(registry.render())
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    document = json.loads(args.trace.read_text())
    print(summarize_trace_events(document))
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from ..sim.shard import run_sharded

    def measure(tracing: bool) -> float:
        best = float("inf")
        for _ in range(max(1, args.repeats)):
            config = smoke_config(
                transactions=args.transactions,
                seed=args.seed,
                shards=args.shards,
                tracing=tracing,
            )
            start = time.perf_counter()
            if config.shards > 1:
                run_sharded(config, workers=0)
            else:
                _execute(config)
            best = min(best, time.perf_counter() - start)
        return best

    untraced = measure(False)
    traced = measure(True)
    ratio = traced / untraced if untraced > 0 else float("inf")
    payload = {
        "untraced_s": round(untraced, 6),
        "traced_s": round(traced, 6),
        "ratio": round(ratio, 4),
        "repeats": args.repeats,
        "transactions": args.transactions,
        "shards": args.shards,
    }
    print(
        f"untraced {untraced:.3f}s  traced {traced:.3f}s  "
        f"ratio {ratio:.3f}x (best of {args.repeats})"
    )
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.fail_above is not None and ratio > args.fail_above:
        print(f"overhead {ratio:.3f}x exceeds bound {args.fail_above:.2f}x")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "summarize":
        return _cmd_summarize(args)
    return _cmd_overhead(args)


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
