"""Span exporters: JSON-lines, Chrome trace-event format, text summary.

The Chrome trace-event output loads directly in Perfetto / chrome://
tracing.  Sim-time bit units are written as microseconds (``ts``/
``dur``), which renders one bit as one "µs" on the timeline — the
absolute unit is meaningless to the viewer, the relative layout is
exact.  Shards become process lanes (pid = shard index), clients and
the timeline tracks become threads within them.
"""

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .tracer import Span

__all__ = [
    "chrome_trace",
    "spans_to_jsonl",
    "summarize_spans",
    "summarize_trace_events",
]

#: thread names for the timeline track's lanes (``Span.track_id``)
_TIMELINE_LANES = {0: "broadcast", 1: "server", 2: "recovery"}

#: offset separating timeline-lane tids from client tids within a pid
_TIMELINE_TID_BASE = 1_000_000_000


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, fields in Span order."""
    return "\n".join(
        json.dumps(
            {
                "start": span.start,
                "end": span.end,
                "track": span.track,
                "track_id": span.track_id,
                "name": span.name,
                "status": span.status,
                "detail": span.detail,
            },
            sort_keys=True,
        )
        for span in spans
    )


def _thread_name(span: Span) -> str:
    if span.track == "timeline":
        return _TIMELINE_LANES.get(span.track_id, f"timeline {span.track_id}")
    return f"client {span.track_id}"


def _tid(span: Span) -> int:
    if span.track == "timeline":
        return _TIMELINE_TID_BASE + span.track_id
    return span.track_id


def chrome_trace(
    shard_spans: Sequence[Sequence[Span]],
    counters: Optional[Dict[str, float]] = None,
    profile: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Chrome trace-event JSON document (a dict, ready to ``json.dump``).

    ``shard_spans[0]`` is the primary shard (which also owns the
    timeline track); each shard becomes a process lane.  ``counters``
    and ``profile`` ride along under ``otherData`` so one artifact
    carries spans, end-of-run tallies, and wall-clock phase times.
    """
    events: List[Dict[str, Any]] = []
    for pid, spans in enumerate(shard_spans):
        label = "shard 0 (timeline)" if pid == 0 else f"shard {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        named: Dict[int, str] = {}
        for span in spans:
            tid = _tid(span)
            if tid not in named:
                named[tid] = _thread_name(span)
        for tid in sorted(named):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": named[tid]},
                }
            )
        for span in spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.track,
                    "ph": "X",
                    "ts": span.start,
                    "dur": span.end - span.start,
                    "pid": pid,
                    "tid": _tid(span),
                    "args": {"status": span.status, "detail": span.detail},
                }
            )
    other: Dict[str, Any] = {"time_unit": "bits (rendered as us)"}
    if counters is not None:
        other["counters"] = counters
    if profile is not None:
        other["profile_seconds"] = profile
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def summarize_spans(spans: Sequence[Span]) -> str:
    """Terminal summary table: per (track, name) count/duration/status."""
    rows: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        key = f"{span.track}/{span.name}"
        row = rows.get(key)
        if row is None:
            row = rows[key] = {"count": 0, "bits": 0.0, "status": {}}
        row["count"] += 1
        row["bits"] += span.end - span.start
        row["status"][span.status] = row["status"].get(span.status, 0) + 1
    if not rows:
        return "no spans"
    width = max(len(k) for k in rows)
    lines = [
        f"{'span':<{width}}  {'count':>7}  {'mean bits':>10}  statuses"
    ]
    for key in sorted(rows):
        row = rows[key]
        mean = row["bits"] / row["count"]
        statuses = ", ".join(
            f"{status}={count}"
            for status, count in sorted(row["status"].items())
        )
        lines.append(f"{key:<{width}}  {row['count']:>7}  {mean:>10.1f}  {statuses}")
    return "\n".join(lines)


def summarize_trace_events(document: Dict[str, Any]) -> str:
    """Summarize a loaded Chrome trace document (the ``summarize``
    subcommand of ``repro-trace``)."""
    spans = [
        Span(
            float(ev["ts"]),
            float(ev["ts"]) + float(ev.get("dur", 0.0)),
            str(ev.get("cat", "")),
            int(ev["tid"]) % _TIMELINE_TID_BASE,
            str(ev["name"]),
            str(ev.get("args", {}).get("status", "")),
            str(ev.get("args", {}).get("detail", "")),
        )
        for ev in document.get("traceEvents", [])
        if ev.get("ph") == "X"
    ]
    lines = [summarize_spans(spans)]
    other = document.get("otherData", {})
    counters = other.get("counters")
    if counters:
        interesting = {
            k: v for k, v in counters.items() if v
        }
        lines.append("")
        lines.append("nonzero counters:")
        width = max(len(k) for k in interesting) if interesting else 0
        for name in sorted(interesting):
            value = interesting[name]
            shown = int(value) if value == int(value) else value
            lines.append(f"  {name:<{width}}  {shown}")
    profile = other.get("profile_seconds")
    if profile:
        lines.append("")
        lines.append("wall-clock phases (s):")
        width = max(len(k) for k in profile)
        for name, seconds in profile.items():
            lines.append(f"  {name:<{width}}  {seconds:.3f}")
    return "\n".join(lines)
