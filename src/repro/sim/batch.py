"""Replicated simulation runs: independent seeds, pooled statistics.

A single run's per-transaction response times are autocorrelated (they
share broadcast cycles and server state), so the per-sample t-interval of
:mod:`repro.sim.metrics` is optimistic.  The methodologically clean
estimate replicates the whole simulation across independent seeds and
treats per-replication means as i.i.d. samples; this module provides
that, with optional process-level parallelism (each replication is an
independent simulation, embarrassingly parallel).

    from repro.sim.batch import replicate
    pooled = replicate(config, replications=8, workers=4)
    print(pooled.response_time.mean, pooled.response_time.ci)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .config import SimulationConfig
from .metrics import SummaryStat, summarize
from .simulation import run_simulation

__all__ = ["ReplicatedResult", "replication_seeds", "replicate"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Pooled statistics over independent replications."""

    config: SimulationConfig
    seeds: Tuple[int, ...]
    #: per-replication means, in seed order
    response_means: Tuple[float, ...]
    restart_means: Tuple[float, ...]
    #: cross-replication summaries (the honest confidence intervals)
    response_time: SummaryStat
    restart_ratio: SummaryStat

    @property
    def replications(self) -> int:
        return len(self.seeds)


def replication_seeds(base_seed: int, replications: int) -> Tuple[int, ...]:
    """Deterministic, well-separated seeds for the replications."""
    if replications < 1:
        raise ValueError("need at least one replication")
    return tuple(base_seed + 7919 * k for k in range(replications))


def _one_replication(args: Tuple[SimulationConfig, int]) -> Tuple[float, float]:
    config, seed = args
    result = run_simulation(config.replace(seed=seed))
    return (result.response_time.mean, result.restart_ratio.mean)


def replicate(
    config: SimulationConfig,
    *,
    replications: int = 5,
    workers: Optional[int] = None,
) -> ReplicatedResult:
    """Run ``replications`` independent simulations and pool their means.

    ``workers`` > 1 fans the replications out over processes (configs
    and results are plain picklable values).  ``workers=None`` or 1 runs
    sequentially.
    """
    seeds = replication_seeds(config.seed, replications)
    jobs = [(config, seed) for seed in seeds]
    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_one_replication, jobs))
    else:
        outcomes = [_one_replication(job) for job in jobs]
    response_means = tuple(r for r, _x in outcomes)
    restart_means = tuple(x for _r, x in outcomes)
    return ReplicatedResult(
        config=config,
        seeds=seeds,
        response_means=response_means,
        restart_means=restart_means,
        response_time=summarize(list(response_means)),
        restart_ratio=summarize(list(restart_means)),
    )
