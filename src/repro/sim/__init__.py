"""Discrete-event simulation of the broadcast-disk system (Sec. 4 setup)."""

from .arena import (
    TIMELINE_CACHE,
    TimelineArena,
    TimelineCache,
    TimelineExhausted,
    TimelineHandle,
    TimelineView,
    timeline_cacheable,
    timeline_fingerprint,
)
from .batch import ReplicatedResult, replicate, replication_seeds
from .cohort import CohortClient, CohortExecutor
from .config import KILOBYTE_BITS, SimulationConfig
from .engine import Process, Simulator, Timeout, WaitUntil, Waive
from .faults import DozeInterval, FaultPlan, FaultRuntime, ServerCrash
from .metrics import (
    MetricsCollector,
    SummaryStat,
    TransactionSample,
    batch_means,
    summarize,
)
from .shard import ShardExecutionError, reader_slices, run_sharded
from .simulation import (
    BroadcastSimulation,
    ShardSlice,
    SimulationResult,
    run_simulation,
)
from .trace import ClientCommitRecord, TraceRecorder

__all__ = [
    "SimulationConfig",
    "KILOBYTE_BITS",
    "Simulator",
    "Process",
    "Timeout",
    "WaitUntil",
    "Waive",
    "MetricsCollector",
    "SummaryStat",
    "TransactionSample",
    "summarize",
    "batch_means",
    "replicate",
    "ReplicatedResult",
    "replication_seeds",
    "BroadcastSimulation",
    "SimulationResult",
    "run_simulation",
    "ShardSlice",
    "run_sharded",
    "reader_slices",
    "ShardExecutionError",
    "TimelineArena",
    "TimelineHandle",
    "TimelineView",
    "TimelineExhausted",
    "TimelineCache",
    "TIMELINE_CACHE",
    "timeline_cacheable",
    "timeline_fingerprint",
    "CohortClient",
    "CohortExecutor",
    "TraceRecorder",
    "ClientCommitRecord",
    "FaultPlan",
    "FaultRuntime",
    "DozeInterval",
    "ServerCrash",
]
