"""Slot-coalesced cohort execution for large read-only client populations.

The per-process client path (:func:`repro.sim.processes.client_process`)
pays one generator step plus one heapq push/pop **per client per event**:
a think-time timeout, then a wait for the object's broadcast slot, for
every read of every client.  With hundreds or thousands of clients the
simulation kernel, not the protocol work, dominates wall-clock time.

The cohort executor removes that per-client constant factor with three
observations, none of which changes a single simulated outcome:

1. **Think-time events are unobservable.**  Between a commit (or a
   delivered read) and the next slot wait, a client only draws its think
   delay and computes the slot of its next object — no shared state is
   read at the think-expiry instant.  The chain ``now → think expiry →
   slot end`` therefore collapses into one local computation, eliminating
   the timeout event entirely.

2. **Slot waits coalesce.**  Every client waiting for the same broadcast
   slot resumes at the same instant and reads the same object from the
   same frozen cycle image.  Bucketing them (a calendar keyed by slot-end
   time) fires **one** simulator event per occupied slot instead of one
   per client.

3. **Validation batches.**  Within a bucket all clients evaluate the same
   protocol's read condition against the same control snapshot, so the
   whole bucket is validated with one fancy-indexed comparison
   (:func:`repro.core.validators.validate_read_batch`).

Determinism is preserved exactly: each client draws from its private RNG
stream in the same order the per-process path would, and bucket members
are processed in the order their slot waits would have been *issued*
(think-expiry time, ties by enqueue order) — which is the order the
per-process path's same-time events fire in.  Exponential delays are
drawn inline as ``-log(1 - rng.random()) / lambd`` — the exact formula of
:meth:`random.Random.expovariate`, consuming the same single draw — so
the values are bit-identical to the per-process path's.  Oracle tests
assert bit-identical commits, restarts, response times and listening bits
against the per-process path on randomized configs.

Update transactions are coalesced too: an update's read phase rides the
same slot calendar as everyone else's, and its uplink round-trip becomes
a chain of scheduled arrival callbacks — the submission reaches the
server (a real event, where loss draws and the server's backward
validation happen) exactly when the per-process ``_submit_update``
generator would have resumed, and the verdict's consequences are
computed inline (they touch only client-private state).  Uplink-loss
Bernoullis come from per-client :mod:`numpy` streams spawned via
``SeedSequence((seed, client))`` — both executors consume the same
per-client sequence, so faulty runs too are executor- and
shard-layout-independent.

Fault plans (docs/FAULTS.md) run inside the batched path as of PR 7:
doze intervals shift a member's seek time exactly like the per-process
``doze_wake`` wait, crash dead-air and doze slot misses are checked per
member at slot-fire time (``slot_heard``), and runs under a modulo
staleness guard take a scalar ``runtime.deliver`` lane (the guard
consults per-runtime rejoin state that batch validation cannot see).
"""

from __future__ import annotations

import random
from functools import partial
from math import log as _log
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..broadcast.layout import BroadcastLayout, FlatLayout
from ..broadcast.program import BroadcastCycle
from ..client.cache import QuasiCache
from ..client.runtime import ClientUpdateTransactionRuntime, ReadOnlyTransactionRuntime
from ..core.validators import (
    ReadValidator,
    validate_read_batch,
    validate_read_batch_inorder,
)
from ..obs.tracer import NULL_TRACER, Tracer
from ..server.server import BroadcastServer
from .config import SimulationConfig
from .engine import Simulator
from .metrics import MetricsCollector
from .processes import SharedState
from .trace import TraceRecorder

__all__ = ["CohortClient", "CohortExecutor"]


class CohortClient:
    """Per-client simulation state driven by the cohort executor."""

    __slots__ = (
        "client_id",
        "workload",
        "validator",
        "rng",
        "cache",
        "runtime",
        "txn_index",
        "txn_len",
        "submit_time",
        "restarts",
        "is_update",
        "write_objs",
        "uplink_retries",
        "attempt_start",
        "uplink_start",
    )

    def __init__(
        self,
        client_id: int,
        workload: object,
        validator: ReadValidator,
        rng: random.Random,
        cache: Optional[QuasiCache],
    ) -> None:
        self.client_id = client_id
        self.workload = workload
        self.validator = validator
        self.rng = rng
        self.cache = cache
        self.runtime: Optional[ReadOnlyTransactionRuntime] = None
        self.txn_index = 0
        self.txn_len = 0
        self.submit_time = 0.0
        self.restarts = 0
        self.is_update = False
        self.write_objs: List[int] = []
        self.uplink_retries = 0
        # span bookkeeping; only maintained when the executor's tracer
        # is enabled (guarded at every write site)
        self.attempt_start = 0.0
        self.uplink_start = 0.0


class _Bucket:
    """Clients awaiting one broadcast slot (same object, same cycle)."""

    __slots__ = ("obj", "cycle", "members")

    def __init__(self, obj: int, cycle: int) -> None:
        self.obj = obj
        self.cycle = cycle
        #: (issue time, enqueue order, client) — sorted before processing
        #: so clients fire in the order their per-process WaitUntil
        #: events would have been pushed
        self.members: List[Tuple[float, int, CohortClient]] = []


class CohortExecutor:
    """Runs a client population through slot-coalesced buckets."""

    def __init__(
        self,
        *,
        sim: Simulator,
        config: SimulationConfig,
        layout: BroadcastLayout,
        state: SharedState,
        server: BroadcastServer,
        metrics: MetricsCollector,
        clients: Sequence[CohortClient],
        trace: Optional[TraceRecorder] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.layout = layout
        self.state = state
        self.server = server
        self.metrics = metrics
        self.trace = trace
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clients = list(clients)
        self.faults = state.faults
        #: the paper's max-cycles rejoin bound, active under modulo
        #: timestamps with faults — forces the scalar deliver lane
        self._staleness = (
            self.faults.staleness_window if self.faults is not None else None
        )
        self._half_rtt = config.uplink_round_trip / 2.0
        self._buckets: Dict[float, _Bucket] = {}
        #: (time, fire-callback) pairs not yet pushed — flushed in one
        #: schedule_many call per entry point to cut heapq churn
        self._new_buckets: List[Tuple[float, Callable[[], None]]] = []
        self._enqueue_order = 0
        # exponential-delay rates, precomputed exactly as the per-process
        # path evaluates them (1.0 / mean), so inline draws divide by the
        # bit-identical lambda
        self._op_lambd = 1.0 / config.mean_inter_operation_delay
        self._txn_lambd = 1.0 / config.mean_inter_transaction_delay
        # flat layouts are the common case: their slot timing is pure
        # arithmetic, inlined in _seek_slot; other layouts go through
        # layout.next_read
        if isinstance(layout, FlatLayout):
            self._flat_offsets: Optional[List[int]] = [
                layout.slot_end_offset(obj) for obj in range(layout.num_objects)
            ]
        else:
            self._flat_offsets = None
        self._cycle_bits = layout.cycle_bits
        self._slot_bits = layout.slot_bits  # type: ignore[attr-defined]
        # cache-less uniform populations with absolute timestamps satisfy
        # validate_read_batch_inorder's precondition for every bucket
        # (checked once here instead of per member per bucket)
        self._batch_validate = validate_read_batch
        if (
            all(c.cache is None for c in self.clients)
            # rep: allow-client-loop — one startup scan, not a hot path
            and len({c.validator.__class__ for c in self.clients}) == 1
            and all(c.validator._vectorisable for c in self.clients)
        ):
            self._batch_validate = validate_read_batch_inorder

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin every client's first transaction (call before run)."""
        config = self.config
        for client in self.clients:
            if config.num_client_transactions <= 0:
                self.state.clients_done += 1
                continue
            tid, objects = self._draw_transaction(client)
            self._begin_txn(client, 0.0, tid, objects)
            self._advance(client, 0.0, first=True)
        self._flush_schedules()

    # ------------------------------------------------------------------
    # transaction bookkeeping
    # ------------------------------------------------------------------
    def _draw_transaction(self, client: CohortClient) -> Tuple[str, Tuple[int, ...]]:
        tid, objects = client.workload.next_transaction()  # type: ignore[attr-defined]
        return f"cl{client.client_id}.{tid}", objects

    def _draw_is_update(self, client: CohortClient) -> bool:
        # mirrors client_process: both gates short-circuit, so no RNG
        # draw happens for disabled or non-update-capable clients
        return (
            self.config.client_update_fraction > 0.0
            and self.config.update_capable(client.client_id)
            and client.rng.random() < self.config.client_update_fraction
        )

    def _begin_txn(
        self,
        client: CohortClient,
        submit_time: float,
        tid: str,
        objects: Sequence[int],
    ) -> None:
        """Install the client's next transaction (read-only or update).

        The update draw consumes the same client-RNG value at the same
        point as ``client_process``; an update's read phase then rides
        the slot calendar like any other — only its completion diverges
        (into the uplink chain instead of an immediate commit record).
        """
        if self._draw_is_update(client):
            client.runtime = ClientUpdateTransactionRuntime(
                tid, objects, client.validator, staleness_window=self._staleness
            )
            num_writes = max(
                1, round(len(objects) * self.config.client_update_write_fraction)
            )
            client.write_objs = list(objects[:num_writes])
            client.is_update = True
        else:
            client.runtime = ReadOnlyTransactionRuntime(
                tid, objects, client.validator, staleness_window=self._staleness
            )
            client.is_update = False
        client.txn_len = len(client.runtime.objects)
        client.submit_time = submit_time
        client.restarts = 0
        if self.tracer.enabled:
            # the first attempt starts the instant the transaction is
            # submitted (the per-process loop-top ``sim.now``)
            client.attempt_start = submit_time

    def _complete_read_phase(
        self, client: CohortClient, at_time: float
    ) -> Optional[float]:
        """All reads validated at ``at_time``.

        Read-only transactions commit on the spot; updates buffer their
        writes and enter the uplink chain.  Returns the next
        transaction's start time, or ``None`` when the client left the
        calendar (finished, or awaiting an uplink verdict).
        """
        runtime = client.runtime
        assert runtime is not None
        runtime.commit()
        if client.is_update:
            self._begin_uplink(client, at_time)
            return None
        return self._finish_txn(client, at_time)

    def _finish_txn(self, client: CohortClient, commit_time: float) -> Optional[float]:
        """Record a commit; draw the inter-txn delay; set up what's next.

        Returns the next transaction's start time, or ``None`` when the
        client has no transactions left.
        """
        runtime = client.runtime
        assert runtime is not None
        self.metrics.record_commit(
            runtime.tid, client.submit_time, commit_time, client.restarts
        )
        if self.tracer.enabled:
            self.tracer.emit(
                client.attempt_start, commit_time, "client", client.client_id,
                "attempt", "ok", runtime.tid,
            )
            self.tracer.emit(
                client.submit_time, commit_time, "client", client.client_id,
                "txn", "ok", runtime.tid,
            )
        if self.trace is not None:
            self.trace.record_session_commit(client.client_id, runtime.tid)
            if not client.is_update:
                self.trace.record_client_commit(
                    runtime.tid, runtime.versions, runtime.reads
                )
        delay = -_log(1.0 - client.rng.random()) / self._txn_lambd
        start_time = commit_time + delay
        client.txn_index += 1
        if client.txn_index >= self.config.num_client_transactions:
            # the per-process client is done only after its trailing
            # inter-transaction delay elapses — keep that as a real event
            # so the run's stop time matches exactly
            self.sim.schedule(start_time, partial(self._client_done, client))
            return None
        tid, objects = self._draw_transaction(client)
        self._begin_txn(client, start_time, tid, objects)
        return start_time

    def _client_done(self, client: CohortClient) -> None:
        self.state.clients_done += 1

    # ------------------------------------------------------------------
    # the inline chain: think delays, cache hits, commits
    # ------------------------------------------------------------------
    def _advance(self, client: CohortClient, now: float, first: bool) -> None:
        """Drive ``client`` forward from ``now`` until it blocks on a
        broadcast slot, hands off to an update process, or finishes.

        Collapses the per-process chain of think-time timeouts and cache
        hits into local computation: every value observed (cache content,
        validator state, RNG draws) is private to the client, so nothing
        the rest of the simulation does between ``now`` and the computed
        slot wait can change the outcome.
        """
        config = self.config
        metrics = self.metrics
        cache = client.cache
        random_ = client.rng.random
        op_lambd = self._op_lambd
        delay_first = config.delay_before_first_operation
        while True:
            runtime = client.runtime
            assert runtime is not None
            issue = now
            if not first or delay_first:
                issue = now - _log(1.0 - random_()) / op_lambd
            obj = runtime.next_object
            assert obj is not None
            entry = cache.lookup(obj, issue) if cache is not None else None
            if entry is None:
                self._seek_slot(client, obj, issue)
                return
            metrics.cache_hits += 1
            outcome = runtime.deliver(entry.as_broadcast())
            if outcome.ok:
                metrics.reads_delivered += 1
                if runtime.is_done:
                    start_time = self._complete_read_phase(client, issue)
                    if start_time is None:
                        return
                    now, first = start_time, True
                else:
                    now, first = issue, False
            else:
                metrics.reads_rejected += 1
                cause = "staleness" if outcome.stale else "conflict"
                metrics.record_abort(cause)
                assert cache is not None
                cache.evict(outcome.obj)
                for read_obj, _cycle in runtime.reads:
                    cache.evict(read_obj)
                client.restarts += 1
                runtime.restart()
                now, first = issue + config.restart_delay, True
                if self.tracer.enabled:
                    self.tracer.emit(
                        client.attempt_start, issue, "client", client.client_id,
                        "attempt", cause, runtime.tid,
                    )
                    client.attempt_start = now

    # ------------------------------------------------------------------
    # the slot calendar
    # ------------------------------------------------------------------
    def _seek_slot(self, client: CohortClient, obj: int, issue: float) -> None:
        faults = self.faults
        if faults is not None:
            # the per-process path checks the (static) doze schedule at
            # seek time and fast-forwards to the rejoin; the member's
            # issue time becomes the wake — the instant its per-process
            # WaitUntil(hit.time) would have been pushed
            wake = faults.doze_wake(client.client_id, issue)
            if wake is not None:
                issue = wake
        offsets = self._flat_offsets
        if offsets is not None:
            # FlatLayout.next_read, inlined (pure arithmetic, no SlotHit)
            cycle_bits = self._cycle_bits
            cycle = int(issue // cycle_bits) + 1
            end = (cycle - 1) * cycle_bits + offsets[obj]
            if cycle > 1 and end - cycle_bits >= issue:
                cycle -= 1
                end -= cycle_bits
            elif end < issue:
                cycle += 1
                end += cycle_bits
        else:
            hit = self.layout.next_read(obj, issue)
            end, cycle = hit.time, hit.cycle
        bucket = self._buckets.get(end)
        if bucket is None:
            bucket = _Bucket(obj, cycle)
            self._buckets[end] = bucket
            self._new_buckets.append((end, partial(self._fire, end)))
        order = self._enqueue_order
        self._enqueue_order = order + 1
        bucket.members.append((issue, order, client))

    def _flush_schedules(self) -> None:
        if self._new_buckets:
            self.sim.schedule_many(self._new_buckets)
            self._new_buckets.clear()

    def _fire(self, time: float) -> None:
        """Process one occupied slot: every client whose wait ends now."""
        bucket = self._buckets.pop(time)
        members = bucket.members
        if len(members) > 1:
            members.sort()
        config = self.config
        metrics = self.metrics
        obj = bucket.obj

        # phase 1 — faults and radio loss: each missed slot re-seeks the
        # object's next appearance (checked per client, in issue order,
        # exactly as the per-process loop would at its own slot event:
        # doze/dead-air first, then the loss draw — an unheard slot
        # consumes no loss randomness)
        loss = config.broadcast_loss_probability
        faults = self.faults
        if faults is not None:
            slot_start = time - self._slot_bits
            survivors: List[CohortClient] = []
            for _issue, _order, client in members:
                if not faults.slot_heard(
                    client.client_id, slot_start, time, metrics
                ):
                    self._seek_slot(client, obj, time + 1.0)
                elif loss > 0.0 and client.rng.random() < loss:
                    metrics.broadcast_losses += 1
                    self._seek_slot(client, obj, time + 1.0)
                else:
                    survivors.append(client)
        elif loss > 0.0:
            survivors = []
            for _issue, _order, client in members:
                if client.rng.random() < loss:
                    metrics.broadcast_losses += 1
                    self._seek_slot(client, obj, time + 1.0)
                else:
                    survivors.append(client)
        else:
            # rep: allow-client-loop — one bucket's members, not the population
            survivors = [member[2] for member in members]
        if not survivors:
            self._flush_schedules()
            return

        broadcast = self.state.broadcast_for(bucket.cycle)
        if self._staleness is not None:
            # modulo staleness guard active: the wrap check consults
            # per-runtime rejoin state (last-heard cycle) that batch
            # validation cannot see — take the per-process deliver path
            # member by member, still one simulator event per slot
            self._apply_scalar(survivors, obj, time, broadcast)
            return

        # phase 2 — one batched read-condition evaluation for the bucket
        snapshot = broadcast.snapshot
        if len(survivors) > 1:
            ok_list = self._batch_validate(
                # rep: allow-client-loop — one bucket's survivors
                [client.validator for client in survivors], obj, snapshot
            )
        else:
            ok_list = [survivors[0].validator.validate_read(obj, snapshot)]

        # phase 3 — apply per-client consequences in issue order.  The
        # cache-less, untraced, flat-layout combination (the large-
        # population regime this executor exists for) takes a fully
        # inlined lane: the think draw, slot arithmetic and bucket append
        # mirror _advance/_seek_slot statement for statement, shedding
        # only the call overhead — which, at thousands of reads per
        # wall-clock millisecond, is the dominant remaining cost.  The
        # oracle equivalence tests exercise both lanes.
        offsets = self._flat_offsets
        fast = self.trace is None and offsets is not None and faults is None
        buckets = self._buckets
        new_buckets = self._new_buckets
        cycle_bits = self._cycle_bits
        op_lambd = self._op_lambd
        restart_delay = config.restart_delay
        delay_first = config.delay_before_first_operation
        untraced = self.trace is None
        tracer = self.tracer
        tracer_enabled = tracer.enabled
        delivered = 0
        for ok, client in zip(ok_list, survivors):
            runtime = client.runtime  # never None for a bucketed client
            if fast and client.cache is None:
                if ok:
                    delivered += 1
                    index = runtime.apply_read_ok_untraced()
                    if index >= client.txn_len:
                        start_time = self._complete_read_phase(client, time)
                        if start_time is None:
                            continue
                        issue = start_time
                        if delay_first:
                            issue -= _log(1.0 - client.rng.random()) / op_lambd
                        next_obj = client.runtime.objects[0]
                    else:
                        issue = time - _log(1.0 - client.rng.random()) / op_lambd
                        next_obj = runtime.objects[index]
                else:
                    metrics.reads_rejected += 1
                    metrics.aborts_conflict += 1
                    if tracer_enabled:
                        tracer.emit(
                            client.attempt_start, time, "client",
                            client.client_id, "attempt", "conflict", runtime.tid,
                        )
                        client.attempt_start = time + restart_delay
                    client.restarts += 1
                    runtime.restart()
                    issue = time + restart_delay
                    if delay_first:
                        issue -= _log(1.0 - client.rng.random()) / op_lambd
                    next_obj = runtime.objects[0]
                # _seek_slot, inlined (flat layout guaranteed by `fast`)
                cycle = int(issue // cycle_bits) + 1
                end = (cycle - 1) * cycle_bits + offsets[next_obj]
                if cycle > 1 and end - cycle_bits >= issue:
                    cycle -= 1
                    end -= cycle_bits
                elif end < issue:
                    cycle += 1
                    end += cycle_bits
                slot_bucket = buckets.get(end)
                if slot_bucket is None:
                    slot_bucket = _Bucket(next_obj, cycle)
                    buckets[end] = slot_bucket
                    new_buckets.append((end, partial(self._fire, end)))
                order = self._enqueue_order
                self._enqueue_order = order + 1
                slot_bucket.members.append((issue, order, client))
                continue
            cache = client.cache
            if cache is not None:
                cache.insert(broadcast, obj, time)
            if ok:
                if untraced:
                    runtime.apply_read_ok_untraced()
                else:
                    runtime.apply_read_ok(broadcast)
                delivered += 1
                if runtime.is_done:
                    start_time = self._complete_read_phase(client, time)
                    if start_time is not None:
                        self._advance(client, start_time, first=True)
                else:
                    self._advance(client, time, first=False)
            else:
                runtime.aborted = True
                metrics.reads_rejected += 1
                metrics.aborts_conflict += 1
                if tracer_enabled:
                    tracer.emit(
                        client.attempt_start, time, "client", client.client_id,
                        "attempt", "conflict", runtime.tid,
                    )
                    client.attempt_start = time + restart_delay
                if cache is not None:
                    cache.evict(obj)
                    for read_obj, _cycle in runtime.reads:
                        cache.evict(read_obj)
                client.restarts += 1
                runtime.restart()
                self._advance(client, time + restart_delay, first=True)
        metrics.reads_delivered += delivered
        metrics.listening_bits += self._slot_bits * len(survivors)
        self._flush_schedules()

    # ------------------------------------------------------------------
    # the scalar lane: modulo staleness guard active
    # ------------------------------------------------------------------
    def _apply_scalar(
        self,
        survivors: List[CohortClient],
        obj: int,
        time: float,
        broadcast: BroadcastCycle,
    ) -> None:
        """Per-member deliver for buckets under a staleness window.

        Mirrors ``_attempt``'s post-slot body statement for statement:
        cache insert, ``runtime.deliver`` (which updates the rejoin
        bookkeeping and may fire the wrap guard), cause-attributed abort
        and eviction, restart or continuation.
        """
        config = self.config
        metrics = self.metrics
        restart_delay = config.restart_delay
        for client in survivors:
            runtime = client.runtime
            assert runtime is not None
            cache = client.cache
            if cache is not None:
                cache.insert(broadcast, obj, time)
            outcome = runtime.deliver(broadcast)
            if outcome.ok:
                metrics.reads_delivered += 1
                if runtime.is_done:
                    start_time = self._complete_read_phase(client, time)
                    if start_time is not None:
                        self._advance(client, start_time, first=True)
                else:
                    self._advance(client, time, first=False)
            else:
                metrics.reads_rejected += 1
                cause = "staleness" if outcome.stale else "conflict"
                metrics.record_abort(cause)
                if self.tracer.enabled:
                    self.tracer.emit(
                        client.attempt_start, time, "client", client.client_id,
                        "attempt", cause, runtime.tid,
                    )
                    client.attempt_start = time + restart_delay
                if cache is not None:
                    cache.evict(outcome.obj)
                    for read_obj, _cycle in runtime.reads:
                        cache.evict(read_obj)
                client.restarts += 1
                runtime.restart()
                self._advance(client, time + restart_delay, first=True)
        metrics.listening_bits += self._slot_bits * len(survivors)
        self._flush_schedules()

    # ------------------------------------------------------------------
    # update transactions: the coalesced uplink chain
    # ------------------------------------------------------------------
    def _begin_uplink(self, client: CohortClient, read_done_time: float) -> None:
        """Buffer the writes and ship the submission up the uplink.

        Mirrors ``_submit_update``'s entry: writes are stamped
        ``tid#attempt`` per attempt, then the submission travels for
        half a round trip — its arrival is the next real event this
        client owns.
        """
        runtime = client.runtime
        assert isinstance(runtime, ClientUpdateTransactionRuntime)
        for write_obj in client.write_objs:
            runtime.write(write_obj, f"{runtime.tid}#{runtime.attempt}")
        client.uplink_retries = 0
        if self.tracer.enabled:
            client.uplink_start = read_done_time
        self.sim.schedule(
            read_done_time + self._half_rtt, partial(self._uplink_arrival, client)
        )

    def _uplink_arrival(self, client: CohortClient) -> None:
        """The submission reaches the server — or doesn't.

        This is the per-process ``_submit_update`` loop's post-transit
        event, as a scheduled callback: fault outcomes (dead server,
        in-transit loss from the client's own numpy stream) are decided
        at the arrival instant, the server's backward validation runs
        here, and the verdict's client-side consequences — known
        immediately, since they touch only private state — are computed
        inline at ``arrival + half_rtt``.
        """
        sim = self.sim
        now = sim.now
        metrics = self.metrics
        runtime = client.runtime
        assert isinstance(runtime, ClientUpdateTransactionRuntime)
        faults = self.faults
        if faults is not None:
            plan = faults.plan
            if faults.server_down:
                # the submission reaches a dead uplink: no verdict ever
                metrics.uplink_crash_losses += 1
                cause: Optional[str] = "crash"
            elif plan.uplink_loss_probability > 0.0 and faults.uplink_lost(
                client.client_id
            ):
                metrics.uplink_losses += 1
                cause = "uplink"
            else:
                cause = None
            if cause is not None:
                if client.uplink_retries >= plan.uplink_max_retries:
                    metrics.record_abort(cause)
                    if self.tracer.enabled:
                        self.tracer.emit(
                            client.uplink_start, now, "client", client.client_id,
                            "uplink", cause, runtime.tid,
                        )
                    self._restart_attempt(client, now, cause)
                    return
                if self.tracer.enabled:
                    self.tracer.emit(
                        now, now, "client", client.client_id,
                        "uplink.retry", cause, runtime.tid,
                    )
                # wait out the verdict timeout, back off, resubmit
                delay = plan.uplink_timeout * plan.uplink_backoff**client.uplink_retries
                client.uplink_retries += 1
                metrics.uplink_retries += 1
                sim.schedule(
                    now + delay + self._half_rtt,
                    partial(self._uplink_arrival, client),
                )
                return
        outcome = self.server.submit_client_update(runtime.submission())
        verdict_time = now + self._half_rtt
        if outcome.committed:
            metrics.client_updates_committed += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    client.uplink_start, verdict_time, "client",
                    client.client_id, "uplink", "ok", runtime.tid,
                )
            start_time = self._finish_txn(client, verdict_time)
            if start_time is not None:
                self._advance(client, start_time, first=True)
        else:
            metrics.client_updates_rejected += 1
            metrics.record_abort("conflict")
            if self.tracer.enabled:
                self.tracer.emit(
                    client.uplink_start, verdict_time, "client",
                    client.client_id, "uplink", "conflict", runtime.tid,
                )
            self._restart_attempt(client, verdict_time, "conflict")
        self._flush_schedules()

    def _restart_attempt(
        self, client: CohortClient, at_time: float, cause: str
    ) -> None:
        """A failed update attempt restarts its read phase from scratch."""
        client.restarts += 1
        runtime = client.runtime
        assert runtime is not None
        if self.tracer.enabled:
            self.tracer.emit(
                client.attempt_start, at_time, "client", client.client_id,
                "attempt", cause, runtime.tid,
            )
            client.attempt_start = at_time + self.config.restart_delay
        runtime.restart()
        self._advance(client, at_time + self.config.restart_delay, first=True)
        self._flush_schedules()
