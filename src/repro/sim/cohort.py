"""Slot-coalesced cohort execution for large read-only client populations.

The per-process client path (:func:`repro.sim.processes.client_process`)
pays one generator step plus one heapq push/pop **per client per event**:
a think-time timeout, then a wait for the object's broadcast slot, for
every read of every client.  With hundreds or thousands of clients the
simulation kernel, not the protocol work, dominates wall-clock time.

The cohort executor removes that per-client constant factor with three
observations, none of which changes a single simulated outcome:

1. **Think-time events are unobservable.**  Between a commit (or a
   delivered read) and the next slot wait, a client only draws its think
   delay and computes the slot of its next object — no shared state is
   read at the think-expiry instant.  The chain ``now → think expiry →
   slot end`` therefore collapses into one local computation, eliminating
   the timeout event entirely.

2. **Slot waits coalesce.**  Every client waiting for the same broadcast
   slot resumes at the same instant and reads the same object from the
   same frozen cycle image.  Bucketing them (a calendar keyed by slot-end
   time) fires **one** simulator event per occupied slot instead of one
   per client.

3. **Validation batches.**  Within a bucket all clients evaluate the same
   protocol's read condition against the same control snapshot, so the
   whole bucket is validated with one fancy-indexed comparison
   (:func:`repro.core.validators.validate_read_batch`).

Determinism is preserved exactly: each client draws from its private RNG
stream in the same order the per-process path would, and bucket members
are processed in the order their slot waits would have been *issued*
(think-expiry time, ties by enqueue order) — which is the order the
per-process path's same-time events fire in.  Exponential delays are
drawn inline as ``-log(1 - rng.random()) / lambd`` — the exact formula of
:meth:`random.Random.expovariate`, consuming the same single draw — so
the values are bit-identical to the per-process path's.  Oracle tests
assert bit-identical commits, restarts, response times and listening bits
against the per-process path on randomized configs.

Update transactions keep the per-process path: when a client's next
transaction draws as an update (``client_update_fraction > 0``), the
client leaves the cohort and runs that transaction as a real simulator
process (reusing the exact :func:`repro.sim.processes._attempt` /
``_submit_update`` code), rejoining the cohort at its next read-only
transaction.  The two populations compose deterministically because
per-client RNG streams are independent and all cross-client state a read
consults (the frozen cycle snapshots) is installed at cycle boundaries.
"""

from __future__ import annotations

import random
from functools import partial
from math import log as _log
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..broadcast.layout import BroadcastLayout, FlatLayout
from ..client.cache import QuasiCache
from ..client.runtime import ClientUpdateTransactionRuntime, ReadOnlyTransactionRuntime
from ..core.validators import (
    ReadValidator,
    validate_read_batch,
    validate_read_batch_inorder,
)
from ..server.server import BroadcastServer
from .config import SimulationConfig
from .engine import Simulator, Timeout, WaitUntil
from .metrics import MetricsCollector
from .processes import SharedState, SimEvents, _attempt, _submit_update
from .trace import TraceRecorder

__all__ = ["CohortClient", "CohortExecutor"]


class CohortClient:
    """Per-client simulation state driven by the cohort executor."""

    __slots__ = (
        "client_id",
        "workload",
        "validator",
        "rng",
        "cache",
        "runtime",
        "txn_index",
        "txn_len",
        "submit_time",
        "restarts",
    )

    def __init__(
        self,
        client_id: int,
        workload: object,
        validator: ReadValidator,
        rng: random.Random,
        cache: Optional[QuasiCache],
    ) -> None:
        self.client_id = client_id
        self.workload = workload
        self.validator = validator
        self.rng = rng
        self.cache = cache
        self.runtime: Optional[ReadOnlyTransactionRuntime] = None
        self.txn_index = 0
        self.txn_len = 0
        self.submit_time = 0.0
        self.restarts = 0


class _Bucket:
    """Clients awaiting one broadcast slot (same object, same cycle)."""

    __slots__ = ("obj", "cycle", "members")

    def __init__(self, obj: int, cycle: int) -> None:
        self.obj = obj
        self.cycle = cycle
        #: (issue time, enqueue order, client) — sorted before processing
        #: so clients fire in the order their per-process WaitUntil
        #: events would have been pushed
        self.members: List[Tuple[float, int, CohortClient]] = []


class CohortExecutor:
    """Runs a client population through slot-coalesced buckets."""

    def __init__(
        self,
        *,
        sim: Simulator,
        config: SimulationConfig,
        layout: BroadcastLayout,
        state: SharedState,
        server: BroadcastServer,
        metrics: MetricsCollector,
        clients: Sequence[CohortClient],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if state.faults is not None:
            raise ValueError(
                "CohortExecutor cannot run with fault injection enabled; "
                "use client_executor='process' for faulty runs"
            )
        self.sim = sim
        self.config = config
        self.layout = layout
        self.state = state
        self.server = server
        self.metrics = metrics
        self.trace = trace
        self.clients = list(clients)
        self._buckets: Dict[float, _Bucket] = {}
        #: (time, fire-callback) pairs not yet pushed — flushed in one
        #: schedule_many call per entry point to cut heapq churn
        self._new_buckets: List[Tuple[float, Callable[[], None]]] = []
        self._enqueue_order = 0
        # exponential-delay rates, precomputed exactly as the per-process
        # path evaluates them (1.0 / mean), so inline draws divide by the
        # bit-identical lambda
        self._op_lambd = 1.0 / config.mean_inter_operation_delay
        self._txn_lambd = 1.0 / config.mean_inter_transaction_delay
        # flat layouts are the common case: their slot timing is pure
        # arithmetic, inlined in _seek_slot; other layouts go through
        # layout.next_read
        if isinstance(layout, FlatLayout):
            self._flat_offsets: Optional[List[int]] = [
                layout.slot_end_offset(obj) for obj in range(layout.num_objects)
            ]
        else:
            self._flat_offsets = None
        self._cycle_bits = layout.cycle_bits
        self._slot_bits = layout.slot_bits  # type: ignore[attr-defined]
        # cache-less uniform populations with absolute timestamps satisfy
        # validate_read_batch_inorder's precondition for every bucket
        # (checked once here instead of per member per bucket)
        self._batch_validate = validate_read_batch
        if (
            all(c.cache is None for c in self.clients)
            and len({c.validator.__class__ for c in self.clients}) == 1
            and all(c.validator._vectorisable for c in self.clients)
        ):
            self._batch_validate = validate_read_batch_inorder

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin every client's first transaction (call before run)."""
        config = self.config
        for client in self.clients:
            if config.num_client_transactions <= 0:
                self.state.clients_done += 1
                continue
            tid, objects = self._draw_transaction(client)
            if self._draw_is_update(client):
                self._spawn_update(client, 0.0, tid, objects)
            else:
                self._begin_read_only(client, 0.0, tid, objects)
                self._advance(client, 0.0, first=True)
        self._flush_schedules()

    # ------------------------------------------------------------------
    # transaction bookkeeping
    # ------------------------------------------------------------------
    def _draw_transaction(self, client: CohortClient) -> Tuple[str, Tuple[int, ...]]:
        tid, objects = client.workload.next_transaction()  # type: ignore[attr-defined]
        return f"cl{client.client_id}.{tid}", objects

    def _draw_is_update(self, client: CohortClient) -> bool:
        # mirrors client_process: the fraction gate short-circuits, so no
        # RNG draw happens when update transactions are disabled
        return (
            self.config.client_update_fraction > 0.0
            and client.rng.random() < self.config.client_update_fraction
        )

    def _begin_read_only(
        self,
        client: CohortClient,
        submit_time: float,
        tid: str,
        objects: Sequence[int],
    ) -> None:
        client.runtime = ReadOnlyTransactionRuntime(tid, objects, client.validator)
        client.txn_len = len(client.runtime.objects)
        client.submit_time = submit_time
        client.restarts = 0

    def _spawn_update(
        self,
        client: CohortClient,
        start_time: float,
        tid: str,
        objects: Sequence[int],
    ) -> None:
        self.sim.spawn(
            self._update_loop(client, start_time, tid, objects),
            name=f"client-{client.client_id}-update",
        )

    def _commit_and_continue(
        self, client: CohortClient, commit_time: float
    ) -> Optional[float]:
        """Commit the pending transaction; set up the next one.

        Returns the next read-only transaction's start time, or ``None``
        when the client finished, or handed off to an update process.
        """
        runtime = client.runtime
        assert runtime is not None
        runtime.commit()
        self.metrics.record_commit(
            runtime.tid, client.submit_time, commit_time, client.restarts
        )
        if self.trace is not None:
            self.trace.record_client_commit(
                runtime.tid, runtime.versions, runtime.reads
            )
        delay = -_log(1.0 - client.rng.random()) / self._txn_lambd
        start_time = commit_time + delay
        client.txn_index += 1
        if client.txn_index >= self.config.num_client_transactions:
            # the per-process client is done only after its trailing
            # inter-transaction delay elapses — keep that as a real event
            # so the run's stop time matches exactly
            self.sim.schedule(start_time, partial(self._client_done, client))
            return None
        tid, objects = self._draw_transaction(client)
        if self._draw_is_update(client):
            self._spawn_update(client, start_time, tid, objects)
            return None
        self._begin_read_only(client, start_time, tid, objects)
        return start_time

    def _client_done(self, client: CohortClient) -> None:
        self.state.clients_done += 1

    # ------------------------------------------------------------------
    # the inline chain: think delays, cache hits, commits
    # ------------------------------------------------------------------
    def _advance(self, client: CohortClient, now: float, first: bool) -> None:
        """Drive ``client`` forward from ``now`` until it blocks on a
        broadcast slot, hands off to an update process, or finishes.

        Collapses the per-process chain of think-time timeouts and cache
        hits into local computation: every value observed (cache content,
        validator state, RNG draws) is private to the client, so nothing
        the rest of the simulation does between ``now`` and the computed
        slot wait can change the outcome.
        """
        config = self.config
        metrics = self.metrics
        cache = client.cache
        random_ = client.rng.random
        op_lambd = self._op_lambd
        delay_first = config.delay_before_first_operation
        while True:
            runtime = client.runtime
            assert runtime is not None
            issue = now
            if not first or delay_first:
                issue = now - _log(1.0 - random_()) / op_lambd
            obj = runtime.next_object
            assert obj is not None
            entry = cache.lookup(obj, issue) if cache is not None else None
            if entry is None:
                self._seek_slot(client, obj, issue)
                return
            metrics.cache_hits += 1
            outcome = runtime.deliver(entry.as_broadcast())
            if outcome.ok:
                metrics.reads_delivered += 1
                if runtime.is_done:
                    start_time = self._commit_and_continue(client, issue)
                    if start_time is None:
                        return
                    now, first = start_time, True
                else:
                    now, first = issue, False
            else:
                metrics.reads_rejected += 1
                metrics.aborts_conflict += 1
                assert cache is not None
                cache.evict(outcome.obj)
                for read_obj, _cycle in runtime.reads:
                    cache.evict(read_obj)
                client.restarts += 1
                runtime.restart()
                now, first = issue + config.restart_delay, True

    # ------------------------------------------------------------------
    # the slot calendar
    # ------------------------------------------------------------------
    def _seek_slot(self, client: CohortClient, obj: int, issue: float) -> None:
        offsets = self._flat_offsets
        if offsets is not None:
            # FlatLayout.next_read, inlined (pure arithmetic, no SlotHit)
            cycle_bits = self._cycle_bits
            cycle = int(issue // cycle_bits) + 1
            end = (cycle - 1) * cycle_bits + offsets[obj]
            if cycle > 1 and end - cycle_bits >= issue:
                cycle -= 1
                end -= cycle_bits
            elif end < issue:
                cycle += 1
                end += cycle_bits
        else:
            hit = self.layout.next_read(obj, issue)
            end, cycle = hit.time, hit.cycle
        bucket = self._buckets.get(end)
        if bucket is None:
            bucket = _Bucket(obj, cycle)
            self._buckets[end] = bucket
            self._new_buckets.append((end, partial(self._fire, end)))
        order = self._enqueue_order
        self._enqueue_order = order + 1
        bucket.members.append((issue, order, client))

    def _flush_schedules(self) -> None:
        if self._new_buckets:
            self.sim.schedule_many(self._new_buckets)
            self._new_buckets.clear()

    def _fire(self, time: float) -> None:
        """Process one occupied slot: every client whose wait ends now."""
        bucket = self._buckets.pop(time)
        members = bucket.members
        if len(members) > 1:
            members.sort()
        config = self.config
        metrics = self.metrics
        obj = bucket.obj

        # phase 1 — radio loss: each lost client retries the object's
        # next appearance (drawn per client, in issue order, exactly as
        # the per-process loop would at its own slot event)
        loss = config.broadcast_loss_probability
        if loss > 0.0:
            survivors: List[CohortClient] = []
            for _issue, _order, client in members:
                if client.rng.random() < loss:
                    metrics.broadcast_losses += 1
                    self._seek_slot(client, obj, time + 1.0)
                else:
                    survivors.append(client)
        else:
            survivors = [member[2] for member in members]
        if not survivors:
            self._flush_schedules()
            return

        # phase 2 — one batched read-condition evaluation for the bucket
        broadcast = self.state.broadcast_for(bucket.cycle)
        snapshot = broadcast.snapshot
        if len(survivors) > 1:
            ok_list = self._batch_validate(
                [client.validator for client in survivors], obj, snapshot
            )
        else:
            ok_list = [survivors[0].validator.validate_read(obj, snapshot)]

        # phase 3 — apply per-client consequences in issue order.  The
        # cache-less, untraced, flat-layout combination (the large-
        # population regime this executor exists for) takes a fully
        # inlined lane: the think draw, slot arithmetic and bucket append
        # mirror _advance/_seek_slot statement for statement, shedding
        # only the call overhead — which, at thousands of reads per
        # wall-clock millisecond, is the dominant remaining cost.  The
        # oracle equivalence tests exercise both lanes.
        offsets = self._flat_offsets
        fast = self.trace is None and offsets is not None
        buckets = self._buckets
        new_buckets = self._new_buckets
        cycle_bits = self._cycle_bits
        op_lambd = self._op_lambd
        restart_delay = config.restart_delay
        delay_first = config.delay_before_first_operation
        untraced = self.trace is None
        delivered = 0
        for ok, client in zip(ok_list, survivors):
            runtime = client.runtime  # never None for a bucketed client
            if fast and client.cache is None:
                if ok:
                    delivered += 1
                    index = runtime.apply_read_ok_untraced()
                    if index >= client.txn_len:
                        start_time = self._commit_and_continue(client, time)
                        if start_time is None:
                            continue
                        issue = start_time
                        if delay_first:
                            issue -= _log(1.0 - client.rng.random()) / op_lambd
                        next_obj = client.runtime.objects[0]
                    else:
                        issue = time - _log(1.0 - client.rng.random()) / op_lambd
                        next_obj = runtime.objects[index]
                else:
                    metrics.reads_rejected += 1
                    metrics.aborts_conflict += 1
                    client.restarts += 1
                    runtime.restart()
                    issue = time + restart_delay
                    if delay_first:
                        issue -= _log(1.0 - client.rng.random()) / op_lambd
                    next_obj = runtime.objects[0]
                # _seek_slot, inlined (flat layout guaranteed by `fast`)
                cycle = int(issue // cycle_bits) + 1
                end = (cycle - 1) * cycle_bits + offsets[next_obj]
                if cycle > 1 and end - cycle_bits >= issue:
                    cycle -= 1
                    end -= cycle_bits
                elif end < issue:
                    cycle += 1
                    end += cycle_bits
                slot_bucket = buckets.get(end)
                if slot_bucket is None:
                    slot_bucket = _Bucket(next_obj, cycle)
                    buckets[end] = slot_bucket
                    new_buckets.append((end, partial(self._fire, end)))
                order = self._enqueue_order
                self._enqueue_order = order + 1
                slot_bucket.members.append((issue, order, client))
                continue
            cache = client.cache
            if cache is not None:
                cache.insert(broadcast, obj, time)
            if ok:
                if untraced:
                    runtime.apply_read_ok_untraced()
                else:
                    runtime.apply_read_ok(broadcast)
                delivered += 1
                if runtime.is_done:
                    start_time = self._commit_and_continue(client, time)
                    if start_time is not None:
                        self._advance(client, start_time, first=True)
                else:
                    self._advance(client, time, first=False)
            else:
                runtime.aborted = True
                metrics.reads_rejected += 1
                metrics.aborts_conflict += 1
                if cache is not None:
                    cache.evict(obj)
                    for read_obj, _cycle in runtime.reads:
                        cache.evict(read_obj)
                client.restarts += 1
                runtime.restart()
                self._advance(client, time + restart_delay, first=True)
        metrics.reads_delivered += delivered
        metrics.listening_bits += self._slot_bits * len(survivors)
        self._flush_schedules()

    # ------------------------------------------------------------------
    # update transactions: the per-process escape hatch
    # ------------------------------------------------------------------
    def _update_loop(
        self,
        client: CohortClient,
        start_time: float,
        tid: str,
        objects: Sequence[int],
    ) -> "SimEvents":
        """Run consecutive *update* transactions as a real process.

        Reuses the exact per-process attempt/submit code so uplink
        timing, server-side validation and restart behaviour stay
        bit-identical; hands the client back to the cohort as soon as a
        read-only transaction is drawn.
        """
        sim = self.sim
        config = self.config
        yield WaitUntil(start_time)
        while True:
            runtime = ClientUpdateTransactionRuntime(  # rep: allow-alloc — per txn
                tid, objects, client.validator
            )
            client.runtime = runtime
            num_writes = max(
                1, round(len(objects) * config.client_update_write_fraction)
            )
            write_objs = list(objects[:num_writes])
            submit_time = sim.now
            restarts = 0
            while True:  # attempts
                committed = yield from _attempt(
                    sim,
                    config,
                    runtime,
                    self.layout,
                    self.state,
                    self.metrics,
                    client.rng,
                    client.cache,
                    client_id=client.client_id,
                )
                if committed:
                    committed = yield from _submit_update(
                        sim,
                        config,
                        runtime,
                        write_objs,
                        self.server,
                        self.metrics,
                        state=self.state,
                        rng=client.rng,
                    )
                if committed:
                    break
                restarts += 1
                runtime.restart()
                if config.restart_delay > 0:
                    yield Timeout(config.restart_delay)  # rep: allow-alloc
            self.metrics.record_commit(tid, submit_time, sim.now, restarts)
            yield Timeout(  # rep: allow-alloc
                client.rng.expovariate(1.0 / config.mean_inter_transaction_delay)
            )
            client.txn_index += 1
            if client.txn_index >= config.num_client_transactions:
                self.state.clients_done += 1
                return
            tid, objects = self._draw_transaction(client)
            if not self._draw_is_update(client):
                self._begin_read_only(client, sim.now, tid, objects)
                self._advance(client, sim.now, first=True)
                self._flush_schedules()
                return
