"""Simulation assembly: wire config → server, layout, clients; run; report.

:func:`run_simulation` is the one-call entry point used by the
experiments, benchmarks and examples::

    from repro.sim import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(protocol="f-matrix"))
    print(result.response_time.mean, result.restart_ratio.mean)

One simulator instance hosts: the cycle process, the server completion
process, and ``num_clients`` client processes (the paper simulates one
client — protocol decisions at distinct clients are independent, so a
single client suffices for response-time statistics; more are supported).

Sharded runs (``config.shards > 1``; :mod:`repro.sim.shard`) give each
shard a :class:`ShardSlice`: every shard deterministically *recomputes*
the authoritative timeline — the cycle, server, crash and update-client
processes — from the shared seeds, and simulates only its own contiguous
range of read-only clients on top of it.  Read-only clients never touch
shared state, so the timeline each shard derives is bit-identical to the
unsharded run's; the only data shards exchange is their merged
:class:`MetricsCollector`.  Exactly one shard (the primary) records the
infrastructure's and the update clients' metrics; the others route those
"ghost" measurements into a shadow collector that is dropped on the
floor, so the merge counts everything exactly once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..analysis.diagnostics import AuditReport
    from ..obs.registry import TelemetryRegistry

from ..broadcast.layout import BroadcastLayout
from ..client.cache import QuasiCache
from ..core.validators import ReadValidator, make_validator
from ..obs.profiler import PhaseProfiler
from ..obs.tracer import NULL_TRACER, Span, Tracer, canonical_spans
from ..server.server import BroadcastServer
from ..server.workload import ClientWorkload, ServerWorkload
from .arena import RecordingTimelineMetrics, TimelineArena, TimelineView
from .cohort import CohortClient, CohortExecutor
from .config import SimulationConfig
from .engine import Simulator
from .faults import FaultRuntime, crash_process
from .metrics import MetricsCollector, SummaryStat
from .processes import SharedState, client_process, cycle_process, server_process
from .trace import TraceRecorder

__all__ = [
    "SimulationResult",
    "ShardSlice",
    "BroadcastSimulation",
    "run_simulation",
]


@dataclass(frozen=True)
class ShardSlice:
    """Which clients one sharded simulation simulates and measures.

    Update-capable clients ``[0, updaters)`` are part of the shared
    authoritative timeline (they mutate the server over the uplink), so
    *every* shard simulates them; only the primary shard records their
    metrics.  Read-only clients ``[reader_lo, reader_hi)`` exist — and
    are measured — on exactly one shard.
    """

    #: update-capable clients, simulated on every shard
    updaters: int
    #: this shard's contiguous read-only client range (half-open)
    reader_lo: int
    reader_hi: int
    #: does this shard record the timeline's (server/crash/updater) metrics?
    primary: bool

    @property
    def num_readers(self) -> int:
        return self.reader_hi - self.reader_lo


def _full_slice(config: SimulationConfig) -> ShardSlice:
    updaters = config.update_capable_clients()
    return ShardSlice(
        updaters=updaters,
        reader_lo=updaters,
        reader_hi=config.num_clients,
        primary=True,
    )


@dataclass
class SimulationResult:
    """Summary of one run (plus handles for deeper inspection)."""

    config: SimulationConfig
    response_time: SummaryStat
    restart_ratio: SummaryStat
    metrics: MetricsCollector
    #: ``None`` on a cache-hit replay run: the timeline was never driven
    #: live, so there is no server instance to inspect
    server: Optional[BroadcastServer]
    trace: Optional[TraceRecorder]
    sim_time: float
    events: int
    #: invariant-audit report, populated when the config sets ``audit=True``
    audit_report: Optional["AuditReport"] = None
    #: replay/cache telemetry from the shard layer (``timeline_mode``,
    #: cache hit, fallback counts); ``None`` on plain unsharded runs
    timeline_stats: Optional[dict] = None
    #: canonical merged span stream (sorted, truncated at ``sim_time``)
    #: when the config enables tracing; ``None`` otherwise
    spans: Optional[List[Span]] = None
    #: raw per-shard span streams in emission order (index 0 = the
    #: primary/timeline shard) — what the Chrome-trace exporter lays out
    #: as process lanes
    shard_spans: Optional[List[List[Span]]] = None
    #: spans overwritten by ring-buffer wraparound, summed over shards
    spans_dropped: int = 0
    #: wall-clock seconds per harness phase (outside the deterministic
    #: core); populated by the orchestrating entry points
    profile: Optional[Dict[str, float]] = None

    @property
    def protocol(self) -> str:
        return self.config.protocol

    def telemetry(self) -> "TelemetryRegistry":
        """This run's counters/gauges/histograms as a telemetry registry."""
        from ..obs.registry import registry_from_result

        return registry_from_result(self)


class BroadcastSimulation:
    """Builds and runs one simulation described by a config."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        collect_trace: bool = False,
        client_workloads: Optional[List] = None,
        slice_: Optional[ShardSlice] = None,
        timeline: Optional[TimelineView] = None,
        record_timeline: bool = False,
    ):
        """``client_workloads`` optionally overrides the per-client
        generators — any objects with ``next_transaction()`` (e.g.
        :class:`repro.server.traces.TraceWorkload` for replayable
        workloads); one per client (indexed by global client id).

        ``slice_`` restricts this simulation to one shard's clients
        (:mod:`repro.sim.shard` builds these); ``None`` simulates and
        measures everyone.

        ``timeline`` makes this a **replay** simulation: broadcast images
        come from a sealed arena and no cycle/server/crash process is
        spawned — the slice must contain observers (readers) only.
        ``record_timeline`` makes this a **recording** pass: every
        installed image is retained and timeline-counter increments are
        journalled, so :meth:`seal_timeline` can build the arena replays
        attach to.  The two are mutually exclusive.
        """
        if timeline is not None and record_timeline:
            raise ValueError("a simulation cannot both replay and record a timeline")
        self.config = config
        self.slice = _full_slice(config) if slice_ is None else slice_
        self.layout: BroadcastLayout = config.layout()
        self.server = BroadcastServer(
            config.num_objects,
            config.protocol,
            arithmetic=config.arithmetic(),
            partition=config.partition(),
        )
        self.sim = Simulator()
        self.metrics = MetricsCollector(keep_samples=config.keep_samples)
        #: span sink for everything this shard measures; the no-op
        #: singleton keeps untraced runs allocation-free
        self.tracer: Tracer = (
            Tracer(config.trace_buffer) if config.tracing else NULL_TRACER
        )
        #: where the shared timeline's metrics (server process, crash
        #: recovery, ghost update clients) land: the measured collector
        #: on the primary shard, a discarded shadow elsewhere — wrapped
        #: in a journaling proxy on a recording pass
        self._timeline_metrics: MetricsCollector = (
            self.metrics
            if self.slice.primary
            else MetricsCollector(keep_samples=False)
        )
        self.timeline_view = timeline
        if record_timeline:
            self._timeline_metrics = RecordingTimelineMetrics(
                self.sim, self._timeline_metrics
            )
        if (collect_trace or config.audit) and slice_ is not None:
            raise ValueError("trace/audit runs cannot be sliced into shards")
        if (collect_trace or config.audit) and timeline is not None:
            raise ValueError("trace/audit runs cannot replay a timeline")
        self.trace = TraceRecorder() if (collect_trace or config.audit) else None
        if self.trace is not None and config.audit:
            self.trace.record_cycles = True
        local_clients = self.slice.updaters + self.slice.num_readers
        self.state = SharedState(num_clients=local_clients)
        # timeline spans (cycle/server/crash) are primary-only, exactly
        # like timeline metrics: ghost timelines recompute the same
        # history and would double-emit
        self.state.tracer = self.tracer if self.slice.primary else NULL_TRACER
        if timeline is not None:
            self.state.timeline = timeline
        if record_timeline:
            self.state.record_images = {}
        # a no-op plan is indistinguishable from no plan: no runtime, no
        # crash process, bit-identical event sequences
        if config.faults is not None and not config.faults.is_noop:
            self.state.faults = FaultRuntime(
                config.faults,
                config.arithmetic(),
                self._timeline_metrics,
                seed=config.seed,
            )
            if timeline is not None:
                # a replay shard hosts no crash process; the dead-air
                # windows its readers must observe are plan data
                self.state.faults.preload_outages(
                    [(crash.time, crash.end) for crash in config.faults.crashes]
                )

        base_seed = config.seed
        self._server_workload = ServerWorkload(
            config.num_objects,
            length=config.server_txn_length,
            read_probability=config.server_read_probability,
            seed=base_seed * 1_000_003 + 1,
        )
        self._server_rng = random.Random(base_seed * 1_000_003 + 2)
        if client_workloads is not None and len(client_workloads) != config.num_clients:
            raise ValueError(
                f"need {config.num_clients} client workloads, "
                f"got {len(client_workloads)}"
            )
        self._workload_overrides = (
            list(client_workloads) if client_workloads is not None else None
        )

    # -- per-client stream factories -----------------------------------
    # Built on demand (never a list over the whole population): client
    # ``k``'s workload and RNG are pure functions of the config seed and
    # ``k``, so any shard — or the analytical tier, one client at a
    # time — reconstructs exactly the streams the unsharded run uses.
    def workload_for(self, k: int) -> ClientWorkload:
        if self._workload_overrides is not None:
            return self._workload_overrides[k]
        config = self.config
        return ClientWorkload(
            config.num_objects,
            length=config.client_txn_length,
            seed=config.seed * 1_000_003 + 100 + k,
            access_skew=config.client_access_skew,
            hot_fraction=config.hot_fraction,
        )

    def rng_for(self, k: int) -> random.Random:
        return random.Random(self.config.seed * 1_000_003 + 200 + k)

    def cache_for(self, _k: int) -> Optional[QuasiCache]:
        config = self.config
        if config.cache_currency_bound is None:
            return None
        return QuasiCache(config.cache_currency_bound, capacity=config.cache_capacity)

    def validator_for(self, _k: int) -> ReadValidator:
        config = self.config
        return make_validator(
            config.protocol,
            arithmetic=config.arithmetic(),
            partition=config.partition(),
        )

    def _local_client_ids(self) -> List[int]:
        sl = self.slice
        return list(range(sl.updaters)) + list(range(sl.reader_lo, sl.reader_hi))

    # ------------------------------------------------------------------
    def spawn_timeline(self) -> None:
        """Spawn the authoritative processes: cycle and server."""
        sim = self.sim
        sim.spawn(
            cycle_process(
                sim,
                self.server,
                self.layout,
                self.state,
                self.trace,
                metrics=self._timeline_metrics,
            ),
            name="cycle",
        )
        sim.spawn(
            server_process(
                sim,
                self.config,
                self.server,
                self._server_workload,
                self.layout,
                self._server_rng,
                self._timeline_metrics,
                state=self.state,
            ),
            name="server",
        )

    def spawn_crash_process(self) -> None:
        """Spawn crash recovery (after the clients: spawn order is part
        of the determinism contract for same-instant tie-breaking)."""
        if self.timeline_view is not None:
            return  # replay shards observe outages; they don't host them
        if self.state.faults is not None and self.state.faults.plan.crashes:
            self.sim.spawn(
                crash_process(
                    self.sim,
                    self.config,
                    self.server,
                    self.layout,
                    self.state,
                    self._timeline_metrics,
                    trace=self.trace,
                ),
                name="fault-crash",
            )

    # -- recording pass (timeline arena) -------------------------------
    def extend_timeline(
        self, horizon: float, max_events: Optional[int] = None
    ) -> None:
        """Keep the timeline running past the local stop, up to ``horizon``.

        Replay shards may legitimately stop later than the recording
        pass's own clients did, so the recorded history needs headroom.
        The extension must not pollute this run's measured metrics: the
        journaling proxy is retargeted at a throwaway shadow collector
        first, and :meth:`fold_timeline_journal` later re-applies exactly
        the extension-phase increments the merged stop time covers.
        """
        proxy = self._timeline_metrics
        assert isinstance(proxy, RecordingTimelineMetrics)
        proxy.retarget(MetricsCollector(keep_samples=False))
        self.sim.run(until=horizon, max_events=max_events)

    def seal_timeline(self, horizon_time: float) -> TimelineArena:
        """Serialise the recorded history into a sealed arena."""
        images = self.state.record_images
        assert images, "seal_timeline requires a record_timeline=True run"
        proxy = self._timeline_metrics
        assert isinstance(proxy, RecordingTimelineMetrics)
        return TimelineArena.from_images(
            images,
            cycle_bits=float(self.layout.cycle_bits),
            horizon_time=horizon_time,
            partition=self.config.partition(),
            journal=tuple(proxy.journal),
        )

    def fold_timeline_journal(self, upto: float) -> None:
        """Apply the extension-phase timeline counters at stop ``upto``.

        Everything journalled before :meth:`extend_timeline` retargeted
        the proxy already lives in ``self.metrics``; this folds in the
        post-retarget increments whose time is <= ``upto`` — exactly what
        driving the live timeline to ``upto`` would have recorded.
        """
        proxy = self._timeline_metrics
        assert isinstance(proxy, RecordingTimelineMetrics)
        start = proxy.live_entries if proxy.live_entries is not None else 0
        metrics = self.metrics
        for time, name, delta in proxy.journal[start:]:
            if time <= upto:
                setattr(metrics, name, getattr(metrics, name) + delta)

    def _run_events(self, max_events: Optional[int]) -> Tuple[float, int]:
        """The event-driven path: process or cohort executor."""
        config = self.config
        sim = self.sim
        sl = self.slice
        if self.timeline_view is None:
            self.spawn_timeline()
        # ghost updaters (non-primary shards) record into the shadow
        # collector; everyone this shard measures records into the real one
        ghosts: List[CohortClient] = []
        measured: List[CohortClient] = []
        for k in self._local_client_ids():
            cache = self.cache_for(k)
            validator = self.validator_for(k)
            is_ghost = not sl.primary and k < sl.updaters
            if config.client_executor == "cohort":
                group = ghosts if is_ghost else measured
                group.append(
                    CohortClient(k, self.workload_for(k), validator, self.rng_for(k), cache)
                )
                continue
            sim.spawn(
                client_process(
                    sim,
                    config,
                    k,
                    self.workload_for(k),
                    validator,
                    self.layout,
                    self.state,
                    self.metrics,
                    self.rng_for(k),
                    server=self.server,
                    trace=self.trace,
                    cache=cache,
                    tracer=self.tracer,
                ),
                name=f"client-{k}",
            )
        self.spawn_crash_process()
        for group, collector, tracer in (
            (ghosts, self._timeline_metrics, NULL_TRACER),
            (measured, self.metrics, self.tracer),
        ):
            if group:
                CohortExecutor(
                    sim=sim,
                    config=config,
                    layout=self.layout,
                    state=self.state,
                    server=self.server,
                    metrics=collector,
                    clients=group,
                    trace=self.trace,
                    tracer=tracer,
                ).start()

        sim.run(stop_when=lambda: self.state.all_clients_done, max_events=max_events)
        return sim.now, sim.events_processed

    def execute(self, max_events: Optional[int] = None) -> Tuple[float, int]:
        """Run the simulation; returns ``(sim_time, events)``.

        Metrics land in ``self.metrics``; :meth:`run` wraps this with the
        summary statistics.  Shard workers call this directly — a
        secondary shard's partial sample set isn't summarisable on its
        own.
        """
        if self.config.client_executor == "analytic":
            # imported lazily: the analytical tier is optional machinery
            from .analytic import run_analytic

            return run_analytic(self, max_events=max_events)
        return self._run_events(max_events)

    def run(self, *, max_events: Optional[int] = None) -> SimulationResult:
        config = self.config
        sim_time, events = self.execute(max_events)

        spans: Optional[List[Span]] = None
        shard_spans: Optional[List[List[Span]]] = None
        spans_dropped = 0
        if config.tracing:
            shard_spans = [self.tracer.export()]
            spans = canonical_spans(shard_spans, sim_time)
            spans_dropped = self.tracer.dropped
        result = SimulationResult(
            config=config,
            response_time=self.metrics.response_time(config.measure_fraction),
            restart_ratio=self.metrics.restart_ratio(config.measure_fraction),
            metrics=self.metrics,
            server=self.server,
            trace=self.trace,
            sim_time=sim_time,
            events=events,
            spans=spans,
            shard_spans=shard_spans,
            spans_dropped=spans_dropped,
        )
        if config.audit:
            # Imported here (not at module top) so repro.sim never depends
            # on repro.analysis unless auditing is actually requested —
            # analysis imports sim types for annotations only.
            from ..analysis import audit_simulation

            result.audit_report = audit_simulation(result)
        return result


def run_simulation(
    config: SimulationConfig,
    *,
    collect_trace: bool = False,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Build and run one simulation (sharded when ``config.shards > 1``).

    ``config.timeline_mode == "replay"`` also routes through the shard
    layer (even at one shard): the run records or reuses a sealed
    timeline arena and replays observers against it.
    """
    if config.shards > 1 or config.timeline_mode == "replay":
        from .shard import run_sharded

        return run_sharded(config, collect_trace=collect_trace, max_events=max_events)
    profiler = PhaseProfiler()
    simulation = BroadcastSimulation(config, collect_trace=collect_trace)
    with profiler.phase("execute"):
        result = simulation.run(max_events=max_events)
    result.profile = profiler.as_dict()
    return result
