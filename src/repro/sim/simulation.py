"""Simulation assembly: wire config → server, layout, clients; run; report.

:func:`run_simulation` is the one-call entry point used by the
experiments, benchmarks and examples::

    from repro.sim import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(protocol="f-matrix"))
    print(result.response_time.mean, result.restart_ratio.mean)

One simulator instance hosts: the cycle process, the server completion
process, and ``num_clients`` client processes (the paper simulates one
client — protocol decisions at distinct clients are independent, so a
single client suffices for response-time statistics; more are supported).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..analysis.diagnostics import AuditReport

from ..broadcast.layout import BroadcastLayout
from ..client.cache import QuasiCache
from ..core.validators import make_validator
from ..server.server import BroadcastServer
from ..server.workload import ClientWorkload, ServerWorkload
from .cohort import CohortClient, CohortExecutor
from .config import SimulationConfig
from .engine import Simulator
from .faults import FaultRuntime, crash_process
from .metrics import MetricsCollector, SummaryStat
from .processes import SharedState, client_process, cycle_process, server_process
from .trace import TraceRecorder

__all__ = ["SimulationResult", "BroadcastSimulation", "run_simulation"]


@dataclass
class SimulationResult:
    """Summary of one run (plus handles for deeper inspection)."""

    config: SimulationConfig
    response_time: SummaryStat
    restart_ratio: SummaryStat
    metrics: MetricsCollector
    server: BroadcastServer
    trace: Optional[TraceRecorder]
    sim_time: float
    events: int
    #: invariant-audit report, populated when the config sets ``audit=True``
    audit_report: Optional["AuditReport"] = None

    @property
    def protocol(self) -> str:
        return self.config.protocol


class BroadcastSimulation:
    """Builds and runs one simulation described by a config."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        collect_trace: bool = False,
        client_workloads: Optional[List] = None,
    ):
        """``client_workloads`` optionally overrides the per-client
        generators — any objects with ``next_transaction()`` (e.g.
        :class:`repro.server.traces.TraceWorkload` for replayable
        workloads); one per client."""
        self.config = config
        self.layout: BroadcastLayout = config.layout()
        self.server = BroadcastServer(
            config.num_objects,
            config.protocol,
            arithmetic=config.arithmetic(),
            partition=config.partition(),
        )
        self.metrics = MetricsCollector()
        self.trace = TraceRecorder() if (collect_trace or config.audit) else None
        if self.trace is not None and config.audit:
            self.trace.record_cycles = True
        self.state = SharedState(num_clients=config.num_clients)
        # a no-op plan is indistinguishable from no plan: no runtime, no
        # crash process, bit-identical event sequences
        if config.faults is not None and not config.faults.is_noop:
            self.state.faults = FaultRuntime(
                config.faults, config.arithmetic(), self.metrics
            )
        self.sim = Simulator()

        base_seed = config.seed
        self._server_workload = ServerWorkload(
            config.num_objects,
            length=config.server_txn_length,
            read_probability=config.server_read_probability,
            seed=base_seed * 1_000_003 + 1,
        )
        self._server_rng = random.Random(base_seed * 1_000_003 + 2)
        if client_workloads is not None:
            if len(client_workloads) != config.num_clients:
                raise ValueError(
                    f"need {config.num_clients} client workloads, "
                    f"got {len(client_workloads)}"
                )
            self._client_workloads = list(client_workloads)
        else:
            self._client_workloads = [
                ClientWorkload(
                    config.num_objects,
                    length=config.client_txn_length,
                    seed=base_seed * 1_000_003 + 100 + k,
                    access_skew=config.client_access_skew,
                    hot_fraction=config.hot_fraction,
                )
                for k in range(config.num_clients)
            ]
        self._client_rngs = [
            random.Random(base_seed * 1_000_003 + 200 + k)
            for k in range(config.num_clients)
        ]

    # ------------------------------------------------------------------
    def run(self, *, max_events: Optional[int] = None) -> SimulationResult:
        config = self.config
        sim = self.sim
        sim.spawn(
            cycle_process(sim, self.server, self.layout, self.state, self.trace),
            name="cycle",
        )
        sim.spawn(
            server_process(
                sim,
                config,
                self.server,
                self._server_workload,
                self.layout,
                self._server_rng,
                self.metrics,
                state=self.state,
            ),
            name="server",
        )
        cohort_clients: List[CohortClient] = []
        for k in range(config.num_clients):
            cache = None
            if config.cache_currency_bound is not None:
                cache = QuasiCache(
                    config.cache_currency_bound, capacity=config.cache_capacity
                )
            validator = make_validator(
                config.protocol,
                arithmetic=config.arithmetic(),
                partition=config.partition(),
            )
            if config.client_executor == "cohort":
                cohort_clients.append(
                    CohortClient(
                        k,
                        self._client_workloads[k],
                        validator,
                        self._client_rngs[k],
                        cache,
                    )
                )
                continue
            sim.spawn(
                client_process(
                    sim,
                    config,
                    k,
                    self._client_workloads[k],
                    validator,
                    self.layout,
                    self.state,
                    self.metrics,
                    self._client_rngs[k],
                    server=self.server,
                    trace=self.trace,
                    cache=cache,
                ),
                name=f"client-{k}",
            )
        if self.state.faults is not None and self.state.faults.plan.crashes:
            # spawned after the clients so fault-free spawn order (hence
            # same-instant tie-breaking) is untouched on zero-crash plans
            sim.spawn(
                crash_process(
                    sim,
                    config,
                    self.server,
                    self.layout,
                    self.state,
                    self.metrics,
                    trace=self.trace,
                ),
                name="fault-crash",
            )
        if cohort_clients:
            CohortExecutor(
                sim=sim,
                config=config,
                layout=self.layout,
                state=self.state,
                server=self.server,
                metrics=self.metrics,
                clients=cohort_clients,
                trace=self.trace,
            ).start()

        sim.run(stop_when=lambda: self.state.all_clients_done, max_events=max_events)

        result = SimulationResult(
            config=config,
            response_time=self.metrics.response_time(config.measure_fraction),
            restart_ratio=self.metrics.restart_ratio(config.measure_fraction),
            metrics=self.metrics,
            server=self.server,
            trace=self.trace,
            sim_time=sim.now,
            events=sim.events_processed,
        )
        if config.audit:
            # Imported here (not at module top) so repro.sim never depends
            # on repro.analysis unless auditing is actually requested —
            # analysis imports sim types for annotations only.
            from ..analysis import audit_simulation

            result.audit_report = audit_simulation(result)
        return result


def run_simulation(
    config: SimulationConfig,
    *,
    collect_trace: bool = False,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Build and run one simulation."""
    return BroadcastSimulation(config, collect_trace=collect_trace).run(
        max_events=max_events
    )
