"""Sharded simulation: partition the read-only population over processes.

One broadcast serves every client, but fault-free read-only clients are
pure *observers*: nothing they do reaches the server, the cycle images,
or each other.  That makes the population embarrassingly parallel —
provided every shard sees the same broadcast.  Two modes provide it:

* **recompute** (``config.timeline_mode == "recompute"``, the default):
  each shard deterministically recomputes the authoritative timeline
  from the config's seeds — the cycle process, the server process, the
  crash schedule, and every update-capable client (whose uplink
  submissions mutate the server) run in *every* shard, bit-identically.
  Correct, but k shards pay k× the timeline cost.

* **replay** (``"replay"``; docs/PERFORMANCE.md §6): the timeline is
  simulated **once** — by a recording pass hosting the primary slice
  (updaters, faulty or not, included) — then sealed into a
  shared-memory :class:`~repro.sim.arena.TimelineArena`.  Worker shards
  attach zero-copy and replay their reader range as pure observers: no
  cycle process, no server process, no crash process, crash dead-air
  reproduced from the plan's closed outage windows.  A shard that reads
  past the recorded horizon falls back to recomputation for itself, so
  replay is an optimisation, never a correctness risk.  For update-free,
  fault-free configs the sealed arena also lands in the cross-run
  :data:`~repro.sim.arena.TIMELINE_CACHE`, keyed by the server-side
  config fingerprint + seed: sweep points that vary only client-side
  parameters skip the recording pass entirely (a *cache hit*), and the
  run's timeline-side counters are reconstructed from the arena's
  recorded journal instead of a live simulation.

The only inter-process traffic is the result: each worker returns its
:class:`~repro.sim.metrics.MetricsCollector` (plus, under replay, a
fallback flag), and the parent folds them together with
:meth:`~repro.sim.metrics.MetricsCollector.merge_from` in shard order.
Double counting is prevented by the primary/ghost split
(:class:`~repro.sim.simulation.ShardSlice`): exactly one shard — the
primary — records the timeline's metrics; the others route them into a
discarded shadow collector.  Summary statistics sort the merged samples
by a layout-independent key, so the reported numbers are bit-identical
to an unsharded run's — the property tests assert this across shard
counts, executors and timeline modes.

A worker that dies raises :class:`ShardExecutionError` in the parent,
naming the shard and its reader range; outstanding futures are
cancelled rather than left running against a doomed merge.

``workers=0`` runs every shard sequentially in-process: same results,
no pool — the mode tests use to exercise slicing without fork overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.profiler import PhaseProfiler
from ..obs.tracer import Span, canonical_spans
from .arena import (
    TIMELINE_CACHE,
    TimelineArena,
    TimelineExhausted,
    TimelineHandle,
    timeline_cacheable,
)
from .config import SimulationConfig
from .metrics import MetricsCollector
from .simulation import BroadcastSimulation, ShardSlice, SimulationResult

__all__ = ["reader_slices", "run_sharded", "ShardExecutionError"]

#: recorded-horizon headroom: replay shards may stop later than the
#: recording pass's own clients did (reader mixes differ), so record
#: this factor past the local stop, plus a few whole cycles of slack
_HORIZON_FACTOR = 1.25
_HORIZON_SLACK_CYCLES = 4.0


class ShardExecutionError(RuntimeError):
    """A shard worker failed; identifies which slice of the population.

    Raised by the parent with the original exception chained (``from``),
    after cancelling the outstanding shard futures — a sharded run is
    all-or-nothing, so there is no point finishing the survivors.
    """

    def __init__(self, shard_index: int, slice_: ShardSlice, cause: BaseException):
        super().__init__(
            f"shard {shard_index} (readers [{slice_.reader_lo}, "
            f"{slice_.reader_hi})) failed: {cause!r}"
        )
        self.shard_index = shard_index
        self.reader_lo = slice_.reader_lo
        self.reader_hi = slice_.reader_hi


def reader_slices(config: SimulationConfig) -> List[ShardSlice]:
    """Partition the read-only population into ``config.shards`` slices.

    Contiguous, near-even ranges (the first ``readers % shards`` slices
    get the extra client); every slice also carries the update-capable
    prefix ``[0, updaters)``, which all shards must simulate.  The shard
    count is clamped to the number of read-only clients — an empty shard
    would be pure overhead.
    """
    updaters = config.update_capable_clients()
    readers = config.num_clients - updaters
    shards = min(config.shards, readers)
    if shards <= 1:
        return [
            ShardSlice(
                updaters=updaters,
                reader_lo=updaters,
                reader_hi=config.num_clients,
                primary=True,
            )
        ]
    base, extra = divmod(readers, shards)
    slices: List[ShardSlice] = []
    lo = updaters
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        slices.append(
            ShardSlice(
                updaters=updaters,
                reader_lo=lo,
                reader_hi=lo + size,
                primary=index == 0,
            )
        )
        lo += size
    return slices


def _observer_slice(slice_: ShardSlice) -> ShardSlice:
    """The replay form of a shard slice: its readers, nothing else.

    Replay shards host no updaters (those ran in the recording pass) and
    are never primary (there are no live timeline metrics to record).
    """
    return ShardSlice(
        updaters=0,
        reader_lo=slice_.reader_lo,
        reader_hi=slice_.reader_hi,
        primary=False,
    )


def _run_shard(
    job: Tuple[SimulationConfig, ShardSlice, Optional[int]]
) -> Tuple[MetricsCollector, float, int, List[Span], int]:
    """Worker entry point: one recompute shard; collector + run stats +
    this shard's raw span stream (empty when tracing is off).

    Module-level so the process pool can pickle it; also the inline path
    for ``workers=0``.
    """
    config, slice_, max_events = job
    simulation = BroadcastSimulation(config, slice_=slice_)
    sim_time, events = simulation.execute(max_events)
    return (
        simulation.metrics,
        sim_time,
        events,
        simulation.tracer.export(),
        simulation.tracer.dropped,
    )


def _run_shard_replay(
    job: Tuple[
        SimulationConfig,
        ShardSlice,
        Union[TimelineHandle, TimelineArena],
        Optional[int],
    ]
) -> Tuple[MetricsCollector, float, int, List[Span], int, bool]:
    """Worker entry point: one replay shard; collector + stats + spans +
    fell_back.

    Attaches to the shared arena (zero-copy) when handed a
    :class:`TimelineHandle`; uses the arena directly on the in-process
    path.  A replay that outruns the recorded horizon recomputes the
    shard from scratch — with the *original* slice, so the ghost
    updaters and the shadow timeline run exactly as in recompute mode.
    """
    config, slice_, source, max_events = job
    arena = (
        TimelineArena.attach(source)
        if isinstance(source, TimelineHandle)
        else source
    )
    simulation = BroadcastSimulation(
        config, slice_=_observer_slice(slice_), timeline=arena.view()
    )
    try:
        sim_time, events = simulation.execute(max_events)
    except TimelineExhausted:
        metrics, sim_time, events, spans, dropped = _run_shard(
            (config, slice_, max_events)
        )
        return metrics, sim_time, events, spans, dropped, True
    return (
        simulation.metrics,
        sim_time,
        events,
        simulation.tracer.export(),
        simulation.tracer.dropped,
        False,
    )


def _replay_primary(
    config: SimulationConfig,
    slice_: ShardSlice,
    arena: TimelineArena,
    max_events: Optional[int],
) -> Tuple[MetricsCollector, float, int, List[Span], int]:
    """The parent's own replay of the primary slice on a cache hit.

    Unlike the worker path this lets :class:`TimelineExhausted`
    propagate: a live recompute of the *primary* slice would record
    timeline metrics that the journal fold would then double-count, so
    the caller handles exhaustion by discarding the cache entry and
    re-recording instead.
    """
    simulation = BroadcastSimulation(
        config, slice_=_observer_slice(slice_), timeline=arena.view()
    )
    sim_time, events = simulation.execute(max_events)
    return (
        simulation.metrics,
        sim_time,
        events,
        simulation.tracer.export(),
        simulation.tracer.dropped,
    )


def _collect(
    futures: Sequence["Future"], slices: Sequence[ShardSlice], first_index: int
) -> List[Tuple]:
    """Gather shard futures in order; wrap failures, cancel the rest."""
    outcomes: List[Tuple] = []
    for offset, future in enumerate(futures):
        try:
            outcomes.append(future.result())
        except Exception as exc:
            for pending in futures[offset + 1 :]:
                pending.cancel()
            raise ShardExecutionError(
                first_index + offset, slices[offset], exc
            ) from exc
    return outcomes


def run_sharded(
    config: SimulationConfig,
    *,
    workers: Optional[int] = None,
    collect_trace: bool = False,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Run ``config`` as ``config.shards`` cooperating simulations.

    ``workers=None`` sizes the pool to ``min(shards - 1, cpus - 1)``
    (the parent itself runs the primary shard, so one core is spoken
    for); ``workers=0`` forces sequential in-process execution.
    ``config.timeline_mode == "replay"`` routes through the arena path.
    """
    if collect_trace:
        raise ValueError(
            "sharded runs record no trace (each shard sees only its own "
            "clients); use shards=1 for trace/audit runs"
        )
    if config.timeline_mode == "replay":
        return _run_replay(config, workers=workers, max_events=max_events)
    profiler = PhaseProfiler()
    slices = reader_slices(config)
    if len(slices) == 1:
        with profiler.phase("execute"):
            result = BroadcastSimulation(config, slice_=slices[0]).run(
                max_events=max_events
            )
        result.profile = profiler.as_dict()
        return result
    rest = slices[1:]
    if workers is None:
        workers = min(len(rest), max(1, (os.cpu_count() or 1) - 1))
    if workers <= 0:
        outcomes = []
        with profiler.phase("shards"):
            for index, sl in enumerate(rest):
                try:
                    outcomes.append(_run_shard((config, sl, max_events)))
                except Exception as exc:
                    raise ShardExecutionError(1 + index, sl, exc) from exc
        with profiler.phase("primary"):
            primary = BroadcastSimulation(config, slice_=slices[0])
            sim_time, events = primary.execute(max_events)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            with profiler.phase("setup"):
                futures = [
                    pool.submit(_run_shard, (config, sl, max_events)) for sl in rest
                ]
            # the parent is shard 0 — it computes the primary (metric-
            # recording) timeline while the pool handles the rest
            with profiler.phase("primary"):
                primary = BroadcastSimulation(config, slice_=slices[0])
                sim_time, events = primary.execute(max_events)
            with profiler.phase("shards"):
                outcomes = _collect(futures, rest, 1)

    merged = primary.metrics
    with profiler.phase("merge"):
        for shard_metrics, shard_time, shard_events, _spans, _dropped in outcomes:
            merged.merge_from(shard_metrics)
            if shard_time > sim_time:
                sim_time = shard_time
            events += shard_events

    # an unsharded run's timeline (server completions, crash recovery)
    # keeps going until the globally-last client finishes; the primary —
    # the one shard whose timeline metrics are recorded — must cover the
    # same span, so drive it forward to the merged stop time
    with profiler.phase("drive"):
        if sim_time > primary.sim.now:
            primary.sim.run(until=sim_time, max_events=max_events)

    spans = None
    shard_spans = None
    spans_dropped = 0
    if config.tracing:
        # the primary's stream is exported only now: driving it to the
        # merged stop emits the tail of its timeline spans
        shard_spans = [primary.tracer.export()] + [o[3] for o in outcomes]
        spans = canonical_spans(shard_spans, sim_time)
        spans_dropped = primary.tracer.dropped + sum(o[4] for o in outcomes)

    return SimulationResult(
        config=config,
        response_time=merged.response_time(config.measure_fraction),
        restart_ratio=merged.restart_ratio(config.measure_fraction),
        metrics=merged,
        server=primary.server,
        trace=None,
        sim_time=sim_time,
        events=events,
        spans=spans,
        shard_spans=shard_spans,
        spans_dropped=spans_dropped,
        profile=profiler.as_dict(),
    )


def _run_replay(
    config: SimulationConfig,
    *,
    workers: Optional[int] = None,
    max_events: Optional[int] = None,
    _force_record: bool = False,
) -> SimulationResult:
    """The timeline-arena path: broadcast once, replay everywhere.

    Cache miss (or uncacheable config): the primary slice runs live as
    the **recording pass** — its own readers, the ghost-free updaters,
    the crash schedule — then keeps the timeline running to a horizon
    with headroom, seals the arena, and the remaining slices replay
    against it.  Cache hit: *every* slice replays (the primary's too),
    and the timeline's counters are folded in from the arena's journal.
    """
    profiler = PhaseProfiler()
    slices = reader_slices(config)
    cacheable = timeline_cacheable(config)
    arena: Optional[TimelineArena] = None
    if cacheable and not _force_record:
        arena = TIMELINE_CACHE.lookup(config)
    cache_hit = arena is not None
    fallbacks = 0

    recording: Optional[BroadcastSimulation] = None
    local_stop = 0.0
    events = 0
    if arena is None:
        # recording pass: one live simulation owns the whole timeline
        recording = BroadcastSimulation(
            config, slice_=slices[0], record_timeline=True
        )
        with profiler.phase("record"):
            local_stop, events = recording.execute(max_events)
        horizon = (
            local_stop * _HORIZON_FACTOR
            + _HORIZON_SLACK_CYCLES * recording.layout.cycle_bits
        )
        with profiler.phase("extend"):
            recording.extend_timeline(horizon, max_events=max_events)
        with profiler.phase("seal"):
            arena = recording.seal_timeline(horizon)
            if cacheable:
                TIMELINE_CACHE.store(config, arena)

    rest = slices[1:]
    if workers is None:
        workers = min(len(rest), max(1, (os.cpu_count() or 1) - 1))

    outcomes: List[
        Tuple[MetricsCollector, float, int, List[Span], int, bool]
    ] = []
    primary_outcome: Optional[
        Tuple[MetricsCollector, float, int, List[Span], int]
    ] = None
    with profiler.phase("replay"):
        try:
            if rest and workers > 0:
                handle = arena.share()
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _run_shard_replay, (config, sl, handle, max_events)
                        )
                        for sl in rest
                    ]
                    if recording is None:
                        # cache hit: the parent replays the primary slice
                        # itself while the pool works — exhaustion here means
                        # the cached horizon is too short for this config's
                        # clients, so drop it and re-record
                        try:
                            primary_outcome = _replay_primary(
                                config, slices[0], arena, max_events
                            )
                        except TimelineExhausted:
                            for future in futures:
                                future.cancel()
                            TIMELINE_CACHE.discard(config)
                            return _run_replay(
                                config,
                                workers=workers,
                                max_events=max_events,
                                _force_record=True,
                            )
                    outcomes = _collect(futures, rest, 1)
            else:
                if recording is None:
                    try:
                        primary_outcome = _replay_primary(
                            config, slices[0], arena, max_events
                        )
                    except TimelineExhausted:
                        TIMELINE_CACHE.discard(config)
                        return _run_replay(
                            config,
                            workers=workers,
                            max_events=max_events,
                            _force_record=True,
                        )
                for index, sl in enumerate(rest):
                    try:
                        outcomes.append(
                            _run_shard_replay((config, sl, arena, max_events))
                        )
                    except Exception as exc:
                        raise ShardExecutionError(1 + index, sl, exc) from exc
        finally:
            arena.close_shared()

    primary_spans: List[Span] = []
    spans_dropped = 0
    if recording is not None:
        merged = recording.metrics
        sim_time = local_stop
    else:
        assert primary_outcome is not None
        merged, sim_time, primary_events, primary_spans, spans_dropped = (
            primary_outcome
        )
        events += primary_events
    with profiler.phase("merge"):
        for (
            shard_metrics,
            shard_time,
            shard_events,
            _spans,
            _dropped,
            fell_back,
        ) in outcomes:
            merged.merge_from(shard_metrics)
            if shard_time > sim_time:
                sim_time = shard_time
            events += shard_events
            if fell_back:
                fallbacks += 1

    with profiler.phase("drive"):
        if recording is not None:
            # the timeline must cover the same simulated span an unsharded
            # run's would: drive past the horizon if a shard outlived it
            # (rare — it means that shard fell back), then fold the
            # extension-phase counters the merged stop time covers
            if sim_time > recording.sim.now:
                recording.sim.run(until=sim_time, max_events=max_events)
            if sim_time > local_stop:
                recording.fold_timeline_journal(upto=sim_time)
            server = recording.server
        else:
            if sim_time > arena.horizon_time:
                # a fallen-back shard ran past the cached horizon: the
                # journal cannot cover it — drop the entry and re-record
                TIMELINE_CACHE.discard(config)
                return _run_replay(
                    config, workers=workers, max_events=max_events, _force_record=True
                )
            arena.apply_journal(merged, upto=sim_time)
            server = None

    spans = None
    shard_spans = None
    if config.tracing:
        # the recording pass's stream is exported only now: it contains
        # the extension-phase timeline spans, which canonical_spans
        # truncates with the same ``start <= sim_time`` predicate the
        # journal fold uses, so span counts reconcile with counters
        if recording is not None:
            primary_spans = recording.tracer.export()
            spans_dropped = recording.tracer.dropped
        shard_spans = [primary_spans] + [o[3] for o in outcomes]
        spans = canonical_spans(shard_spans, sim_time)
        spans_dropped += sum(o[4] for o in outcomes)

    stats: Dict[str, object] = {
        "mode": "replay",
        "shards": len(slices),
        "cache_hit": cache_hit,
        "fallbacks": fallbacks,
        "cache": TIMELINE_CACHE.stats.as_dict(),
    }
    return SimulationResult(
        config=config,
        response_time=merged.response_time(config.measure_fraction),
        restart_ratio=merged.restart_ratio(config.measure_fraction),
        metrics=merged,
        server=server,
        trace=None,
        sim_time=sim_time,
        events=events,
        timeline_stats=stats,
        spans=spans,
        shard_spans=shard_spans,
        spans_dropped=spans_dropped,
        profile=profiler.as_dict(),
    )
