"""Sharded simulation: partition the read-only population over processes.

One broadcast serves every client, but fault-free read-only clients are
pure *observers*: nothing they do reaches the server, the cycle images,
or each other.  That makes the population embarrassingly parallel —
provided every shard sees the same broadcast.  Rather than shipping
cycle images between processes (IPC volume proportional to simulated
time), each shard deterministically **recomputes** the authoritative
timeline from the config's seeds: the cycle process, the server process,
the crash schedule, and every update-capable client (whose uplink
submissions mutate the server) run in *every* shard, bit-identically.
On top of that shared timeline each shard simulates only its own
contiguous range of read-only clients.

The only inter-process traffic is the result: each worker returns its
:class:`~repro.sim.metrics.MetricsCollector`, and the parent folds them
together with :meth:`~repro.sim.metrics.MetricsCollector.merge_from` in
shard order.  Double counting is prevented by the primary/ghost split
(:class:`~repro.sim.simulation.ShardSlice`): exactly one shard — the
primary, which the parent runs in-process while the pool works — records
the timeline's metrics; the others route them into a discarded shadow
collector.  Summary statistics sort the merged samples by a
layout-independent key, so the reported numbers are bit-identical to an
unsharded run's — the property tests assert this across shard counts.

``workers=0`` runs every shard sequentially in-process: same results,
no pool — the mode tests use to exercise slicing without fork overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

from .config import SimulationConfig
from .metrics import MetricsCollector
from .simulation import BroadcastSimulation, ShardSlice, SimulationResult

__all__ = ["reader_slices", "run_sharded"]


def reader_slices(config: SimulationConfig) -> List[ShardSlice]:
    """Partition the read-only population into ``config.shards`` slices.

    Contiguous, near-even ranges (the first ``readers % shards`` slices
    get the extra client); every slice also carries the update-capable
    prefix ``[0, updaters)``, which all shards must simulate.  The shard
    count is clamped to the number of read-only clients — an empty shard
    would be pure overhead.
    """
    updaters = config.update_capable_clients()
    readers = config.num_clients - updaters
    shards = min(config.shards, readers)
    if shards <= 1:
        return [
            ShardSlice(
                updaters=updaters,
                reader_lo=updaters,
                reader_hi=config.num_clients,
                primary=True,
            )
        ]
    base, extra = divmod(readers, shards)
    slices: List[ShardSlice] = []
    lo = updaters
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        slices.append(
            ShardSlice(
                updaters=updaters,
                reader_lo=lo,
                reader_hi=lo + size,
                primary=index == 0,
            )
        )
        lo += size
    return slices


def _run_shard(
    job: Tuple[SimulationConfig, ShardSlice, Optional[int]]
) -> Tuple[MetricsCollector, float, int]:
    """Worker entry point: one shard, returns its collector + run stats.

    Module-level so the process pool can pickle it; also the inline path
    for ``workers=0``.
    """
    config, slice_, max_events = job
    simulation = BroadcastSimulation(config, slice_=slice_)
    sim_time, events = simulation.execute(max_events)
    return simulation.metrics, sim_time, events


def run_sharded(
    config: SimulationConfig,
    *,
    workers: Optional[int] = None,
    collect_trace: bool = False,
    max_events: Optional[int] = None,
) -> SimulationResult:
    """Run ``config`` as ``config.shards`` cooperating simulations.

    ``workers=None`` sizes the pool to ``min(shards - 1, cpus - 1)``
    (the parent itself runs the primary shard, so one core is spoken
    for); ``workers=0`` forces sequential in-process execution.
    """
    if collect_trace:
        raise ValueError(
            "sharded runs record no trace (each shard sees only its own "
            "clients); use shards=1 for trace/audit runs"
        )
    slices = reader_slices(config)
    if len(slices) == 1:
        return BroadcastSimulation(config, slice_=slices[0]).run(
            max_events=max_events
        )
    rest = slices[1:]
    if workers is None:
        workers = min(len(rest), max(1, (os.cpu_count() or 1) - 1))
    if workers <= 0:
        outcomes = [_run_shard((config, sl, max_events)) for sl in rest]
        primary = BroadcastSimulation(config, slice_=slices[0])
        sim_time, events = primary.execute(max_events)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_shard, (config, sl, max_events)) for sl in rest
            ]
            # the parent is shard 0 — it computes the primary (metric-
            # recording) timeline while the pool handles the rest
            primary = BroadcastSimulation(config, slice_=slices[0])
            sim_time, events = primary.execute(max_events)
            outcomes = [future.result() for future in futures]

    merged = primary.metrics
    for shard_metrics, shard_time, shard_events in outcomes:
        merged.merge_from(shard_metrics)
        if shard_time > sim_time:
            sim_time = shard_time
        events += shard_events

    # an unsharded run's timeline (server completions, crash recovery)
    # keeps going until the globally-last client finishes; the primary —
    # the one shard whose timeline metrics are recorded — must cover the
    # same span, so drive it forward to the merged stop time
    if sim_time > primary.sim.now:
        primary.sim.run(until=sim_time, max_events=max_events)

    return SimulationResult(
        config=config,
        response_time=merged.response_time(config.measure_fraction),
        restart_ratio=merged.restart_ratio(config.measure_fraction),
        metrics=merged,
        server=primary.server,
        trace=None,
        sim_time=sim_time,
        events=events,
    )
