"""Simulation processes: the broadcast cycle, the server, and clients.

Event choreography (all times in bit-units):

* the **cycle process** fires at every cycle boundary, freezing the
  committed database + control info into the cycle's broadcast image;
* the **server process** completes update transactions with exponential
  (or deterministic) inter-completion gaps — rate 1 per
  ``server_txn_interval`` (Table 1) — committing them in completion
  order, which is therefore the serialization order the control matrix
  needs;
* each **client process** runs read-only transactions back to back: an
  exponential think time before each read (except the first, matching
  "inter-operation delay"), a wait until the object's slot in the
  broadcast, validation against the cycle's control snapshot, abort and
  restart from scratch on rejection, and an exponential inter-transaction
  delay after commit.  Response time spans submission to commit,
  including restarts (Sec. 4's metric).

Object slots lie strictly inside a cycle and cycle-boundary events are
scheduled before same-time reads, so a read at slot time ``t`` always
observes the broadcast image of the cycle containing ``t``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Sequence, Union

from ..broadcast.layout import FlatLayout
from ..broadcast.program import BroadcastCycle
from ..client.cache import QuasiCache
from ..client.runtime import ClientUpdateTransactionRuntime, ReadOnlyTransactionRuntime
from ..core.validators import ReadValidator
from ..obs.tracer import NULL_TRACER, Tracer
from ..server.server import BroadcastServer
from ..server.workload import ClientWorkload, ServerWorkload
from .config import SimulationConfig
from .engine import Simulator, Timeout, WaitUntil
from .metrics import MetricsCollector
from .trace import TraceRecorder

if TYPE_CHECKING:  # type-only: faults/arena import engine, never processes
    from .arena import TimelineView
    from .faults import FaultRuntime

__all__ = ["SharedState", "cycle_process", "server_process", "client_process"]

#: what a simulation process generator yields / returns
SimEvents = Generator[Union[Timeout, WaitUntil], None, None]
SimAttempt = Generator[Union[Timeout, WaitUntil], None, bool]

#: the 1-bit re-tune pause after a lost slot; immutable, so one shared
#: instance serves every loss event in every client
_LOSS_RETUNE = Timeout(1.0)


@dataclass
class SharedState:
    """State shared between the simulation's processes."""

    current_broadcast: Optional[BroadcastCycle] = None
    previous_broadcast: Optional[BroadcastCycle] = None
    clients_done: int = 0
    num_clients: int = 1
    #: per-run fault state; None on zero-fault runs — every fault hook in
    #: the processes below is guarded on it, so fault-free event sequences
    #: are untouched
    faults: Optional["FaultRuntime"] = None
    #: when set (the analytical tier and the arena recording pass), every
    #: installed broadcast image is retained here by cycle number, so
    #: replays can read arbitrarily far behind the live pair
    record_images: Optional[Dict[int, BroadcastCycle]] = None
    #: when set (a replay shard), broadcast images come from a sealed
    #: timeline arena instead of live cycle/server processes — the shard
    #: hosts no timeline at all (docs/PERFORMANCE.md §6)
    timeline: Optional["TimelineView"] = None
    #: span sink for the timeline-side processes (cycle/server/crash);
    #: the no-op singleton unless tracing is on *and* this shard owns
    #: the timeline (exactly one primary emits timeline spans, mirroring
    #: the primary-only timeline-metrics rule)
    tracer: Tracer = NULL_TRACER

    @property
    def all_clients_done(self) -> bool:
        return self.clients_done >= self.num_clients

    def advance(self, broadcast: BroadcastCycle) -> None:
        if self.record_images is not None:
            self.record_images[broadcast.cycle] = broadcast
        self.previous_broadcast = self.current_broadcast
        self.current_broadcast = broadcast

    def broadcast_for(self, cycle: int) -> BroadcastCycle:
        """The broadcast image of ``cycle``.

        The last object's slot ends exactly on the cycle boundary, at
        which instant the next image has already been installed — hence
        the previous image is retained one cycle.
        """
        if self.timeline is not None:
            return self.timeline.broadcast(cycle)
        for candidate in (self.current_broadcast, self.previous_broadcast):
            if candidate is not None and candidate.cycle == cycle:
                return candidate
        raise RuntimeError(f"no broadcast image for cycle {cycle}")


def cycle_process(
    sim: Simulator,
    server: BroadcastServer,
    layout: FlatLayout,
    state: SharedState,
    trace: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsCollector] = None,
) -> "SimEvents":
    """Freeze and 'transmit' one broadcast image per cycle, forever."""
    cycle = 0
    # the events are immutable descriptors: one instance serves every cycle
    cycle_tick = Timeout(layout.cycle_bits)
    tracer = state.tracer
    while True:
        cycle += 1
        faults = state.faults
        if faults is not None and (
            faults.server_down or server.current_cycle >= cycle
        ):
            # dead air: the server is down — or crash recovery already
            # re-issued this cycle as a quiescent replay — so no fresh
            # image goes out at this boundary
            yield cycle_tick
            continue
        broadcast = server.begin_cycle(cycle)
        state.advance(broadcast)
        if metrics is not None:
            metrics.cycles_broadcast += 1
        if tracer.enabled:
            tracer.emit(
                sim.now,
                sim.now + layout.cycle_bits,
                "timeline",
                0,
                "cycle",
                "ok",
                str(cycle),
            )
        if trace is not None and trace.record_cycles:
            trace.record_cycle(broadcast)
        yield cycle_tick


def server_process(
    sim: Simulator,
    config: SimulationConfig,
    server: BroadcastServer,
    workload: ServerWorkload,
    layout: FlatLayout,
    rng: random.Random,
    metrics: MetricsCollector,
    state: Optional[SharedState] = None,
) -> "SimEvents":
    """Complete server update transactions at the configured rate."""
    deterministic = config.server_interval_distribution == "deterministic"
    faults = state.faults if state is not None else None
    tracer = state.tracer if state is not None else NULL_TRACER
    while True:
        if deterministic:
            gap = config.server_txn_interval
        else:
            gap = rng.expovariate(1.0 / config.server_txn_interval)
        yield Timeout(gap)  # rep: allow-alloc — the gap varies per event
        spec = workload.next_transaction()
        if faults is not None and faults.server_down:
            # the completion evaporates with the crashed server
            metrics.server_txns_lost += 1
            if tracer.enabled:
                tracer.emit(
                    sim.now, sim.now, "timeline", 1, "server.commit", "lost", spec.tid
                )
            continue
        if not spec.write_set:
            continue  # read-only at the server: nothing to install
        cycle = layout.cycle_of(sim.now)
        writes = {obj: spec.tid for obj in spec.write_set}
        server.commit_update(spec.tid, spec.read_set, writes, cycle=cycle)
        metrics.server_commits += 1
        if tracer.enabled:
            tracer.emit(
                sim.now, sim.now, "timeline", 1, "server.commit", "ok", spec.tid
            )


def client_process(
    sim: Simulator,
    config: SimulationConfig,
    client_id: int,
    workload: ClientWorkload,
    validator: ReadValidator,
    layout: FlatLayout,
    state: SharedState,
    metrics: MetricsCollector,
    rng: random.Random,
    server: Optional[BroadcastServer] = None,
    trace: Optional[TraceRecorder] = None,
    cache: Optional[QuasiCache] = None,
    tracer: Tracer = NULL_TRACER,
) -> "SimEvents":
    """Run ``num_client_transactions`` client transactions to commit.

    A configurable fraction are *update* transactions (Sec. 3.2.1's
    client functionality): they validate their reads off the air like
    everyone else, buffer writes locally, and at commit ship the
    submission over the uplink for backward validation — a rejection
    restarts the transaction just like a failed read.
    """
    restart_pause = Timeout(config.restart_delay) if config.restart_delay > 0 else None
    faults = state.faults
    staleness_window = faults.staleness_window if faults is not None else None
    for _txn_index in range(config.num_client_transactions):
        tid, objects = workload.next_transaction()
        tid = f"cl{client_id}.{tid}"
        is_update = (
            config.client_update_fraction > 0.0
            and server is not None
            and config.update_capable(client_id)
            and rng.random() < config.client_update_fraction
        )
        if is_update:
            runtime: ReadOnlyTransactionRuntime = ClientUpdateTransactionRuntime(
                tid, objects, validator, staleness_window=staleness_window
            )
            num_writes = max(
                1, round(len(objects) * config.client_update_write_fraction)
            )
            write_objs = list(objects[:num_writes])
        else:
            runtime = ReadOnlyTransactionRuntime(
                tid, objects, validator, staleness_window=staleness_window
            )
            write_objs = []
        submit_time = sim.now
        restarts = 0

        while True:  # attempts
            attempt_start = sim.now
            committed = yield from _attempt(
                sim,
                config,
                runtime,
                layout,
                state,
                metrics,
                rng,
                cache,
                client_id=client_id,
                tracer=tracer,
                attempt_start=attempt_start,
            )
            if committed and is_update:
                committed = yield from _submit_update(
                    sim,
                    config,
                    runtime,
                    write_objs,
                    server,
                    metrics,
                    state=state,
                    client_id=client_id,
                    tracer=tracer,
                    attempt_start=attempt_start,
                )
            if committed:
                if tracer.enabled:
                    tracer.emit(
                        attempt_start, sim.now, "client", client_id, "attempt", "ok", tid
                    )
                break
            restarts += 1
            runtime.restart()
            if restart_pause is not None:
                yield restart_pause

        metrics.record_commit(tid, submit_time, sim.now, restarts)
        if tracer.enabled:
            tracer.emit(submit_time, sim.now, "client", client_id, "txn", "ok", tid)
        if trace is not None:
            trace.record_session_commit(client_id, tid)
            if not is_update:
                trace.record_client_commit(tid, runtime.versions, runtime.reads)
        yield Timeout(rng.expovariate(1.0 / config.mean_inter_transaction_delay))

    state.clients_done += 1


def _submit_update(
    sim: Simulator,
    config: SimulationConfig,
    runtime: ReadOnlyTransactionRuntime,
    write_objs: Sequence[int],
    server: "BroadcastServer",
    metrics: MetricsCollector,
    state: Optional[SharedState] = None,
    client_id: int = 0,
    tracer: Tracer = NULL_TRACER,
    attempt_start: float = 0.0,
) -> "SimAttempt":
    """Ship a finished update transaction up the uplink; True iff committed.

    With faults active a submission can be lost — in transit (the plan's
    ``uplink_loss_probability``, drawn from the client's own seeded
    stream so the sequence is independent of executor and shard layout)
    or because the server is down when it arrives.  Either way no
    verdict comes back: the client waits out the plan's verdict timeout,
    backs off multiplicatively, and resubmits, up to
    ``uplink_max_retries`` times before the attempt aborts with a
    cause-attributed metric.
    """
    assert isinstance(runtime, ClientUpdateTransactionRuntime)
    for obj in write_objs:
        runtime.write(obj, f"{runtime.tid}#{runtime.attempt}")
    faults = state.faults if state is not None else None
    plan = faults.plan if faults is not None else None
    half_rtt = Timeout(config.uplink_round_trip / 2)
    retries = 0
    uplink_start = sim.now
    tid = runtime.tid
    while True:
        yield half_rtt
        if plan is not None and faults is not None:
            if faults.server_down:
                # the submission reaches a dead uplink: no verdict ever
                metrics.uplink_crash_losses += 1
                cause = "crash"
            elif plan.uplink_loss_probability > 0.0 and faults.uplink_lost(
                client_id
            ):
                metrics.uplink_losses += 1
                cause = "uplink"
            else:
                cause = None
            if cause is not None:
                if retries >= plan.uplink_max_retries:
                    metrics.record_abort(cause)
                    if tracer.enabled:
                        tracer.emit(
                            uplink_start, sim.now, "client", client_id,
                            "uplink", cause, tid,
                        )
                        tracer.emit(
                            attempt_start, sim.now, "client", client_id,
                            "attempt", cause, tid,
                        )
                    return False
                if tracer.enabled:
                    tracer.emit(
                        sim.now, sim.now, "client", client_id,
                        "uplink.retry", cause, tid,
                    )
                # wait out the verdict timeout, back off, resubmit
                yield Timeout(  # rep: allow-alloc — backoff grows per retry
                    plan.uplink_timeout * plan.uplink_backoff**retries
                )
                retries += 1
                metrics.uplink_retries += 1
                continue
        outcome = server.submit_client_update(runtime.submission())
        yield half_rtt
        if outcome.committed:
            metrics.client_updates_committed += 1
            if tracer.enabled:
                tracer.emit(
                    uplink_start, sim.now, "client", client_id, "uplink", "ok", tid
                )
            return True
        metrics.client_updates_rejected += 1
        metrics.record_abort("conflict")
        if tracer.enabled:
            tracer.emit(
                uplink_start, sim.now, "client", client_id, "uplink", "conflict", tid
            )
            tracer.emit(
                attempt_start, sim.now, "client", client_id, "attempt", "conflict", tid
            )
        return False


def _attempt(
    sim: Simulator,
    config: SimulationConfig,
    runtime: ReadOnlyTransactionRuntime,
    layout: FlatLayout,
    state: SharedState,
    metrics: MetricsCollector,
    rng: random.Random,
    cache: Optional[QuasiCache],
    client_id: int = 0,
    tracer: Tracer = NULL_TRACER,
    attempt_start: float = 0.0,
) -> "SimAttempt":
    """One attempt of a client transaction; True iff it commits."""
    faults = state.faults
    first = True
    while not runtime.is_done:
        if not first or config.delay_before_first_operation:
            yield Timeout(rng.expovariate(1.0 / config.mean_inter_operation_delay))
        first = False
        obj = runtime.next_object
        assert obj is not None

        broadcast: Optional[BroadcastCycle] = None
        if cache is not None:
            entry = cache.lookup(obj, sim.now)
            if entry is not None:
                broadcast = entry.as_broadcast()
                metrics.cache_hits += 1
        if broadcast is None:
            while True:
                if faults is not None:
                    wake = faults.doze_wake(client_id, sim.now)
                    if wake is not None:
                        # the radio is off: fast-forward to the rejoin
                        yield WaitUntil(wake)  # rep: allow-alloc — doze rejoin
                hit = layout.next_read(obj, sim.now)
                yield WaitUntil(hit.time)  # rep: allow-alloc — a new slot per retry
                if faults is not None and not faults.slot_heard(
                    client_id, hit.time - layout.slot_bits, hit.time
                ):
                    # dozed or dead air through (part of) the slot: same
                    # re-tune as a radio loss, but charged to its cause
                    yield _LOSS_RETUNE
                    continue
                if (
                    config.broadcast_loss_probability > 0.0
                    and rng.random() < config.broadcast_loss_probability
                ):
                    # radio loss: the slot went by unheard; catch the
                    # object's next appearance
                    metrics.broadcast_losses += 1
                    yield _LOSS_RETUNE
                    continue
                break
            broadcast = state.broadcast_for(hit.cycle)
            # tuning time: the client listened for the whole slot (data +
            # its control share); a cache hit costs nothing — the battery
            # argument of Secs. 2.1/3.3 made measurable
            metrics.listening_bits += layout.slot_bits
            if cache is not None:
                cache.insert(broadcast, obj, sim.now)

        outcome = runtime.deliver(broadcast)
        if outcome.ok:
            metrics.reads_delivered += 1
        else:
            metrics.reads_rejected += 1
            cause = "staleness" if outcome.stale else "conflict"
            metrics.record_abort(cause)
            if cache is not None:
                # every read of this attempt is a staleness suspect —
                # evict them so the retry re-fetches off the air instead
                # of re-aborting on the same cached versions
                cache.evict(outcome.obj)
                for read_obj, _cycle in runtime.reads:
                    cache.evict(read_obj)
            if tracer.enabled:
                tracer.emit(
                    attempt_start, sim.now, "client", client_id,
                    "attempt", cause, runtime.tid,
                )
            return False
    runtime.commit()
    return True
