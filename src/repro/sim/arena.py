"""Timeline arena: record the authoritative broadcast once, replay it anywhere.

PR 7's shard layer made the read-only population embarrassingly parallel
by having every shard *recompute* the authoritative timeline — cycle
process, server process, crash schedule, update clients — from the
config's seeds.  Correct, but k shards pay k× the timeline cost, so the
speedup plateaus exactly when the timeline is expensive (busy servers,
long horizons, update-heavy plans).  This module materialises the
paper's own asymmetry instead: *one* broadcast, many observers.

The **recording pass** (the primary shard, run live) retains every
installed broadcast image; :meth:`TimelineArena.from_images` then
serialises that history into flat append-only buffers:

* a **snapshot pool** — the distinct frozen control arrays, deduplicated
  by identity (the server's copy-on-write freeze reuses the previous
  frozen array across quiescent cycles, so identical images *are* the
  same object), stacked into one dense block;
* a per-cycle **snapshot index** and **version-epoch index** (``-1`` =
  dead air during a crash outage: no image went out at that boundary);
* a **version-epoch table** — per-object indices into an interned
  version-entry store (value, writer, commit cycle), one epoch per
  maximal run of cycles whose committed state is unchanged;
* the **timeline journal** — every timeline-side counter increment as a
  ``(time, field, delta)`` triple, so a replay can reconstruct the
  timeline's metrics at any stop time ``T`` without running it.

:meth:`TimelineArena.share` copies the numpy blocks into one
``multiprocessing.shared_memory`` segment and returns a small picklable
:class:`TimelineHandle`; pool workers :meth:`~TimelineArena.attach` and
get zero-copy read-only views.  :class:`TimelineView` turns an arena
back into ``broadcast(cycle)`` — the exact interface
``SharedState.broadcast_for`` and the analytic tier's replay loop
consume — rebuilding each :class:`~repro.broadcast.program.BroadcastCycle`
lazily from the flat buffers (snapshots via
:func:`repro.broadcast.control_info.rebuild_snapshot`).  Reading past
the recorded horizon raises :class:`TimelineExhausted`; the shard layer
falls back to recomputation for that shard, so replay is an
optimisation, never a correctness risk.

On top sits the **cross-run cache** (:data:`TIMELINE_CACHE`): for
update-free, fault-free configs the timeline is a pure function of the
server-side fields + seed (:func:`timeline_fingerprint`), so sweep and
benchmark points that vary only client-side parameters — population
size, delays, cache tiers, executor — reuse the identical arena with
zero recomputation.  Hit/miss counts are surfaced for the benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..broadcast.control_info import rebuild_snapshot, snapshot_payload
from ..broadcast.program import BroadcastCycle, ObjectVersion
from ..core.group_matrix import Partition
from .engine import Simulator
from .metrics import MetricsCollector

if TYPE_CHECKING:  # type-only: config imports faults, never arena
    from .config import SimulationConfig

__all__ = [
    "TimelineExhausted",
    "TimelineArena",
    "TimelineHandle",
    "TimelineView",
    "TimelineCache",
    "TIMELINE_CACHE",
    "RecordingTimelineMetrics",
    "timeline_fingerprint",
    "timeline_cacheable",
]

#: one recorded timeline-counter increment: (sim time, field name, delta)
JournalEntry = Tuple[float, str, int]


class TimelineExhausted(RuntimeError):
    """A replay needed a cycle beyond the arena's recorded horizon.

    The shard layer catches this and recomputes the affected shard's
    timeline live — bit-identical by construction, just slower.
    """

    def __init__(self, cycle: int, horizon_cycle: int) -> None:
        super().__init__(
            f"replay needs cycle {cycle} but the timeline arena ends at "
            f"cycle {horizon_cycle}; falling back to recomputation"
        )
        self.cycle = cycle
        self.horizon_cycle = horizon_cycle


@dataclass(frozen=True)
class TimelineHandle:
    """A picklable reference to a shared-memory arena.

    The only thing (besides a :class:`~repro.sim.metrics.MetricsCollector`)
    allowed to cross a process boundary in a sharded run: the segment
    name plus the shapes/dtypes/offsets needed to rebuild zero-copy
    views, and the small interned version tables.  No simulator state,
    no server, no numpy payload travels in the pickle.
    """

    shm_name: str
    kind: str
    num_objects: int
    cycle_bits: float
    horizon_time: float
    partition: Optional[Partition]
    #: (shape, dtype string, byte offset) per block, in block order
    blocks: Tuple[Tuple[Tuple[int, ...], str, int], ...]
    values: Tuple[object, ...]
    writers: Tuple[str, ...]


#: the arena's numpy blocks, in the order they are packed into a segment
_BLOCK_NAMES = (
    "snap_pool",
    "snap_index",
    "epoch_index",
    "epoch_table",
    "entry_commit_cycles",
)


class TimelineArena:
    """A sealed broadcast timeline in flat, append-only buffers."""

    def __init__(
        self,
        *,
        kind: str,
        num_objects: int,
        cycle_bits: float,
        horizon_time: float,
        partition: Optional[Partition],
        snap_pool: np.ndarray,
        snap_index: np.ndarray,
        epoch_index: np.ndarray,
        epoch_table: np.ndarray,
        entry_commit_cycles: np.ndarray,
        values: Tuple[object, ...],
        writers: Tuple[str, ...],
        journal: Tuple[JournalEntry, ...] = (),
    ) -> None:
        self.kind = kind
        self.num_objects = num_objects
        self.cycle_bits = cycle_bits
        self.horizon_time = horizon_time
        self.partition = partition
        snap_pool.flags.writeable = False
        self.snap_pool = snap_pool
        self.snap_index = snap_index
        self.epoch_index = epoch_index
        self.epoch_table = epoch_table
        self.entry_commit_cycles = entry_commit_cycles
        self.values = values
        self.writers = writers
        #: timeline-counter increments, recorded by the recording pass;
        #: stays parent-side (never shipped to workers)
        self.journal = journal
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._owns_shm = False
        self._offsets: List[int] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def from_images(
        cls,
        images: Dict[int, BroadcastCycle],
        *,
        cycle_bits: float,
        horizon_time: float,
        partition: Optional[Partition],
        journal: Tuple[JournalEntry, ...] = (),
    ) -> "TimelineArena":
        """Serialise a recorded image history into flat buffers.

        Deduplication leans on the server's copy-on-write freeze: the
        control array of a quiescent cycle *is* the previous cycle's
        array (same object), and the committed-version tuples of
        commit-free stretches share every element — so the pool holds
        one row per distinct image and the epoch table one row per
        commit-separated stretch.
        """
        if not images:
            raise ValueError("cannot seal an empty timeline")
        num_cycles = max(images)
        first = next(iter(images.values()))
        kind, _ = snapshot_payload(first.snapshot)
        num_objects = first.num_objects

        snap_index = np.full(num_cycles, -1, dtype=np.int32)
        epoch_index = np.full(num_cycles, -1, dtype=np.int32)
        pool: List[np.ndarray] = []
        pool_ids: Dict[int, int] = {}
        epochs: List[np.ndarray] = []
        entry_ids: Dict[int, int] = {}
        values: List[object] = []
        writers: List[str] = []
        commit_cycles: List[int] = []
        prev_versions: Optional[Tuple[ObjectVersion, ...]] = None
        prev_epoch = -1

        for cycle in sorted(images):
            image = images[cycle]
            _, array = snapshot_payload(image.snapshot)
            pool_row = pool_ids.get(id(array))
            if pool_row is None:
                pool_row = len(pool)
                pool.append(array)
                pool_ids[id(array)] = pool_row
            snap_index[cycle - 1] = pool_row

            versions = image.versions
            if prev_versions is not None and all(
                a is b for a, b in zip(versions, prev_versions)
            ):
                epoch = prev_epoch
            else:
                row = np.empty(num_objects, dtype=np.int32)
                for obj, version in enumerate(versions):
                    entry = entry_ids.get(id(version))
                    if entry is None:
                        entry = len(values)
                        entry_ids[id(version)] = entry
                        values.append(version.value)
                        writers.append(version.writer)
                        commit_cycles.append(version.commit_cycle)
                    row[obj] = entry
                epoch = len(epochs)
                epochs.append(row)
            epoch_index[cycle - 1] = epoch
            prev_versions = versions
            prev_epoch = epoch

        return cls(
            kind=kind,
            num_objects=num_objects,
            cycle_bits=float(cycle_bits),
            horizon_time=horizon_time,
            partition=partition,
            snap_pool=np.stack(pool),
            snap_index=snap_index,
            epoch_index=epoch_index,
            epoch_table=np.stack(epochs),
            entry_commit_cycles=np.asarray(commit_cycles, dtype=np.int64),
            values=tuple(values),
            writers=tuple(writers),
            journal=journal,
        )

    # -- replay ---------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        return len(self.snap_index)

    def view(self) -> "TimelineView":
        return TimelineView(self)

    def apply_journal(
        self, metrics: "MetricsCollector", *, upto: float
    ) -> None:
        """Fold the recorded timeline counters at stop time ``upto``.

        Equivalent to driving the live timeline to ``upto`` (inclusive,
        matching ``Simulator.run(until=...)``) with ``metrics`` as its
        collector — which is exactly what a cache-hit run skips.
        """
        for time, name, delta in self.journal:
            if time <= upto:
                setattr(metrics, name, getattr(metrics, name) + delta)

    # -- shared memory --------------------------------------------------
    def share(self) -> TimelineHandle:
        """Copy the blocks into shared memory; return the picklable handle.

        Idempotent per arena: the segment is created once and reused by
        subsequent calls until :meth:`close_shared`.  The arena itself
        keeps using its local arrays — the segment exists purely for
        workers to attach to, so closing it never invalidates the
        parent's views.
        """
        blocks = [getattr(self, name) for name in _BLOCK_NAMES]
        if self._shm is None:
            offsets: List[int] = []
            size = 0
            for block in blocks:
                size = -(-size // 8) * 8  # 8-byte align each block
                offsets.append(size)
                size += block.nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
            for block, offset in zip(blocks, offsets):
                dest: np.ndarray = np.ndarray(
                    block.shape, dtype=block.dtype, buffer=shm.buf, offset=offset
                )
                dest[...] = block
            self._shm = shm
            self._owns_shm = True
            self._offsets = offsets
        return TimelineHandle(
            shm_name=self._shm.name,
            kind=self.kind,
            num_objects=self.num_objects,
            cycle_bits=self.cycle_bits,
            horizon_time=self.horizon_time,
            partition=self.partition,
            blocks=tuple(
                (block.shape, block.dtype.str, offset)
                for block, offset in zip(blocks, self._offsets)
            ),
            values=self.values,
            writers=self.writers,
        )

    def close_shared(self) -> None:
        """Release the shared segment (the local arrays live on)."""
        if self._shm is not None:
            self._shm.close()
            if self._owns_shm:
                self._shm.unlink()
            self._shm = None
            self._owns_shm = False

    @classmethod
    def attach(cls, handle: TimelineHandle) -> "TimelineArena":
        """Zero-copy attach to a shared arena (worker side).

        The returned arena's arrays are read-only views straight into
        the shared segment; nothing is copied.  The segment stays mapped
        for the worker process's lifetime (the parent owns unlinking).
        """
        # Attach-only segments get (re-)registered with the resource
        # tracker (bpo-39959).  Pool workers are forked, so they share
        # the parent's tracker, whose name cache is a set: the worker's
        # registration is a no-op and the parent's unlink balances the
        # books — no per-worker unregister needed (one would double-
        # remove and crash the tracker).
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        arrays = []
        for (shape, dtype, offset), name in zip(handle.blocks, _BLOCK_NAMES):
            array: np.ndarray = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            array.flags.writeable = False
            arrays.append(array)
        arena = cls(
            kind=handle.kind,
            num_objects=handle.num_objects,
            cycle_bits=handle.cycle_bits,
            horizon_time=handle.horizon_time,
            partition=handle.partition,
            snap_pool=arrays[0],
            snap_index=arrays[1],
            epoch_index=arrays[2],
            epoch_table=arrays[3],
            entry_commit_cycles=arrays[4],
            values=handle.values,
            writers=handle.writers,
        )
        arena._shm = shm  # keep the mapping alive as long as the arena
        arena._owns_shm = False
        return arena


class TimelineView:
    """``broadcast(cycle)`` over an arena — the replay-side drop-in for
    the live ``SharedState.broadcast_for`` / analytic ``_Timeline``.

    Rebuilt cycles are memoised: snapshots wrap zero-copy views of the
    pooled control arrays (one fresh :class:`ControlSnapshot` per cycle,
    since the cycle anchor differs even when the array is shared), and
    each version epoch's :class:`ObjectVersion` tuple is interned once
    and shared by every cycle in the epoch — mirroring the identity
    structure the live server produces.
    """

    __slots__ = ("_arena", "_cycles", "_epochs")

    def __init__(self, arena: TimelineArena) -> None:
        self._arena = arena
        self._cycles: Dict[int, BroadcastCycle] = {}
        self._epochs: Dict[int, Tuple[ObjectVersion, ...]] = {}

    def broadcast(self, cycle: int) -> BroadcastCycle:
        image = self._cycles.get(cycle)
        if image is not None:
            return image
        arena = self._arena
        if cycle > arena.num_cycles:
            raise TimelineExhausted(cycle, arena.num_cycles)
        pool_row = int(arena.snap_index[cycle - 1]) if cycle >= 1 else -1
        if pool_row < 0:
            # dead air (crash outage): mirrors the live broadcast_for
            raise RuntimeError(f"no broadcast image for cycle {cycle}")
        snapshot = rebuild_snapshot(
            arena.kind, cycle, arena.snap_pool[pool_row], arena.partition
        )
        epoch = int(arena.epoch_index[cycle - 1])
        versions = self._epochs.get(epoch)
        if versions is None:
            row = arena.epoch_table[epoch]
            values = arena.values
            writers = arena.writers
            cycles = arena.entry_commit_cycles
            versions = tuple(
                ObjectVersion(obj, values[entry], writers[entry], int(cycles[entry]))
                for obj, entry in enumerate(row)
            )
            self._epochs[epoch] = versions
        image = BroadcastCycle(cycle=cycle, versions=versions, snapshot=snapshot)
        self._cycles[cycle] = image
        return image


class RecordingTimelineMetrics(MetricsCollector):
    """A journaling proxy wrapped around the timeline's metrics collector.

    The recording pass needs two things from the timeline's counters:
    they must land in the run's *real* collector (so a recording run's
    metrics match a recompute run bit for bit), and every increment must
    be replayable later at an arbitrary stop time (so a cache-hit run —
    which never drives the timeline at all — can reconstruct them).

    This subclass stores **no state of its own**: attribute reads fall
    through to the wrapped target, and counter writes are applied to the
    target *and* appended to :attr:`journal` as ``(now, field, delta)``.
    Inherited methods (``record_commit`` etc.) therefore work unchanged —
    they read through and write through.  Only the fields in
    ``MetricsCollector._COUNTER_FIELDS`` are journalled; array-growth
    reassignments and sample caches pass straight through.

    :meth:`retarget` swaps the target to a throwaway shadow collector at
    the moment the primary's local run ends, so the horizon-extension
    phase (recording cycles past the primary's own stop time) never
    pollutes the real metrics; :attr:`live_entries` marks the split so
    the fold-after-merge applies exactly the extension-phase deltas.
    """

    _JOURNALLED = frozenset(MetricsCollector._COUNTER_FIELDS)

    def __init__(self, sim: Simulator, target: MetricsCollector) -> None:
        # deliberately no super().__init__(): the proxy owns no counters
        object.__setattr__(self, "_sim", sim)
        object.__setattr__(self, "journal", [])
        object.__setattr__(self, "live_entries", None)
        object.__setattr__(self, "_target", target)

    def __getattr__(self, name: str) -> object:
        # only reached when normal lookup fails — i.e. for everything
        # the target owns (the proxy's own __dict__ holds just the four
        # attributes set above)
        return getattr(self.__dict__["_target"], name)

    def __setattr__(self, name: str, value: object) -> None:
        target = self.__dict__["_target"]
        if name in RecordingTimelineMetrics._JOURNALLED:
            old = getattr(target, name)
            setattr(target, name, value)
            self.__dict__["journal"].append(
                (self.__dict__["_sim"].now, name, value - old)  # type: ignore[operator]
            )
        else:
            setattr(target, name, value)

    def retarget(self, new_target: MetricsCollector) -> None:
        """Redirect writes to ``new_target``; mark the journal split."""
        object.__setattr__(self, "live_entries", len(self.journal))
        object.__setattr__(self, "_target", new_target)


# -- cross-run cache ----------------------------------------------------

#: config fields the authoritative timeline is a function of when no
#: client ever writes: the broadcast program, the server's workload and
#: clock, and the seed.  Client-side fields (population size, delays,
#: cache tiers, loss, executor, shard count) steer only the observers.
_TIMELINE_FIELDS = (
    "protocol",
    "num_objects",
    "object_size_bits",
    "timestamp_bits",
    "modulo_timestamps",
    "num_groups",
    "layout_kind",
    "hot_fraction",
    "hot_frequency",
    "server_txn_length",
    "server_txn_interval",
    "server_read_probability",
    "server_interval_distribution",
    "seed",
)


def timeline_cacheable(config: "SimulationConfig") -> bool:
    """May this config's timeline be reused across runs?

    Only when the timeline is a pure function of the server side: no
    update-capable clients (their uplink submissions mutate the server,
    entangling the timeline with client-side parameters) and no fault
    plan (doze/uplink schedules are client-shaped, and crash bookkeeping
    is interwoven with client metrics).  Traced runs are excluded too:
    a cached arena carries no span stream, so an untraced run's entry
    would hand a traced run a timeline with its cycle/server spans
    silently missing.
    """
    return (
        config.update_capable_clients() == 0
        and (config.faults is None or config.faults.is_noop)
        and not config.tracing
    )


def timeline_fingerprint(config: "SimulationConfig") -> str:
    """Hash of the server-side fields the timeline depends on."""
    digest = sha256()
    for name in _TIMELINE_FIELDS:
        digest.update(name.encode())
        digest.update(b"=")
        digest.update(repr(getattr(config, name)).encode())
        digest.update(b";")
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Cross-run cache telemetry (surfaced by the benchmarks)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: cached timelines discarded because a run outlived their horizon
    horizon_discards: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "horizon_discards": self.horizon_discards,
        }


class TimelineCache:
    """A small LRU of sealed arenas keyed by timeline fingerprint.

    Entries hold local (non-shared-memory) arrays only; each run that
    reuses one shares it into its own segment and releases it when done,
    so the cache never pins OS-level resources.
    """

    def __init__(self, capacity: int = 4) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[str, TimelineArena]" = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, config: "SimulationConfig") -> Optional[TimelineArena]:
        key = timeline_fingerprint(config)
        arena = self._entries.get(key)
        if arena is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return arena

    def store(self, config: "SimulationConfig", arena: TimelineArena) -> None:
        key = timeline_fingerprint(config)
        self._entries[key] = arena
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def discard(self, config: "SimulationConfig") -> None:
        """Drop a cached timeline a run outgrew (horizon too short)."""
        if self._entries.pop(timeline_fingerprint(config), None) is not None:
            self.stats.horizon_discards += 1

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


#: the process-wide cross-run cache (each sweep pool worker has its own)
TIMELINE_CACHE = TimelineCache()
