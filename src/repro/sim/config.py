"""Simulation parameters (Table 1 of the paper).

:class:`SimulationConfig` defaults to the paper's Table 1 values; every
experiment varies one field and keeps the rest.  Times are in *bit-units*
(time to broadcast one bit).  For the paper's 64 Kbit/s medium, the
inter-operation delay of 65536 bit-units is 1 second and the
inter-transaction delay of 131072 bit-units is 2 seconds.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..broadcast.control_info import ControlInfoScheme, scheme_for_protocol
from ..broadcast.layout import FlatLayout, MultiDiskLayout
from ..core.cycles import CycleArithmetic, ModuloCycles, UnboundedCycles
from ..core.group_matrix import Partition, uniform_partition
from ..core.validators import PROTOCOL_NAMES
from .faults import FaultPlan

__all__ = ["SimulationConfig", "KILOBYTE_BITS"]

#: bits in the paper's 1 KB object
KILOBYTE_BITS = 8 * 1024


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of the broadcast-disk simulation (Table 1 defaults)."""

    protocol: str = "f-matrix"

    # -- Table 1 ---------------------------------------------------------
    #: number of read operations per client transaction
    client_txn_length: int = 4
    #: number of read/write operations per server transaction
    server_txn_length: int = 8
    #: mean bit-units between server transaction completions (rate 1/x)
    server_txn_interval: float = 250_000.0
    num_objects: int = 300
    #: object size in bits (1 KB in the paper)
    object_size_bits: int = KILOBYTE_BITS
    server_read_probability: float = 0.5
    #: mean of the exponential inter-operation delay at the client
    mean_inter_operation_delay: float = 65_536.0
    #: mean of the exponential inter-transaction delay at the client
    mean_inter_transaction_delay: float = 131_072.0
    #: fixed delay before a restarted attempt begins
    restart_delay: float = 0.0
    timestamp_bits: int = 8

    # -- run shape --------------------------------------------------------
    #: client transactions to commit before the run ends
    num_client_transactions: int = 1000
    #: fraction of final transactions used for steady-state statistics
    measure_fraction: float = 0.5
    num_clients: int = 1
    seed: int = 42
    #: "process" — one simulator process per client (the oracle path);
    #: "cohort" — slot-coalesced batched execution for large populations
    #: (bit-identical results, far fewer kernel events);
    #: "analytic" — fast-forward fault-free read-only clients in closed
    #: form against a lazily-extended broadcast timeline (bit-identical
    #: to the oracle; O(1) transient state per client)
    client_executor: str = "process"
    #: partition the read-only population over N sharded simulations
    #: (docs/PERFORMANCE.md §5); 1 = single in-process run
    shards: int = 1
    #: "recompute" — every shard derives the authoritative timeline from
    #: the shared seeds (docs/PERFORMANCE.md §5); "replay" — one recording
    #: pass seals the timeline into a shared-memory arena and the other
    #: shards replay it zero-copy (§6); bit-identical either way
    timeline_mode: str = "recompute"
    #: only clients with id < N ever draw update transactions; None means
    #: every client may (the pre-existing behaviour).  Sharded or analytic
    #: runs with updates require an explicit bound so the read-only
    #: population is well defined.
    num_update_clients: Optional[int] = None
    #: retain per-transaction sample objects after the run (switch off
    #: for 10⁶-client runs; the array accumulators remain either way)
    keep_samples: bool = True

    # -- modelling choices (documented in DESIGN.md) ----------------------
    #: "exponential" (default) or "deterministic" server completion gaps
    server_interval_distribution: str = "exponential"
    #: apply an inter-operation delay before the first read too?
    delay_before_first_operation: bool = False
    #: compare timestamps modulo 2**timestamp_bits (paper's wire format)
    modulo_timestamps: bool = False

    # -- group-matrix protocol --------------------------------------------
    num_groups: int = 1

    # -- quasi-caching extension (Sec. 3.3) --------------------------------
    #: currency bound T in bit-units; None disables the client cache
    cache_currency_bound: Optional[float] = None
    cache_capacity: Optional[int] = None

    # -- multi-speed broadcast disks (extension; Acharya et al.) -----------
    #: "flat" (paper: single-speed) or "multi-disk" (hot/cold two-speed)
    layout_kind: str = "flat"
    #: fraction of objects on the hot disk
    hot_fraction: float = 0.2
    #: relative broadcast frequency of the hot disk (cold disk = 1)
    hot_frequency: int = 3
    #: probability a client read targets the hot set (0 = uniform, paper)
    client_access_skew: float = 0.0

    # -- failure injection --------------------------------------------------
    #: probability a client misses an awaited broadcast slot (radio loss);
    #: the read retries at the object's next appearance
    broadcast_loss_probability: float = 0.0
    #: deterministic fault schedule: client doze intervals, uplink
    #: submission loss, mid-run server crash + recovery (docs/FAULTS.md);
    #: None (or a no-op plan) leaves the run bit-identical to fault-free
    faults: Optional[FaultPlan] = None

    # -- client update transactions over the uplink (Sec. 3.2.1) -----------
    #: fraction of client transactions that also write (0 = paper's Sec. 4
    #: setting: read-only clients)
    client_update_fraction: float = 0.0
    #: fraction of an update transaction's read set it rewrites
    client_update_write_fraction: float = 0.5
    #: round-trip bit-time for submit + verdict on the scarce uplink
    uplink_round_trip: float = 8_192.0

    # -- analysis hooks -----------------------------------------------------
    #: record per-cycle broadcast images + the induced history and run the
    #: invariant auditor (:mod:`repro.analysis`) after the run
    audit: bool = False

    # -- observability (docs/OBSERVABILITY.md) ------------------------------
    #: emit sim-time lifecycle spans (attempts, uplink round-trips,
    #: cycles, crashes) into a bounded ring buffer; off by default so
    #: untraced runs stay bit-identical and allocation-free
    tracing: bool = False
    #: span ring-buffer capacity per tracer (oldest spans overwritten
    #: beyond this, counted in ``SimulationResult.spans_dropped``)
    trace_buffer: int = 1 << 20

    # ----------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOL_NAMES}"
            )
        if self.client_txn_length < 1:
            raise ValueError("client_txn_length must be >= 1")
        if self.server_txn_length < 1:
            raise ValueError("server_txn_length must be >= 1")
        if self.num_objects < self.client_txn_length:
            raise ValueError("client transactions read distinct objects")
        if self.num_objects < self.server_txn_length:
            raise ValueError("server transactions access distinct objects")
        if not 0 < self.measure_fraction <= 1:
            raise ValueError("measure_fraction must be in (0, 1]")
        if self.server_interval_distribution not in ("exponential", "deterministic"):
            raise ValueError("unknown server_interval_distribution")
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.client_executor not in ("process", "cohort", "analytic"):
            raise ValueError(
                "client_executor must be 'process', 'cohort' or 'analytic'"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.num_update_clients is not None and not (
            0 <= self.num_update_clients <= self.num_clients
        ):
            raise ValueError("num_update_clients must be in [0, num_clients]")
        if not 0.0 <= self.client_update_fraction <= 1.0:
            raise ValueError("client_update_fraction must be in [0, 1]")
        if not 0.0 < self.client_update_write_fraction <= 1.0:
            raise ValueError("client_update_write_fraction must be in (0, 1]")
        if self.uplink_round_trip < 0:
            raise ValueError("uplink_round_trip must be non-negative")
        if not 0.0 <= self.broadcast_loss_probability < 1.0:
            raise ValueError("broadcast_loss_probability must be in [0, 1)")
        if self.layout_kind not in ("flat", "multi-disk"):
            raise ValueError("layout_kind must be 'flat' or 'multi-disk'")
        if self.hot_frequency < 1:
            raise ValueError("hot_frequency must be >= 1")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.client_access_skew <= 1.0:
            raise ValueError("client_access_skew must be in [0, 1]")
        if not 0.0 <= self.server_read_probability <= 1.0:
            raise ValueError("server_read_probability must be in [0, 1]")
        if self.server_txn_interval <= 0:
            raise ValueError("server_txn_interval must be > 0")
        if self.mean_inter_operation_delay <= 0:
            raise ValueError("mean_inter_operation_delay must be > 0")
        if self.mean_inter_transaction_delay <= 0:
            raise ValueError("mean_inter_transaction_delay must be > 0")
        if self.restart_delay < 0:
            raise ValueError("restart_delay must be >= 0")
        if self.object_size_bits < 1:
            raise ValueError("object_size_bits must be >= 1")
        if self.timestamp_bits < 1:
            raise ValueError("timestamp_bits must be >= 1")
        if self.num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        if self.num_client_transactions < 0:
            raise ValueError("num_client_transactions must be >= 0")
        if self.cache_currency_bound is not None and self.cache_currency_bound < 0:
            raise ValueError("cache_currency_bound must be >= 0")
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise ValueError("faults must be a FaultPlan (or None)")
            if self.faults.max_doze_client >= self.num_clients:
                raise ValueError(
                    f"doze interval names client "
                    f"{self.faults.max_doze_client} but the run has only "
                    f"{self.num_clients} client(s)"
                )
            if self.client_executor == "analytic" and not self.faults.is_noop:
                raise ValueError(
                    "the analytical tier does not support fault injection "
                    "(doze/crash/uplink loss): faulty trajectories are not "
                    "closed-form replayable; use client_executor='process' "
                    "or 'cohort' (both simulate faults bit-identically)"
                )
        if self.client_executor == "analytic":
            if self.audit:
                raise ValueError(
                    "audit runs replay a recorded trace; the analytical "
                    "tier records none — use 'process' or 'cohort'"
                )
            if self.client_update_fraction > 0.0 and self.num_update_clients is None:
                raise ValueError(
                    "the analytical tier fast-forwards read-only clients; "
                    "with client_update_fraction > 0 set num_update_clients "
                    "so the update population is bounded (those clients run "
                    "event-driven under the cohort executor)"
                )
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be >= 1")
        if self.timeline_mode not in ("recompute", "replay"):
            raise ValueError("timeline_mode must be 'recompute' or 'replay'")
        if self.timeline_mode == "replay":
            if self.audit:
                raise ValueError(
                    "audit runs replay a recorded trace of their own run; "
                    "use timeline_mode='recompute'"
                )
            if self.client_update_fraction > 0.0 and self.num_update_clients is None:
                raise ValueError(
                    "timeline replay partitions the read-only population; "
                    "with client_update_fraction > 0 set num_update_clients "
                    "so the recording pass owns a bounded update population"
                )
        if self.shards > 1:
            if self.client_executor == "process":
                raise ValueError(
                    "sharded runs require the 'cohort' or 'analytic' "
                    "executor (the per-process oracle is single-shard)"
                )
            if self.client_update_fraction > 0.0 and self.num_update_clients is None:
                raise ValueError(
                    "sharded runs with client_update_fraction > 0 require "
                    "num_update_clients: only the read-only population is "
                    "partitioned across shards"
                )
            if self.audit:
                raise ValueError(
                    "audit runs record a global trace and cannot be sharded; "
                    "use shards=1"
                )

    # ----------------------------------------------------------------
    def replace(self, **changes: object) -> "SimulationConfig":
        """A modified copy (sweeps use this)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation (scenario files, recorded traces) ---------------
    def to_dict(self) -> "dict[str, object]":
        """Every field as a JSON-ready dict.

        The inverse of :meth:`from_dict`: the pair round-trips losslessly
        (``from_dict(cfg.to_dict()) == cfg``), including the fault plan,
        so recorded traces and scenario runs can persist the *exact*
        parameterisation they executed under.
        """
        payload: "dict[str, object]" = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "faults":
                value = value.to_dict() if value is not None else None
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (a typoed field silently falling back
        to a default would un-pin the run the caller thinks it replays).
        """
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise ValueError(
                f"unknown SimulationConfig field(s) {unknown}; "
                f"known fields: {sorted(field_names)}"
            )
        kwargs: "dict[str, object]" = dict(payload)
        faults = kwargs.get("faults")
        if faults is not None:
            if not isinstance(faults, FaultPlan):
                if not isinstance(faults, dict):
                    raise ValueError("'faults' must be a mapping (or null)")
                kwargs["faults"] = FaultPlan.from_dict(faults)
        return cls(**kwargs)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """A short stable hash over every field (audit/provenance tag).

        Two configs share a fingerprint iff every field compares equal, so
        reports stamped with it are traceable to the exact parameterisation.
        """
        digest = hashlib.sha256()
        for f in dataclasses.fields(self):
            digest.update(f.name.encode())
            digest.update(b"=")
            digest.update(repr(getattr(self, f.name)).encode())
            digest.update(b";")
        return digest.hexdigest()[:12]

    # -- derived quantities -------------------------------------------
    def update_capable_clients(self) -> int:
        """Clients ``[0, n)`` that may draw update transactions.

        Clients at or beyond this index never consult the update-fraction
        gate (no RNG draw), which is what makes the read-only population
        partitionable across shards and replayable by the analytical
        tier without perturbing anyone's random stream.
        """
        if self.client_update_fraction <= 0.0:
            return 0
        if self.num_update_clients is None:
            return self.num_clients
        return self.num_update_clients

    def update_capable(self, client_id: int) -> bool:
        """May this client draw update transactions?"""
        return client_id < self.update_capable_clients()

    def arithmetic(self) -> CycleArithmetic:
        if self.modulo_timestamps:
            return ModuloCycles(self.timestamp_bits)
        return UnboundedCycles(self.timestamp_bits)

    def partition(self) -> Optional[Partition]:
        if self.protocol != "group-matrix":
            return None
        return uniform_partition(self.num_objects, self.num_groups)

    def control_scheme(self) -> ControlInfoScheme:
        return scheme_for_protocol(
            self.protocol,
            num_objects=self.num_objects,
            timestamp_bits=self.timestamp_bits,
            num_groups=self.num_groups,
        )

    def layout(self) -> "FlatLayout | MultiDiskLayout":
        """The broadcast layout: flat (paper) or hot/cold multi-disk."""
        scheme = self.control_scheme()
        if self.layout_kind == "multi-disk":
            hot_size = max(1, int(self.num_objects * self.hot_fraction))
            hot = list(range(hot_size))
            cold = list(range(hot_size, self.num_objects))
            disks = [(self.hot_frequency, hot)]
            if cold:
                disks.append((1, cold))
            return MultiDiskLayout(
                disks,
                self.object_size_bits,
                control_bits_per_slot=scheme.bits_per_slot,
            )
        return FlatLayout(
            self.num_objects,
            self.object_size_bits,
            control_bits_per_slot=scheme.bits_per_slot,
            preamble_bits=scheme.bits_per_cycle_extra,
        )

    @property
    def cycle_bits(self) -> int:
        return self.layout().cycle_bits

    @property
    def control_overhead_fraction(self) -> float:
        """Fraction of cycle time spent on control info (Sec. 4.1)."""
        return self.control_scheme().overhead_fraction(
            self.num_objects, self.object_size_bits
        )
