"""Cross-validation of simulation runs against the APPROX theory.

A simulation run induces a global history: the server's committed update
transactions (in serialization order, straight from the database's commit
log) interleaved with the committed client read-only transactions.  The
client reads carry provenance — each observed
:class:`repro.broadcast.ObjectVersion` names the transaction whose write
was read — so the history can be reconstructed with the *same* reads-from
relation the run actually produced: each client read is placed
immediately after the commit of the transaction it read from.

Theorem 1 says the F-Matrix protocol commits a read-only transaction iff
its serialization graph is acyclic, and Theorem 9 says R-Matrix accepts
only APPROX schedules, so :meth:`TraceRecorder.verify` must find that the
reconstructed history is accepted by APPROX for every protocol this
library ships.  The integration tests run small simulations under each
protocol and assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.consistency.histories import TransactionalHistory
from ..broadcast.program import BroadcastCycle, ObjectVersion
from ..core.approx import ApproxReport, approx_report
from ..core.model import History, Operation, T0
from ..core.model import commit as commit_op
from ..core.model import read as read_op
from ..core.model import write as write_op
from ..server.database import Database

__all__ = ["ClientCommitRecord", "TraceRecorder"]


@dataclass(frozen=True)
class ClientCommitRecord:
    """One committed client read-only transaction."""

    tid: str
    versions: Tuple[ObjectVersion, ...]
    reads: Tuple[Tuple[int, int], ...]  # (obj, cycle) pairs


class TraceRecorder:
    """Collects client commits; reconstructs and verifies the history."""

    def __init__(self) -> None:
        self.client_commits: List[ClientCommitRecord] = []
        #: per-client program order over *all* committed client transactions
        #: (read-only and update alike), recorded at verdict time — the
        #: exact session order, no cycle-number reconstruction needed
        self.session_commits: List[Tuple[int, str]] = []
        #: per-cycle broadcast images, recorded only when cycle recording
        #: is enabled (``SimulationConfig(audit=True)``) — each image holds
        #: the cycle's frozen versions and control snapshot, which is what
        #: the invariant auditor checks monotonicity/agreement over
        self.cycles: List[BroadcastCycle] = []
        #: whether the cycle process should record broadcast images
        self.record_cycles: bool = False

    def record_client_commit(
        self,
        tid: str,
        versions: Sequence[ObjectVersion],
        reads: Sequence[Tuple[int, int]],
    ) -> None:
        self.client_commits.append(
            ClientCommitRecord(tid, tuple(versions), tuple(reads))
        )

    def record_session_commit(self, client_id: int, tid: str) -> None:
        """Note that ``client_id`` committed ``tid`` (program order)."""
        self.session_commits.append((client_id, tid))

    def record_cycle(self, broadcast: BroadcastCycle) -> None:
        """Retain one frozen broadcast image (audit runs only)."""
        self.cycles.append(broadcast)

    # ------------------------------------------------------------------
    def observables(self) -> Dict[str, object]:
        """The recorded run as a JSON-ready structure (record/replay).

        Everything a replay must reproduce bit-for-bit where the
        determinism contract promises it: each committed client
        transaction's id, validated ``(obj, cycle)`` read pairs and
        observed versions (object, writer, commit cycle, value repr),
        plus the per-client session commit order.  Broadcast images are
        deliberately excluded — they are audit-run-only and huge; the
        client-visible records above already pin the run's outcome.
        """
        return {
            "client_commits": [
                {
                    "tid": record.tid,
                    "reads": [[obj, cycle] for obj, cycle in record.reads],
                    "versions": [
                        [v.obj, v.writer, v.commit_cycle, repr(v.value)]
                        for v in record.versions
                    ],
                }
                for record in self.client_commits
            ],
            "session_commits": [
                [client_id, tid] for client_id, tid in self.session_commits
            ],
        }

    # ------------------------------------------------------------------
    def build_history(self, database: Database) -> History:
        """The induced global history, reads placed by provenance.

        Update transactions appear serially in commit order.  Each client
        read of a version written by ``w`` is inserted immediately after
        ``w``'s commit (immediately at the start for ``t0`` versions), so
        the positional reads-from of the result equals the observed one.
        Client commits close the history.
        """
        blocks: List[List[Operation]] = [[]]
        block_of_txn: Dict[str, int] = {T0: 0}
        for record in database.commit_log:
            ops: List[Operation] = []
            for obj in record.read_set:
                ops.append(read_op(record.txn, str(obj)))
            for obj, _value in record.writes:
                ops.append(write_op(record.txn, str(obj)))
            ops.append(commit_op(record.txn, cycle=record.commit_cycle))
            blocks.append(ops)
            block_of_txn[record.txn] = len(blocks) - 1

        inserts: Dict[int, List[Operation]] = {}
        tail: List[Operation] = []
        for client in self.client_commits:
            cycles = dict(client.reads)
            for version in client.versions:
                op = read_op(client.tid, str(version.obj), cycle=cycles.get(version.obj))
                writer_block = block_of_txn.get(version.writer)
                if writer_block is None:
                    raise ValueError(
                        f"{client.tid} read from unknown writer {version.writer!r}"
                    )
                inserts.setdefault(writer_block, []).append(op)
            tail.append(commit_op(client.tid))

        ops_out: List[Operation] = []
        for index, block in enumerate(blocks):
            ops_out.extend(block)
            ops_out.extend(inserts.get(index, ()))
        ops_out.extend(tail)
        return History(ops_out, strict=False)

    # ------------------------------------------------------------------
    def transactional_history(self, database: Database) -> TransactionalHistory:
        """The run as a sessioned ``⟨T, so, wr⟩`` history for the certifier.

        Lossless with respect to committed work: aborted/stale read
        attempts never reach the records (clients record only at commit),
        and doze or crash gaps merely stretch the cycle numbers the reads
        carry, which the certifier tolerates.  Sessions are the per-client
        program orders recorded at verdict time; transactions that are
        absent from the committed history (e.g. an update whose submission
        was lost) are dropped by the adapter.  The server's interleaved
        commit order is deliberately *not* a session: the broadcast
        protocols promise update consistency, not strict serializability
        against the server's serialization order.
        """
        sessions: Dict[int, List[str]] = {}
        for client_id, tid in self.session_commits:
            sessions.setdefault(client_id, []).append(tid)
        return TransactionalHistory(
            self.build_history(database),
            [sessions[client] for client in sorted(sessions)],
        )

    def verify(self, database: Database) -> ApproxReport:
        """Run APPROX on the reconstructed history (should accept)."""
        return approx_report(self.build_history(database))
