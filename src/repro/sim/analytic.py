"""The analytical tier: closed-form replay of fault-free read-only clients.

The cohort executor (:mod:`repro.sim.cohort`) already collapses a
client's think-time events and coalesces its slot waits, but it still
keeps every client's transaction state resident and pays one bucket
membership per read.  For the regimes the scaling benchmarks probe —
10⁵–10⁶ *read-only* clients over one shared broadcast — even that is
more machinery than the physics requires, because a fault-free read-only
client **never influences anything**: not the server, not the broadcast,
not any other client.  Its entire trajectory is a deterministic function
of (a) its private seeded streams and (b) the broadcast image sequence.

So the tier splits the run in two:

* **Phase A — the timeline.**  One ordinary event simulation hosts the
  cycle process, the server process, and (when the config bounds the
  update population via ``num_update_clients``) the update-capable
  clients under the cohort executor.  Every installed broadcast image is
  retained by cycle number (``SharedState.record_images``).  The event
  sequence this produces is bit-identical to the unsharded run's,
  because read-only clients never perturb it — the oracle equivalence
  tests assert exactly that.

* **Phase B — the replay.**  Each read-only client is fast-forwarded by
  a straight-line loop mirroring
  :func:`repro.sim.processes.client_process` (and its ``_attempt``)
  statement for statement: the same RNG draws in the same order, the
  same inlined flat-layout slot arithmetic the cohort executor uses, the
  same cache/validator interactions — but with a plain float ``t``
  instead of simulator events.  When a replay reads past the timeline's
  horizon, the timeline lazily extends itself (``sim.run(until=...)``)
  to manufacture the missing cycles.  Transient state is O(1) per
  client: workload, RNG, validator and cache are built on demand and
  dropped when the client finishes.

The tier refuses fault plans (a dozing or crash-affected client's
trajectory is not closed-form replayable — config validation enforces
this) and trace collection (nothing event-driven happens for readers).
Memory is O(cycles simulated) for the retained images plus O(commits)
for metrics — independent of the client count when ``keep_samples`` is
off.
"""

from __future__ import annotations

from math import log as _log
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..broadcast.layout import FlatLayout
from ..broadcast.program import BroadcastCycle
from ..client.runtime import ReadOnlyTransactionRuntime
from .cohort import CohortClient, CohortExecutor
from .engine import Simulator

if TYPE_CHECKING:
    from .arena import TimelineView
    from .simulation import BroadcastSimulation

__all__ = ["run_analytic"]


class _Timeline:
    """Lazily-extended broadcast history backing the replays.

    ``broadcast(cycle)`` returns the image the event simulation
    installed for that cycle, running the simulation forward to the
    cycle's start instant first if it hasn't got there yet.  Every
    image ever installed stays addressable (replayed clients each start
    from t = 0, so early cycles are re-read arbitrarily late).
    """

    __slots__ = ("_sim", "_images", "_cycle_bits", "_max_events")

    def __init__(
        self,
        sim: Simulator,
        images: Dict[int, BroadcastCycle],
        cycle_bits: float,
        max_events: Optional[int],
    ) -> None:
        self._sim = sim
        self._images = images
        self._cycle_bits = cycle_bits
        self._max_events = max_events

    def broadcast(self, cycle: int) -> BroadcastCycle:
        image = self._images.get(cycle)
        if image is not None:
            return image
        # cycle c's image is installed by the boundary event at its start
        # instant; run(until=) processes events at that instant inclusive
        target = (cycle - 1) * self._cycle_bits
        if target >= self._sim.now:
            self._sim.run(until=target, max_events=self._max_events)
        return self._images[cycle]


def run_analytic(
    simulation: "BroadcastSimulation", *, max_events: Optional[int] = None
) -> Tuple[float, int]:
    """Run ``simulation`` through the analytical tier.

    Returns ``(sim_time, events)``: the instant the last client finished
    (bit-identical to the event-driven run's stop time) and the number
    of *timeline* events processed — replayed readers, by construction,
    cost none.
    """
    config = simulation.config
    if simulation.trace is not None:
        raise ValueError("the analytical tier records no trace")
    state = simulation.state
    sim = simulation.sim
    sl = simulation.slice

    view = simulation.timeline_view
    if view is not None:
        # replay shard: the timeline already happened (a sealed arena) —
        # there is no Phase A at all, just Phase B against the arena.
        # Reading past the arena's horizon raises TimelineExhausted,
        # which the shard layer turns into a recompute fallback.
        sim_time = 0.0
        for k in range(sl.reader_lo, sl.reader_hi):
            done = _replay_reader(simulation, view, k)
            if done > sim_time:
                sim_time = done
        return sim_time, sim.events_processed

    if state.record_images is None:
        state.record_images = {}
    simulation.spawn_timeline()

    # Phase A: drive the shared timeline until every update-capable
    # client (simulated event-driven, under the cohort executor) is done.
    # Their same-time interleaving with reader events in the oracle run
    # is unobservable — readers mutate nothing — so this sub-simulation's
    # event sequence, and hence the image history, is bit-identical.
    updaters = sl.updaters
    if updaters > 0:
        cohort = [
            CohortClient(
                k,
                simulation.workload_for(k),
                simulation.validator_for(k),
                simulation.rng_for(k),
                simulation.cache_for(k),
            )
            for k in range(updaters)
        ]
        CohortExecutor(
            sim=sim,
            config=config,
            layout=simulation.layout,
            state=state,
            server=simulation.server,
            metrics=simulation._timeline_metrics,
            clients=cohort,
            trace=None,
            tracer=simulation.state.tracer,
        ).start()
        sim.run(
            stop_when=lambda: state.clients_done >= updaters,
            max_events=max_events,
        )
    sim_time = sim.now

    # Phase B: fast-forward each read-only client against the timeline.
    timeline = _Timeline(
        sim, state.record_images, simulation.layout.cycle_bits, max_events
    )
    for k in range(sl.reader_lo, sl.reader_hi):
        done = _replay_reader(simulation, timeline, k)
        if done > sim_time:
            sim_time = done
    # the event-driven run keeps processing timeline events until the
    # last client's done instant — mirror that, so server-side tallies
    # (completions, commits) cover the same simulated span exactly
    if sim_time > sim.now:
        sim.run(until=sim_time, max_events=max_events)
    return sim_time, sim.events_processed


def _replay_reader(
    simulation: "BroadcastSimulation",
    timeline: "_Timeline | TimelineView",
    k: int,
) -> float:
    """Fast-forward read-only client ``k``; returns its finish time.

    A line-for-line mirror of ``client_process``/``_attempt`` for the
    fault-free read-only case: every RNG draw, cache probe, slot seek
    and validator call happens in the same order with the same
    arguments, so commits, restarts, response times and listening bits
    are bit-identical to the event-driven paths.
    """
    config = simulation.config
    metrics = simulation.metrics
    layout = simulation.layout
    tracer = simulation.tracer
    tracer_enabled = tracer.enabled
    workload = simulation.workload_for(k)
    validator = simulation.validator_for(k)
    rng = simulation.rng_for(k)
    cache = simulation.cache_for(k)
    random_ = rng.random
    op_lambd = 1.0 / config.mean_inter_operation_delay
    txn_lambd = 1.0 / config.mean_inter_transaction_delay
    loss = config.broadcast_loss_probability
    restart_delay = config.restart_delay
    delay_first = config.delay_before_first_operation
    slot_bits = layout.slot_bits  # type: ignore[attr-defined]
    if isinstance(layout, FlatLayout):
        offsets: Optional[list] = [
            layout.slot_end_offset(obj) for obj in range(layout.num_objects)
        ]
        cycle_bits = layout.cycle_bits
    else:
        offsets = None
        cycle_bits = layout.cycle_bits

    t = 0.0
    for _txn_index in range(config.num_client_transactions):
        tid, objects = workload.next_transaction()
        tid = f"cl{k}.{tid}"
        runtime = ReadOnlyTransactionRuntime(tid, objects, validator)
        submit_time = t
        restarts = 0
        while True:  # attempts
            attempt_start = t
            first = True
            committed = True
            while not runtime.is_done:
                if not first or delay_first:
                    t -= _log(1.0 - random_()) / op_lambd
                first = False
                obj = runtime.next_object
                assert obj is not None
                broadcast: Optional[BroadcastCycle] = None
                if cache is not None:
                    entry = cache.lookup(obj, t)
                    if entry is not None:
                        broadcast = entry.as_broadcast()
                        metrics.cache_hits += 1
                if broadcast is None:
                    while True:
                        if offsets is not None:
                            # FlatLayout.next_read, inlined (as in cohort)
                            cycle = int(t // cycle_bits) + 1
                            end = (cycle - 1) * cycle_bits + offsets[obj]
                            if cycle > 1 and end - cycle_bits >= t:
                                cycle -= 1
                                end -= cycle_bits
                            elif end < t:
                                cycle += 1
                                end += cycle_bits
                        else:
                            hit = layout.next_read(obj, t)
                            end, cycle = hit.time, hit.cycle
                        t = end
                        if loss > 0.0 and random_() < loss:
                            # the slot went by unheard: 1-bit re-tune,
                            # then the object's next appearance
                            metrics.broadcast_losses += 1
                            t = end + 1.0
                            continue
                        break
                    broadcast = timeline.broadcast(cycle)
                    metrics.listening_bits += slot_bits
                    if cache is not None:
                        cache.insert(broadcast, obj, t)
                outcome = runtime.deliver(broadcast)
                if outcome.ok:
                    metrics.reads_delivered += 1
                else:
                    metrics.reads_rejected += 1
                    cause = "staleness" if outcome.stale else "conflict"
                    metrics.record_abort(cause)
                    if cache is not None:
                        cache.evict(outcome.obj)
                        for read_obj, _cycle in runtime.reads:
                            cache.evict(read_obj)
                    if tracer_enabled:
                        tracer.emit(
                            attempt_start, t, "client", k, "attempt", cause, tid
                        )
                    committed = False
                    break
            if committed:
                runtime.commit()
                if tracer_enabled:
                    tracer.emit(
                        attempt_start, t, "client", k, "attempt", "ok", tid
                    )
                break
            restarts += 1
            runtime.restart()
            t += restart_delay
        metrics.record_commit(tid, submit_time, t, restarts)
        if tracer_enabled:
            tracer.emit(submit_time, t, "client", k, "txn", "ok", tid)
        t -= _log(1.0 - random_()) / txn_lambd
    return t
