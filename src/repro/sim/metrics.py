"""Run statistics: response times, restart ratios, confidence intervals.

The paper reports, per data point, mean transaction response time and the
restart ratio over the last 500 of 1000 committed client transactions
("steady-state data"), with 95% confidence intervals whose widths are
below 10% of the point estimates.  This module reproduces that pipeline:
per-transaction samples → steady-state trim → summary with CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TransactionSample", "SummaryStat", "MetricsCollector", "summarize"]

#: two-sided 97.5% standard-normal quantile (large-sample t fallback)
_Z_975 = 1.959963984540054


def _t_quantile_975(dof: int) -> float:
    """Two-sided 95% Student-t quantile; scipy when present, else normal."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.975, dof))
    except Exception:  # pragma: no cover - scipy is installed in CI
        return _Z_975


@dataclass(frozen=True)
class TransactionSample:
    """One committed client transaction's measurements."""

    tid: str
    submit_time: float
    commit_time: float
    restarts: int

    @property
    def response_time(self) -> float:
        return self.commit_time - self.submit_time


@dataclass(frozen=True)
class SummaryStat:
    """Mean with a 95% confidence interval."""

    mean: float
    stddev: float
    count: int
    ci_halfwidth: float

    @property
    def ci(self) -> Tuple[float, float]:
        return (self.mean - self.ci_halfwidth, self.mean + self.ci_halfwidth)

    @property
    def ci_relative_width(self) -> float:
        """CI half-width as a fraction of the mean (paper: < 10%)."""
        if self.mean == 0:
            return 0.0
        return self.ci_halfwidth / abs(self.mean)


def summarize(values: Sequence[float]) -> SummaryStat:
    """Mean, stddev and 95% CI of a sample."""
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = sum(values) / n
    if n == 1:
        return SummaryStat(mean, 0.0, 1, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(var)
    half = _t_quantile_975(n - 1) * stddev / math.sqrt(n)
    return SummaryStat(mean, stddev, n, half)


def batch_means(values: Sequence[float], num_batches: int = 10) -> SummaryStat:
    """Batch-means estimate for autocorrelated series.

    Successive response times within one run are correlated (they share
    cycles and server state), so the naive per-sample t-interval is
    optimistic.  The classic remedy splits the series into ``num_batches``
    contiguous batches and treats the batch means as (approximately)
    independent samples; the returned CI is over those.
    """
    if num_batches < 2:
        raise ValueError("need at least two batches")
    if len(values) < num_batches:
        raise ValueError("fewer samples than batches")
    size = len(values) // num_batches
    means = [
        sum(values[k * size : (k + 1) * size]) / size for k in range(num_batches)
    ]
    return summarize(means)


class MetricsCollector:
    """Accumulates per-transaction samples during a run."""

    def __init__(self):
        self.samples: List[TransactionSample] = []
        self.reads_delivered = 0
        self.reads_rejected = 0
        self.cache_hits = 0
        self.server_commits = 0
        self.client_updates_committed = 0
        self.client_updates_rejected = 0
        self.broadcast_losses = 0
        #: bit-time spent listening to the broadcast (tuning time) — the
        #: battery-relevant cost: each off-air read charges its slot
        self.listening_bits = 0.0

    # ------------------------------------------------------------------
    def record_commit(
        self, tid: str, submit_time: float, commit_time: float, restarts: int
    ) -> None:
        self.samples.append(
            TransactionSample(tid, submit_time, commit_time, restarts)
        )

    def steady_state(self, measure_fraction: float) -> List[TransactionSample]:
        """The final ``measure_fraction`` of samples, in commit order."""
        if not 0 < measure_fraction <= 1:
            raise ValueError("measure_fraction must be in (0, 1]")
        ordered = sorted(self.samples, key=lambda s: s.commit_time)
        start = int(len(ordered) * (1 - measure_fraction))
        return ordered[start:]

    # ------------------------------------------------------------------
    def response_time(self, measure_fraction: float = 0.5) -> SummaryStat:
        window = self.steady_state(measure_fraction)
        return summarize([s.response_time for s in window])

    def restart_ratio(self, measure_fraction: float = 0.5) -> SummaryStat:
        window = self.steady_state(measure_fraction)
        return summarize([float(s.restarts) for s in window])

    def mean_listening_per_commit(self) -> float:
        """Tuning time (bits listened) per committed transaction."""
        if not self.samples:
            return 0.0
        return self.listening_bits / len(self.samples)

    def response_time_batch_means(
        self, measure_fraction: float = 0.5, num_batches: int = 10
    ) -> SummaryStat:
        """Batch-means CI for the steady-state response times."""
        window = self.steady_state(measure_fraction)
        return batch_means([s.response_time for s in window], num_batches)
