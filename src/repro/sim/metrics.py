"""Run statistics: response times, restart ratios, confidence intervals.

The paper reports, per data point, mean transaction response time and the
restart ratio over the last 500 of 1000 committed client transactions
("steady-state data"), with 95% confidence intervals whose widths are
below 10% of the point estimates.  This module reproduces that pipeline:
per-transaction samples → steady-state trim → summary with CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TransactionSample", "SummaryStat", "MetricsCollector", "summarize"]

#: two-sided 97.5% standard-normal quantile (large-sample t fallback)
_Z_975 = 1.959963984540054


def _t_quantile_975(dof: int) -> float:
    """Two-sided 95% Student-t quantile; scipy when present, else normal."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.975, dof))
    except Exception:  # pragma: no cover - scipy is installed in CI
        return _Z_975


@dataclass(frozen=True)
class TransactionSample:
    """One committed client transaction's measurements."""

    __slots__ = ("tid", "submit_time", "commit_time", "restarts")

    tid: str
    submit_time: float
    commit_time: float
    restarts: int

    def __reduce__(self):
        # frozen + manual __slots__ (py3.9-compatible) defeats the
        # default pickle path; parallel sweeps ship samples to workers
        return (
            self.__class__,
            (self.tid, self.submit_time, self.commit_time, self.restarts),
        )

    @property
    def response_time(self) -> float:
        return self.commit_time - self.submit_time


@dataclass(frozen=True)
class SummaryStat:
    """Mean with a 95% confidence interval."""

    mean: float
    stddev: float
    count: int
    ci_halfwidth: float

    @property
    def ci(self) -> Tuple[float, float]:
        return (self.mean - self.ci_halfwidth, self.mean + self.ci_halfwidth)

    @property
    def ci_relative_width(self) -> float:
        """CI half-width as a fraction of the mean (paper: < 10%)."""
        if self.mean == 0:
            return 0.0
        return self.ci_halfwidth / abs(self.mean)


def summarize(values: Sequence[float]) -> SummaryStat:
    """Mean, stddev and 95% CI of a sample."""
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = sum(values) / n
    if n == 1:
        return SummaryStat(mean, 0.0, 1, 0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(var)
    half = _t_quantile_975(n - 1) * stddev / math.sqrt(n)
    return SummaryStat(mean, stddev, n, half)


def batch_means(values: Sequence[float], num_batches: int = 10) -> SummaryStat:
    """Batch-means estimate for autocorrelated series.

    Successive response times within one run are correlated (they share
    cycles and server state), so the naive per-sample t-interval is
    optimistic.  The classic remedy splits the series into ``num_batches``
    contiguous batches and treats the batch means as (approximately)
    independent samples; the returned CI is over those.
    """
    if num_batches < 2:
        raise ValueError("need at least two batches")
    if len(values) < num_batches:
        raise ValueError("fewer samples than batches")
    size = len(values) // num_batches
    means = [
        sum(values[k * size : (k + 1) * size]) / size for k in range(num_batches)
    ]
    return summarize(means)


class MetricsCollector:
    """Accumulates per-transaction samples during a run.

    Commit measurements live in growing numpy accumulators (parallel
    float64/int64 arrays plus a tid list) rather than a list of sample
    objects: recording a commit is three scalar stores and a list
    append, with no per-commit object construction on the hot path.
    :attr:`samples` materialises :class:`TransactionSample` objects
    lazily — statistics and tests see exactly the values recorded
    (``.tolist()`` yields the identical python floats), the simulation
    loop never pays for them.
    """

    #: initial accumulator capacity (doubles when exhausted)
    _INITIAL_CAPACITY = 256

    #: scalar tallies combined by :meth:`merge_from` — every count in a
    #: merged collector is the sum over its shards (``listening_bits``
    #: holds integer-valued floats, so summation order cannot matter)
    _COUNTER_FIELDS = (
        "reads_delivered",
        "reads_rejected",
        "cache_hits",
        "server_commits",
        "client_updates_committed",
        "client_updates_rejected",
        "broadcast_losses",
        "listening_bits",
        "aborts_conflict",
        "aborts_staleness",
        "aborts_crash",
        "aborts_uplink",
        "doze_slots_missed",
        "crash_slot_stalls",
        "server_crashes",
        "quiescent_replay_cycles",
        "server_txns_lost",
        "uplink_losses",
        "uplink_crash_losses",
        "uplink_retries",
        "cycles_broadcast",
    )

    def __init__(self, keep_samples: bool = True):
        #: retain the lazy :class:`TransactionSample` cache across
        #: accesses.  Sharded mega-runs switch this off: the accumulator
        #: arrays stay (they are the measurement), but no per-commit
        #: sample objects are ever held alive between calls.
        self.keep_samples = keep_samples
        self._tids: List[str] = []
        self._submit_times = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._commit_times = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._restart_counts = np.zeros(self._INITIAL_CAPACITY, dtype=np.int64)
        self._capacity = self._INITIAL_CAPACITY
        self._count = 0
        self._samples_cache: Optional[List[TransactionSample]] = None
        self.reads_delivered = 0
        self.reads_rejected = 0
        self.cache_hits = 0
        self.server_commits = 0
        self.client_updates_committed = 0
        self.client_updates_rejected = 0
        self.broadcast_losses = 0
        #: bit-time spent listening to the broadcast (tuning time) — the
        #: battery-relevant cost: each off-air read charges its slot
        self.listening_bits = 0.0
        # -- fault attribution (see docs/FAULTS.md) --------------------
        #: aborts by cause: the protocol's read/backward-validation
        #: condition failed
        self.aborts_conflict = 0
        #: ... the client-side staleness guard fired (doze/wrap rejoin)
        self.aborts_staleness = 0
        #: ... an update gave up because the server was down at every try
        self.aborts_crash = 0
        #: ... an update exhausted its retries against uplink loss
        self.aborts_uplink = 0
        #: broadcast slots missed because the client's radio was dozing
        self.doze_slots_missed = 0
        #: broadcast slots that carried dead air during a server outage
        self.crash_slot_stalls = 0
        self.server_crashes = 0
        #: cycle boundaries replayed quiescently by crash recovery
        self.quiescent_replay_cycles = 0
        #: server transaction completions that died with a down server
        self.server_txns_lost = 0
        #: uplink submissions lost in transit (loss-probability draws)
        self.uplink_losses = 0
        #: uplink submissions that reached a dead server
        self.uplink_crash_losses = 0
        #: resubmissions after a declared uplink loss
        self.uplink_retries = 0
        #: broadcast images installed on the air: fresh cycle boundaries
        #: plus the in-progress cycle re-issued at crash recovery
        #: (quiescent replays that never air count only in
        #: :attr:`quiescent_replay_cycles`)
        self.cycles_broadcast = 0

    # ------------------------------------------------------------------
    def record_abort(self, cause: str) -> None:
        """Attribute one transaction-attempt abort to its cause."""
        if cause == "conflict":
            self.aborts_conflict += 1
        elif cause == "staleness":
            self.aborts_staleness += 1
        elif cause == "crash":
            self.aborts_crash += 1
        elif cause == "uplink":
            self.aborts_uplink += 1
        else:
            raise ValueError(f"unknown abort cause {cause!r}")

    def counters(self) -> Dict[str, float]:
        """Every scalar tally by name (the :attr:`_COUNTER_FIELDS` set).

        The public face of the merge/signature counter set: scenario
        envelopes, recorded-trace signatures and reports read this
        instead of reaching into the private field list.  Values are
        ints except ``listening_bits`` (an integer-valued float).
        """
        return {name: getattr(self, name) for name in self._COUNTER_FIELDS}

    @property
    def abort_causes(self) -> Dict[str, int]:
        """Aborted attempts by cause (conflict, staleness, crash, uplink)."""
        return {
            "conflict": self.aborts_conflict,
            "staleness": self.aborts_staleness,
            "crash": self.aborts_crash,
            "uplink": self.aborts_uplink,
        }

    # ------------------------------------------------------------------
    def record_commit(
        self, tid: str, submit_time: float, commit_time: float, restarts: int
    ) -> None:
        count = self._count
        if count == self._capacity:
            grow_f = np.zeros(self._capacity, dtype=np.float64)
            self._submit_times = np.concatenate([self._submit_times, grow_f])
            self._commit_times = np.concatenate([self._commit_times, grow_f])
            self._restart_counts = np.concatenate(
                [self._restart_counts, np.zeros(self._capacity, dtype=np.int64)]
            )
            self._capacity *= 2
        self._tids.append(tid)
        self._submit_times[count] = submit_time
        self._commit_times[count] = commit_time
        self._restart_counts[count] = restarts
        self._count = count + 1

    @property
    def commit_count(self) -> int:
        """Committed transactions recorded, without materialising samples."""
        return self._count

    def merge_from(self, other: "MetricsCollector") -> None:
        """Fold another collector's measurements into this one.

        Shard merging: commit accumulators are appended (callers merge
        shards in shard-index order, so the combined recording order is
        deterministic; every derived statistic additionally sorts by
        ``(commit_time, tid)`` and is therefore independent of it) and
        every scalar tally in :attr:`_COUNTER_FIELDS` is summed.
        """
        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        extra = other._count
        if extra:
            new_count = self._count + extra
            if new_count > self._capacity:
                capacity = self._capacity
                while capacity < new_count:
                    capacity *= 2
                for name in ("_submit_times", "_commit_times", "_restart_counts"):
                    old = getattr(self, name)
                    grown = np.zeros(capacity, dtype=old.dtype)
                    grown[: self._count] = old[: self._count]
                    setattr(self, name, grown)
                self._capacity = capacity
            self._tids.extend(other._tids)
            self._submit_times[self._count : new_count] = other._submit_times[:extra]
            self._commit_times[self._count : new_count] = other._commit_times[:extra]
            self._restart_counts[self._count : new_count] = other._restart_counts[
                :extra
            ]
            self._count = new_count
        self._samples_cache = None

    @property
    def samples(self) -> List[TransactionSample]:
        """Recorded commits as sample objects, in recording order.

        Materialised on first access and reused until another commit is
        recorded (the accumulators are append-only, so a cache of the
        right length is current by construction).
        """
        if not self.keep_samples:
            raise ValueError(
                "per-transaction samples are unavailable: this collector "
                "was created with keep_samples=False; use commit_count / "
                "response_time() / restart_ratio() (array-backed), or "
                "construct with keep_samples=True"
            )
        cache = self._samples_cache
        count = self._count
        if cache is None or len(cache) != count:
            submits = self._submit_times[:count].tolist()
            commits = self._commit_times[:count].tolist()
            restarts = self._restart_counts[:count].tolist()
            cache = [
                TransactionSample(tid, submits[i], commits[i], restarts[i])
                for i, tid in enumerate(self._tids)
            ]
            if self.keep_samples:
                self._samples_cache = cache
        return cache

    def steady_state(self, measure_fraction: float) -> List[TransactionSample]:
        """The final ``measure_fraction`` of samples, in commit order.

        Ties on commit time are broken by transaction id so the window —
        and everything derived from it — is a pure function of the
        recorded set, independent of the recording order (the process
        and cohort executors interleave same-instant commits of
        *different* clients differently).
        """
        if not 0 < measure_fraction <= 1:
            raise ValueError("measure_fraction must be in (0, 1]")
        ordered = sorted(self.samples, key=lambda s: (s.commit_time, s.tid))
        start = int(len(ordered) * (1 - measure_fraction))
        return ordered[start:]

    def _steady_window(
        self, measure_fraction: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Steady-state ``(submit, commit, restarts)`` arrays.

        The array twin of :meth:`steady_state`: same ``(commit_time,
        tid)`` ordering (numpy's unicode comparison is the same
        code-point order as python's) and the same trailing-fraction
        trim, but no :class:`TransactionSample` objects — the path the
        10⁶-client runs with ``keep_samples=False`` take.
        """
        if not 0 < measure_fraction <= 1:
            raise ValueError("measure_fraction must be in (0, 1]")
        count = self._count
        commits = self._commit_times[:count]
        order = np.lexsort((np.asarray(self._tids), commits))
        start = int(count * (1 - measure_fraction))
        window = order[start:]
        return (
            self._submit_times[:count][window],
            commits[window],
            self._restart_counts[:count][window],
        )

    # ------------------------------------------------------------------
    def response_time(self, measure_fraction: float = 0.5) -> SummaryStat:
        submits, commits, _ = self._steady_window(measure_fraction)
        return summarize((commits - submits).tolist())

    def restart_ratio(self, measure_fraction: float = 0.5) -> SummaryStat:
        _, _, restarts = self._steady_window(measure_fraction)
        return summarize(restarts.astype(np.float64).tolist())

    def mean_listening_per_commit(self) -> float:
        """Tuning time (bits listened) per committed transaction."""
        if self._count == 0:
            return 0.0
        return self.listening_bits / self._count

    def response_time_batch_means(
        self, measure_fraction: float = 0.5, num_batches: int = 10
    ) -> SummaryStat:
        """Batch-means CI for the steady-state response times."""
        window = self.steady_state(measure_fraction)
        return batch_means([s.response_time for s in window], num_batches)
