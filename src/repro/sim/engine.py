"""A from-scratch discrete-event simulation kernel.

The paper's evaluation ran on the authors' own event-driven simulator; we
rebuild the abstraction: a priority queue of timestamped events plus
generator-based *processes* (simpy-style, but self-contained).  A process
is a Python generator that yields scheduling directives:

* ``Timeout(delay)``   — resume after ``delay`` time units;
* ``WaitUntil(time)``  — resume at absolute time ``time`` (>= now);
* ``Waive()``          — resume immediately, after already-due events.

Time is a float in *bit-units* (the time to broadcast one bit — the
paper's unit).  Determinism: simultaneous events fire in scheduling
order (a monotone sequence number breaks ties), so a seeded run is fully
reproducible.

Example::

    sim = Simulator()
    def pinger():
        for _ in range(3):
            yield Timeout(10)
            print("ping at", sim.now)
    sim.spawn(pinger())
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from functools import partial
from typing import Callable, Generator, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["Timeout", "WaitUntil", "Waive", "Process", "Simulator", "SimClockError"]


class SimClockError(RuntimeError):
    """Raised when a directive would move time backwards."""


@dataclass(frozen=True)
class Timeout:
    """Resume the yielding process after ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class WaitUntil:
    """Resume the yielding process at absolute time ``time``."""

    time: float


@dataclass(frozen=True)
class Waive:
    """Yield the processor: resume at the same time, after due events."""


Directive = Union[Timeout, WaitUntil, Waive]
ProcessGen = Generator[Directive, None, None]


class Process:
    """Handle to a spawned process."""

    __slots__ = ("name", "_gen", "alive", "_step")

    def __init__(self, gen: ProcessGen, name: str):
        self._gen = gen
        self.name = name
        self.alive = True
        #: bound step callable, installed by :meth:`Simulator.spawn` — the
        #: heap stores this directly so dispatch needs no type inspection
        self._step: Callable[[], None] = _unspawned

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"Process({self.name}, {state})"


def _unspawned() -> None:  # pragma: no cover - defensive placeholder
    raise RuntimeError("process stepped before being spawned")


class Simulator:
    """Event queue + process scheduler."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._event_count = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in bit-units."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    # ------------------------------------------------------------------
    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action()`` at absolute ``time`` (a one-shot callback)."""
        if time < self._now:
            raise SimClockError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._queue, (time, next(self._seq), action))

    def schedule_many(
        self, items: Sequence[Tuple[float, Callable[[], None]]]
    ) -> None:
        """Schedule a batch of ``(time, action)`` callbacks in one pass.

        Equivalent to calling :meth:`schedule` for each pair in order
        (sequence numbers are assigned in iteration order, so same-time
        ordering is preserved), but amortises the heap maintenance: when
        the batch rivals the queue in size a single ``heapify`` beats
        element-wise sift-up.
        """
        for time, _action in items:
            if time < self._now:
                raise SimClockError(
                    f"cannot schedule at {time} < now {self._now}"
                )
        queue = self._queue
        if len(items) > 4 and len(items) * 4 >= len(queue):
            queue.extend(
                (time, next(self._seq), action) for time, action in items
            )
            heapq.heapify(queue)
        else:
            for time, action in items:
                heapq.heappush(queue, (time, next(self._seq), action))

    def spawn(self, gen: ProcessGen, name: str = "process") -> Process:
        """Start a generator process now (first step runs when due)."""
        process = Process(gen, name)
        # the heap carries the bound step callable, precomputed once per
        # process — dispatch is then a plain call, no isinstance chain
        process._step = partial(self._step_process, process)
        heapq.heappush(self._queue, (self._now, next(self._seq), process._step))
        return process

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events until the queue drains or a limit triggers.

        * ``until`` — process every event at time <= ``until``, then stop
          with the clock advanced to exactly ``until`` — also when the
          queue drains earlier, so ``run(until=T)`` always returns ``T``
          ("simulate through T") unless ``stop_when``/``max_events``
          fires first;
        * ``stop_when`` — predicate evaluated after every event; stops at
          the current event's time;
        * ``max_events`` — hard safety cap.

        Returns the simulation time at stop.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            time = entry[0]
            if until is not None and time > until:
                self._now = until
                return until
            heapq.heappop(queue)
            if time < self._now:  # pragma: no cover - guarded at insert
                raise SimClockError("event queue went backwards")
            self._now = time
            self._event_count += 1
            entry[2]()
            if stop_when is not None and stop_when():
                return self._now
            if max_events is not None and self._event_count >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _step_process(self, process: Process) -> None:
        try:
            directive = process._gen.send(None)
        except StopIteration:
            process.alive = False
            return
        # exact-class dispatch on the hot path (directives are frozen
        # dataclasses, virtually never subclassed); subclass directives
        # take the isinstance fallback
        cls = directive.__class__
        if cls is Timeout:
            resume_at = self._now + directive.delay
        elif cls is WaitUntil:
            if directive.time < self._now:
                raise SimClockError(
                    f"WaitUntil({directive.time}) in the past (now {self._now})"
                )
            resume_at = directive.time
        elif cls is Waive:
            resume_at = self._now
        else:
            resume_at = self._resume_time(directive)
        heapq.heappush(
            self._queue, (resume_at, next(self._seq), process._step)
        )

    def _resume_time(self, directive: Directive) -> float:
        """Directive resolution for subclassed directives (cold path)."""
        if isinstance(directive, Timeout):
            return self._now + directive.delay
        if isinstance(directive, WaitUntil):
            if directive.time < self._now:
                raise SimClockError(
                    f"WaitUntil({directive.time}) in the past (now {self._now})"
                )
            return directive.time
        if isinstance(directive, Waive):
            return self._now
        raise TypeError(f"process yielded {directive!r}, not a directive")
