"""A from-scratch discrete-event simulation kernel.

The paper's evaluation ran on the authors' own event-driven simulator; we
rebuild the abstraction: a priority queue of timestamped events plus
generator-based *processes* (simpy-style, but self-contained).  A process
is a Python generator that yields scheduling directives:

* ``Timeout(delay)``   — resume after ``delay`` time units;
* ``WaitUntil(time)``  — resume at absolute time ``time`` (>= now);
* ``Waive()``          — resume immediately, after already-due events.

Time is a float in *bit-units* (the time to broadcast one bit — the
paper's unit).  Determinism: simultaneous events fire in scheduling
order (a monotone sequence number breaks ties), so a seeded run is fully
reproducible.

Example::

    sim = Simulator()
    def pinger():
        for _ in range(3):
            yield Timeout(10)
            print("ping at", sim.now)
    sim.spawn(pinger())
    sim.run()
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Iterator, List, Optional, Tuple, Union

__all__ = ["Timeout", "WaitUntil", "Waive", "Process", "Simulator", "SimClockError"]


class SimClockError(RuntimeError):
    """Raised when a directive would move time backwards."""


@dataclass(frozen=True)
class Timeout:
    """Resume the yielding process after ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class WaitUntil:
    """Resume the yielding process at absolute time ``time``."""

    time: float


@dataclass(frozen=True)
class Waive:
    """Yield the processor: resume at the same time, after due events."""


Directive = Union[Timeout, WaitUntil, Waive]
ProcessGen = Generator[Directive, None, None]


class Process:
    """Handle to a spawned process."""

    __slots__ = ("name", "_gen", "alive")

    def __init__(self, gen: ProcessGen, name: str):
        self._gen = gen
        self.name = name
        self.alive = True

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"Process({self.name}, {state})"


class Simulator:
    """Event queue + process scheduler."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, object]] = []
        self._seq = itertools.count()
        self._event_count = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in bit-units."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    # ------------------------------------------------------------------
    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action()`` at absolute ``time`` (a one-shot callback)."""
        if time < self._now:
            raise SimClockError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._queue, (time, next(self._seq), action))

    def spawn(self, gen: ProcessGen, name: str = "process") -> Process:
        """Start a generator process now (first step runs when due)."""
        process = Process(gen, name)
        heapq.heappush(self._queue, (self._now, next(self._seq), process))
        return process

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events until the queue drains or a limit triggers.

        * ``until`` — stop before processing events later than this time;
        * ``stop_when`` — predicate evaluated after every event;
        * ``max_events`` — hard safety cap.

        Returns the simulation time at stop.
        """
        while self._queue:
            time, _seq, item = self._queue[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if time < self._now:  # pragma: no cover - guarded at insert
                raise SimClockError("event queue went backwards")
            self._now = time
            self._event_count += 1
            self._dispatch(item)
            if stop_when is not None and stop_when():
                break
            if max_events is not None and self._event_count >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
        return self._now

    def _dispatch(self, item: object) -> None:
        if isinstance(item, Process):
            self._step(item)
        else:
            item()  # type: ignore[operator]

    def _step(self, process: Process) -> None:
        try:
            directive = process._gen.send(None)
        except StopIteration:
            process.alive = False
            return
        if isinstance(directive, Timeout):
            resume_at = self._now + directive.delay
        elif isinstance(directive, WaitUntil):
            if directive.time < self._now:
                raise SimClockError(
                    f"WaitUntil({directive.time}) in the past (now {self._now})"
                )
            resume_at = directive.time
        elif isinstance(directive, Waive):
            resume_at = self._now
        else:
            raise TypeError(f"process yielded {directive!r}, not a directive")
        heapq.heappush(self._queue, (resume_at, next(self._seq), process))
