"""Fault injection: client doze intervals, uplink loss, server crashes.

The paper's protocols assume clients hear every cycle's control
information and that no transaction spans more than ``max_cycles``
cycles (Sec. 3.2.1) — but broadcast environments exist precisely for
huge, flaky, battery-constrained client populations that doze, lose
slots and rejoin.  This module makes those failure modes first-class,
deterministic simulation inputs:

* :class:`FaultPlan` — a frozen, seedable schedule attached to
  :class:`repro.sim.config.SimulationConfig`: per-client
  :class:`DozeInterval` radio-off windows, :class:`ServerCrash`
  crash+recovery events, and uplink submission loss with
  retry/timeout/backoff for client update transactions;
* :class:`FaultRuntime` — the per-run mutable state the simulation
  processes consult (is the server down? is this client dozing? was
  this slot heard?), charging every missed slot to a cause-attributed
  metric;
* :func:`crash_process` — a simulator process that kills the server at
  each scheduled crash, rebuilds it from the durable state via
  :func:`repro.server.recovery.recover_server`, replays the downtime as
  quiescent cycles, and swaps the rebuilt state into the live server
  object (:meth:`repro.server.server.BroadcastServer.restore_from`).

Everything is derived from the plan and the config seed: two runs with
the same config (including its plan) are bit-identical.  A ``None`` (or
no-op) plan leaves every process on its exact pre-fault event sequence,
so zero-fault runs are bit-identical to runs of a build without this
module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.cycles import CycleArithmetic, ModuloCycles
from ..server.recovery import recover_server
from .engine import Simulator, Timeout, WaitUntil

if TYPE_CHECKING:  # type-only: avoid import cycles with config/processes
    from ..broadcast.layout import BroadcastLayout
    from ..server.server import BroadcastServer
    from .config import SimulationConfig
    from .metrics import MetricsCollector
    from .processes import SharedState
    from .trace import TraceRecorder

__all__ = [
    "DozeInterval",
    "ServerCrash",
    "FaultPlan",
    "FaultRuntime",
    "crash_process",
]

#: what the crash process generator yields
FaultEvents = Generator[Union[Timeout, WaitUntil], None, None]


@dataclass(frozen=True)
class DozeInterval:
    """One client's radio is off during ``[start, start + duration)``.

    Times are bit-units.  Only the *radio* sleeps: local think time and
    cache reads proceed, but every broadcast slot overlapping the
    interval goes unheard and the client re-tunes at the object's next
    appearance — exactly the radio-loss retry path, minus the RNG draw.
    """

    client: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.client < 0:
            raise ValueError("client must be >= 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (scenario files, recorded traces)."""
        return {
            "client": self.client,
            "start": self.start,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DozeInterval":
        return cls(
            client=int(payload["client"]),  # type: ignore[arg-type]
            start=float(payload["start"]),  # type: ignore[arg-type]
            duration=float(payload["duration"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ServerCrash:
    """The server loses all volatile state at ``time``.

    For ``downtime`` bit-units the air is dead (no broadcast images, no
    server completions, no uplink verdicts); then the server is rebuilt
    from its durable state — the commit log and the broadcast cycle
    recorded alongside it — and the missed cycles are replayed as
    quiescent cycles.
    """

    time: float
    downtime: float

    def __post_init__(self) -> None:
        if self.time <= 0:
            raise ValueError("crash time must be > 0")
        if self.downtime <= 0:
            raise ValueError("downtime must be > 0")

    @property
    def end(self) -> float:
        return self.time + self.downtime

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (scenario files, recorded traces)."""
        return {"time": self.time, "downtime": self.downtime}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ServerCrash":
        return cls(
            time=float(payload["time"]),  # type: ignore[arg-type]
            downtime=float(payload["downtime"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule for one simulation run."""

    #: per-client radio-off windows (any order; validated non-overlapping
    #: per client)
    doze: Tuple[DozeInterval, ...] = ()
    #: mid-run server crash + recovery events (validated non-overlapping)
    crashes: Tuple[ServerCrash, ...] = ()
    #: probability an uplink submission is lost in transit
    uplink_loss_probability: float = 0.0
    #: resubmissions before the update transaction gives up and aborts
    uplink_max_retries: int = 3
    #: bit-units a client waits for a verdict before declaring loss
    uplink_timeout: float = 16_384.0
    #: verdict-timeout multiplier per successive retry (>= 1)
    uplink_backoff: float = 2.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "doze", tuple(self.doze))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        if not 0.0 <= self.uplink_loss_probability < 1.0:
            raise ValueError("uplink_loss_probability must be in [0, 1)")
        if self.uplink_max_retries < 0:
            raise ValueError("uplink_max_retries must be >= 0")
        if self.uplink_timeout <= 0:
            raise ValueError("uplink_timeout must be > 0")
        if self.uplink_backoff < 1.0:
            raise ValueError("uplink_backoff must be >= 1")
        per_client: Dict[int, List[DozeInterval]] = {}
        for interval in self.doze:
            per_client.setdefault(interval.client, []).append(interval)
        for client, intervals in per_client.items():
            intervals.sort(key=lambda iv: iv.start)
            for a, b in zip(intervals, intervals[1:]):
                if b.start < a.end:
                    raise ValueError(
                        f"client {client} doze intervals overlap: "
                        f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                    )
        ordered = sorted(self.crashes, key=lambda c: c.time)
        for a, b in zip(ordered, ordered[1:]):
            if b.time < a.end:
                raise ValueError(
                    f"server crashes overlap: [{a.time}, {a.end}) and "
                    f"[{b.time}, {b.end})"
                )
        object.__setattr__(self, "crashes", tuple(ordered))

    @property
    def is_noop(self) -> bool:
        """Does this plan inject nothing at all?

        A no-op plan is treated exactly like ``faults=None``: no fault
        runtime is built, no crash process is spawned, and the run is
        bit-identical to a zero-fault run.
        """
        return (
            not self.doze
            and not self.crashes
            and self.uplink_loss_probability <= 0.0
        )

    @property
    def max_doze_client(self) -> int:
        """Largest client index named by a doze interval (-1 if none)."""
        return max((iv.client for iv in self.doze), default=-1)

    def to_dict(self) -> Dict[str, object]:
        """The plan as a JSON-ready dict, losslessly round-trippable.

        What scenario files and recorded traces persist; the inverse is
        :meth:`from_dict` and the pair satisfies
        ``FaultPlan.from_dict(plan.to_dict()) == plan``.
        """
        return {
            "doze": [interval.to_dict() for interval in self.doze],
            "crashes": [crash.to_dict() for crash in self.crashes],
            "uplink_loss_probability": self.uplink_loss_probability,
            "uplink_max_retries": self.uplink_max_retries,
            "uplink_timeout": self.uplink_timeout,
            "uplink_backoff": self.uplink_backoff,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        doze = payload.get("doze", []) or []
        crashes = payload.get("crashes", []) or []
        if not isinstance(doze, (list, tuple)):
            raise ValueError("faults 'doze' must be a list of intervals")
        if not isinstance(crashes, (list, tuple)):
            raise ValueError("faults 'crashes' must be a list of crashes")
        return cls(
            doze=tuple(
                DozeInterval.from_dict(entry) for entry in doze  # type: ignore[arg-type]
            ),
            crashes=tuple(
                ServerCrash.from_dict(entry) for entry in crashes  # type: ignore[arg-type]
            ),
            uplink_loss_probability=float(
                payload.get("uplink_loss_probability", 0.0)  # type: ignore[arg-type]
            ),
            uplink_max_retries=int(
                payload.get("uplink_max_retries", 3)  # type: ignore[arg-type]
            ),
            uplink_timeout=float(
                payload.get("uplink_timeout", 16_384.0)  # type: ignore[arg-type]
            ),
            uplink_backoff=float(
                payload.get("uplink_backoff", 2.0)  # type: ignore[arg-type]
            ),
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        num_clients: int,
        horizon: float,
        mean_time_between_dozes: float = 0.0,
        mean_doze_duration: float = 0.0,
        crashes: Sequence[ServerCrash] = (),
        uplink_loss_probability: float = 0.0,
        uplink_max_retries: int = 3,
        uplink_timeout: float = 16_384.0,
        uplink_backoff: float = 2.0,
    ) -> "FaultPlan":
        """A reproducible plan drawn from its own seed.

        Each client dozes in an alternating renewal process over
        ``[0, horizon)``: exponential on-times with mean
        ``mean_time_between_dozes`` followed by exponential radio-off
        times with mean ``mean_doze_duration`` (zero for either disables
        dozing).  The draw order is fixed, so the plan — like everything
        else in a run — is a pure function of its arguments.
        """
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        rng = random.Random(seed)
        doze: List[DozeInterval] = []
        if mean_time_between_dozes > 0 and mean_doze_duration > 0:
            for client in range(num_clients):
                t = rng.expovariate(1.0 / mean_time_between_dozes)
                while t < horizon:
                    duration = rng.expovariate(1.0 / mean_doze_duration)
                    doze.append(DozeInterval(client, t, duration))
                    t += duration + rng.expovariate(1.0 / mean_time_between_dozes)
        return cls(
            doze=tuple(doze),
            crashes=tuple(crashes),
            uplink_loss_probability=uplink_loss_probability,
            uplink_max_retries=uplink_max_retries,
            uplink_timeout=uplink_timeout,
            uplink_backoff=uplink_backoff,
        )


class FaultRuntime:
    """Per-run mutable fault state the simulation processes consult."""

    def __init__(
        self,
        plan: FaultPlan,
        arithmetic: CycleArithmetic,
        metrics: "MetricsCollector",
        seed: int = 0,
    ) -> None:
        self.plan = plan
        self.metrics = metrics
        #: root of the per-client uplink-loss stream tree (config seed)
        self._seed = seed
        self._uplink_streams: Dict[int, np.random.Generator] = {}
        #: True between a crash and the completed recovery
        self.server_down = False
        self._outage_start: Optional[float] = None
        #: completed outages as closed [start, end] pairs — a slot whose
        #: wait began before a crash may end after the recovery and must
        #: still count as unheard
        self._outages: List[Tuple[float, float]] = []
        per_client: Dict[int, List[DozeInterval]] = {}
        for interval in plan.doze:
            per_client.setdefault(interval.client, []).append(interval)
        self._doze: Dict[int, Tuple[DozeInterval, ...]] = {
            client: tuple(sorted(intervals, key=lambda iv: iv.start))
            for client, intervals in per_client.items()
        }
        #: cycles a rejoining client may safely span under the configured
        #: arithmetic: the paper's ``max_cycles = window - 1`` for modulo
        #: timestamps, unlimited (``None``) for unbounded ones
        self.staleness_window: Optional[int] = (
            arithmetic.window - 1 if isinstance(arithmetic, ModuloCycles) else None
        )

    # -- server outages -------------------------------------------------
    def preload_outages(self, outages: Sequence[Tuple[float, float]]) -> None:
        """Install the complete outage history up front (replay shards).

        A replay shard hosts no crash process — the dead air is already
        baked into the arena's recorded timeline — but its *readers*
        still lose slots that overlap an outage.  Crash windows are plan
        data (``[crash.time, crash.time + downtime]``), so the replay
        runtime starts with every outage closed; ``slot_heard`` then
        makes exactly the live run's decisions without ``server_down``
        ever being raised.
        """
        self._outages = list(outages)

    def begin_outage(self, time: float) -> None:
        self.server_down = True
        self._outage_start = time
        self.metrics.server_crashes += 1

    def end_outage(self, time: float) -> None:
        assert self._outage_start is not None
        self._outages.append((self._outage_start, time))
        self._outage_start = None
        self.server_down = False

    # -- client radio ---------------------------------------------------
    def doze_wake(self, client: int, now: float) -> Optional[float]:
        """The wake-up time if ``client`` is dozing at ``now``, else None."""
        for interval in self._doze.get(client, ()):
            if interval.start <= now < interval.end:
                return interval.end
        return None

    def slot_heard(
        self,
        client: int,
        start: float,
        end: float,
        metrics: Optional["MetricsCollector"] = None,
    ) -> bool:
        """Was the broadcast slot ``[start, end]`` fully received?

        A slot overlapping a server outage carried dead air; a slot
        overlapping one of the client's doze intervals found the radio
        off.  Either way the read re-tunes at the object's next
        appearance.  Each miss is charged to its cause — into
        ``metrics`` when given (shards route a client's misses to the
        collector that measures that client), else the run collector.
        """
        if metrics is None:
            metrics = self.metrics
        if self._outage_start is not None and end > self._outage_start:
            metrics.crash_slot_stalls += 1
            return False
        for outage_start, outage_end in self._outages:
            if outage_start < end and start < outage_end:
                metrics.crash_slot_stalls += 1
                return False
        for interval in self._doze.get(client, ()):
            if interval.start < end and start < interval.end:
                metrics.doze_slots_missed += 1
                return False
        return True

    # -- client uplink --------------------------------------------------
    def uplink_lost(self, client: int) -> bool:
        """Draw one uplink-loss Bernoulli from ``client``'s own stream.

        Each client owns an independent :class:`numpy.random.Generator`
        spawned from ``SeedSequence((seed, client))``, so the draw
        sequence a client sees depends only on the config seed and its
        id — never on which executor, shard, or interleaving ran it.
        """
        stream = self._uplink_streams.get(client)
        if stream is None:
            stream = np.random.default_rng(np.random.SeedSequence((self._seed, client)))
            self._uplink_streams[client] = stream
        return float(stream.random()) < self.plan.uplink_loss_probability


def crash_process(
    sim: Simulator,
    config: "SimulationConfig",
    server: "BroadcastServer",
    layout: "BroadcastLayout",
    state: "SharedState",
    metrics: "MetricsCollector",
    trace: Optional["TraceRecorder"] = None,
) -> FaultEvents:
    """Kill and recover the server at each scheduled crash.

    The crash snapshots the durable state (the database carries the
    commit log and the last-broadcast-cycle mark), marks the server down
    for the scheduled downtime — during which the cycle process
    broadcasts nothing, the completion process loses its transactions
    and the uplink returns no verdicts — then rebuilds a server via
    :func:`repro.server.recovery.recover_server`, replays every cycle
    boundary that passed during the downtime as a quiescent cycle, and
    installs the result into the live server object in place.
    """
    faults = state.faults
    assert faults is not None
    tracer = state.tracer
    for crash in faults.plan.crashes:
        yield WaitUntil(crash.time)
        # volatile state dies here; only the database's log + cycle mark
        # survive (snapshotted before anything else can touch them)
        durable_log = server.database.commit_log
        durable_cycle = server.database.last_broadcast_cycle
        crash_start = sim.now
        faults.begin_outage(sim.now)
        yield Timeout(crash.downtime)
        revived = recover_server(
            durable_log,
            config.num_objects,
            config.protocol,
            arithmetic=config.arithmetic(),
            partition=config.partition(),
            current_cycle=durable_cycle,
        )
        # cycles whose boundaries fell inside the outage were dead air;
        # the recovered server re-issues them as quiescent cycles so its
        # cycle counter — and every ModuloCycles anchor derived from it —
        # lines up with wall-clock broadcast time again
        current = layout.cycle_of(sim.now)
        replayed = None
        replayed_count = 0
        for cycle in range(durable_cycle + 1, current + 1):
            replayed = revived.begin_cycle(cycle)
            metrics.quiescent_replay_cycles += 1
            replayed_count += 1
        server.restore_from(revived)
        if replayed is not None:
            # the in-progress cycle's image: clients whose slots end
            # after the recovery read from it
            state.advance(replayed)
            metrics.cycles_broadcast += 1
            if tracer.enabled:
                # the re-issued image goes on air *now*, mid-cycle: the
                # span starts at the recovery instant (the same time the
                # counter increment is journalled at) and runs to the
                # boundary the image nominally covers
                tracer.emit(
                    sim.now,
                    replayed.cycle * layout.cycle_bits,
                    "timeline",
                    0,
                    "cycle",
                    "ok",
                    str(replayed.cycle),
                )
            if trace is not None and trace.record_cycles:
                trace.record_cycle(replayed)
        faults.end_outage(sim.now)
        if tracer.enabled:
            tracer.emit(
                crash_start,
                sim.now,
                "timeline",
                2,
                "crash",
                "ok",
                f"replayed={replayed_count}",
            )
