#!/usr/bin/env python
"""Online auction: client *update* transactions over a scarce uplink.

The paper's introduction motivates broadcast concurrency control with
auctions: millions of watchers, few bidders, a small database (the
auction's current state) broadcast continuously.  This example exercises
the update-transaction path of Sec. 3.2.1:

* bidders read the current high bid **off the air** (validated reads, no
  locks), write their new bid locally, and ship ``(reads+cycles, writes)``
  up the uplink at commit;
* the server backward-validates each submission — a bid based on a stale
  high bid is rejected, exactly like an optimistic-CC conflict — installs
  winners, and the next broadcast cycle carries the new state;
* watchers meanwhile run read-only transactions spanning the lot *and*
  the seller's reserve state, staying update consistent throughout.

Run:  python examples/auction.py
"""

from repro.client import ClientUpdateTransactionRuntime, ReadOnlyTransactionRuntime
from repro.core import make_validator
from repro.server import BroadcastServer

# the auction database: one lot with a high bid, a bid count, a reserve
HIGH_BID, BID_COUNT, RESERVE = 0, 1, 2
PROTOCOL = "f-matrix"


def place_bid(server, broadcast, bidder: str, amount: int):
    """One bidder transaction: read state off-air, bid, submit up-link."""
    txn = ClientUpdateTransactionRuntime(
        bidder, [HIGH_BID, BID_COUNT], make_validator(PROTOCOL)
    )
    txn.deliver_or_raise(broadcast)  # read current high bid
    txn.deliver_or_raise(broadcast)  # read bid count
    current_high = txn.values[HIGH_BID]
    count = txn.values[BID_COUNT]
    if amount <= current_high:
        print(f"  {bidder}: sees high bid {current_high}, won't bid {amount}")
        return None
    txn.write(HIGH_BID, amount)
    txn.write(BID_COUNT, count + 1)
    outcome = server.submit_client_update(txn.submission())
    status = "ACCEPTED" if outcome.committed else f"REJECTED (stale reads {outcome.conflicts})"
    print(f"  {bidder}: bids {amount} over {current_high} -> {status}")
    return outcome


def main() -> None:
    server = BroadcastServer(num_objects=3, protocol=PROTOCOL, initial_value=0)
    # seed the lot: reserve 50, opening bid 10
    server.commit_update("seller", read_set=[], writes={HIGH_BID: 10, BID_COUNT: 0, RESERVE: 50}, cycle=0)

    print("cycle 1: opening state broadcast")
    b1 = server.begin_cycle(1)

    # Two bidders race off the same broadcast image.  Alice commits first;
    # Bob's read of the high bid is then stale, so validation rejects him.
    print("two bidders race on the same cycle:")
    place_bid(server, b1, "alice", 60)
    place_bid(server, b1, "bob", 75)

    print("cycle 2: Bob retries off the fresh broadcast")
    b2 = server.begin_cycle(2)
    place_bid(server, b2, "bob", 75)

    # A watcher audits the auction read-only, entirely off the air: the
    # high bid and the bid count must be mutually consistent (update
    # consistency guarantees they come from one serial prefix of bids).
    print("cycle 3: a watcher audits the lot off the air")
    b3 = server.begin_cycle(3)
    watcher = ReadOnlyTransactionRuntime(
        "watcher", [HIGH_BID, BID_COUNT, RESERVE], make_validator(PROTOCOL)
    )
    for _ in range(3):
        watcher.deliver_or_raise(b3)
    high, count, reserve = (watcher.values[o] for o in (HIGH_BID, BID_COUNT, RESERVE))
    print(f"  watcher sees: high bid {high} after {count} bids (reserve {reserve})")
    assert count == 2 and high == 75, "watcher must see a consistent bid trail"
    print("  consistent: the bid count matches the bid that produced the price")


if __name__ == "__main__":
    main()
