#!/usr/bin/env python
"""The NP-completeness reduction of Appendix B, run for real.

Deciding update consistency exactly is NP-complete *even when the update
transactions run serially* (Theorem 5).  The proof reduces 3SAT to
history legality; this library implements the entire chain as code, so
we can literally decide boolean satisfiability by asking the scheduler
whether a history is legal:

    ψ  →  ψ' (universal literal)  →  3SAT  →  non-circular formula φ
       →  polygraph P_φ  →  P'_φ (reader + forcing gadget)
       →  a history H with H_update serial and P_H(t_R) = P'_φ,
          where  H legal  ⇔  ψ satisfiable.

Run:  python examples/np_completeness.py
"""

from repro.core.explain import explain_history
from repro.core.legality import is_legal
from repro.core.polygraph import reader_polygraph
from repro.core.reductions import CNF, Literal, reduce_sat_to_history

p, q = Literal("p"), Literal("q")

FORMULAS = [
    ("(p ∨ q) ∧ (¬p ∨ q)", CNF([(p, q), (p.negate(), q)]), True),
    (
        "(p∨q) ∧ (¬p∨q) ∧ (p∨¬q) ∧ (¬p∨¬q)",
        CNF([(p, q), (p.negate(), q), (p, q.negate()), (p.negate(), q.negate())]),
        False,
    ),
]


def main() -> None:
    for text, formula, expected in FORMULAS:
        print(f"ψ = {text}")
        artifacts = reduce_sat_to_history(formula)
        history = artifacts.history
        update = history.update_subhistory()
        print(
            f"  constructed history: {len(history)} operations, "
            f"{len(update.transaction_ids)} serial update transactions, "
            f"1 read-only reader ({artifacts.reader})"
        )
        rebuilt = reader_polygraph(history, artifacts.reader)
        print(
            f"  reader polygraph: {len(rebuilt.nodes)} nodes, "
            f"{len(rebuilt.arcs)} arcs, {len(rebuilt.bipaths)} bipaths "
            f"(== constructed P'_φ: "
            f"{set(rebuilt.arcs) == set(artifacts.reader_polygraph_.arcs)})"
        )
        legal = is_legal(history)
        print(f"  history legal?  {legal}   (ψ satisfiable? {expected})")
        assert legal == expected
        print()

    print("Bonus: the explainer on the paper's Example 1 —")
    from repro.core.model import parse_history

    h = parse_history(
        "r1[IBM] w2[IBM] c2 r3[IBM] r3[Sun] w4[Sun] c4 r1[Sun] c1 c3"
    )
    print(explain_history(h))


if __name__ == "__main__":
    main()
