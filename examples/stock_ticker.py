#!/usr/bin/env python
"""Stock ticker: the paper's motivating scenario, driven by hand.

A server broadcasts the prices of a handful of instruments; two mobile
clients each run a read-only transaction spanning several broadcast
cycles while the server keeps committing price updates.  We replay the
*same* schedule under Datacycle (serializability) and under F-Matrix
(update consistency) and watch Datacycle abort a transaction that
F-Matrix commits — the exact phenomenon behind Figure 2.

The example drives :class:`repro.server.BroadcastServer` and
:class:`repro.client.ReadOnlyTransactionRuntime` directly (no simulator):
each step below is one broadcast cycle.

Run:  python examples/stock_ticker.py
"""

from repro.client import ReadOnlyTransactionRuntime
from repro.core import make_validator
from repro.server import BroadcastServer

INSTRUMENTS = ["IBM", "Sun", "DEC", "HP", "SGI"]
IBM, SUN, DEC, HP, SGI = range(5)


def run_protocol(protocol: str) -> None:
    print(f"--- protocol: {protocol} ---")
    server = BroadcastServer(num_objects=5, protocol=protocol)

    # Two clients, each reading IBM then Sun, a cycle apart.
    trader_a = ReadOnlyTransactionRuntime(
        "traderA", [IBM, SUN], make_validator(protocol)
    )
    trader_b = ReadOnlyTransactionRuntime(
        "traderB", [SUN, HP], make_validator(protocol)
    )

    # Cycle 1: initial prices go out; trader A reads IBM.
    cycle1 = server.begin_cycle(1)
    a_read = trader_a.deliver(cycle1)
    print(f"cycle 1: traderA reads IBM -> ok={a_read.ok}")

    # During cycle 1 the server commits: an IBM update, then a Sun update
    # *derived from* the new IBM price (it reads IBM, writes Sun) — so the
    # new Sun value transitively depends on the new IBM value.
    server.commit_update("updIBM", read_set=[], writes={IBM: 105}, cycle=1)
    server.commit_update("updSun", read_set=[IBM], writes={SUN: 48}, cycle=1)

    # Cycle 2: trader B starts afresh and reads the *new* Sun price.
    cycle2 = server.begin_cycle(2)
    b_read = trader_b.deliver(cycle2)
    print(f"cycle 2: traderB reads Sun -> ok={b_read.ok} (new price, fine)")

    # Trader A now wants Sun.  Its IBM read is one cycle stale and the
    # current Sun value depends on a *newer* IBM — mixing them would not
    # be serializable w.r.t. the transactions A read from, so *both*
    # protocols must reject this read:
    a_read2 = trader_a.deliver(cycle2)
    print(f"cycle 2: traderA reads Sun -> ok={a_read2.ok} (depends on newer IBM)")
    if trader_a.aborted:
        trader_a.restart()
        print("         traderA restarts from scratch")

    # During cycle 2 another Sun trade commits (independent of HP).
    server.commit_update("updSun2", read_set=[], writes={SUN: 49}, cycle=2)

    # Cycle 3: trader A redoes IBM (fresh), then Sun in the same cycle —
    # commits under both protocols.
    cycle3 = server.begin_cycle(3)
    trader_a.deliver(cycle3)
    trader_a.deliver(cycle3)
    print(f"cycle 3: traderA re-reads IBM+Sun -> done={trader_a.is_done}")
    print(f"         traderA observed {dict(zip(['IBM', 'Sun'], [v.value for v in trader_a.versions]))}")

    # Trader B reads HP.  Sun — which B read earlier — has been
    # overwritten meanwhile, so Datacycle's strict condition kills the
    # transaction even though HP is utterly unrelated to the new Sun
    # trade.  F-Matrix sees that nothing HP depends on postdates B's Sun
    # read and lets it commit.  This is the divergence Figure 2 measures.
    b_read2 = trader_b.deliver(cycle3)
    verdict = "committed" if b_read2.ok else "ABORTED"
    print(f"cycle 3: traderB reads HP -> ok={b_read2.ok}  => traderB {verdict}")
    print()


def main() -> None:
    print("Same schedule, two protocols:\n")
    run_protocol("datacycle")
    run_protocol("f-matrix")
    print("Datacycle (serializability) aborts traderB; F-Matrix (update")
    print("consistency via APPROX) commits it — no server round-trips in")
    print("either case, but far fewer wasted restarts under F-Matrix.")


if __name__ == "__main__":
    main()
