#!/usr/bin/env python
"""Quasi-caching: trading currency for latency (Sec. 3.3).

A client that only needs data current to within ``T`` time units may
serve reads from a local cache instead of waiting for the object's next
broadcast slot — invalidation is purely local, and mutual consistency is
preserved because the cache keeps the control-matrix column that
accompanied each cached object.

Part 1 shows the mechanism by hand: a cached read validates through the
same F-Matrix read condition, and a cached value whose dependencies have
moved on is correctly *rejected* rather than served inconsistently.

Part 2 quantifies it: the same workload simulated with increasing
currency bounds — response time falls as T grows (hits skip the wait for
the broadcast slot), while the restart ratio stays essentially flat.

Run:  python examples/weak_currency_cache.py
"""

from repro.client import QuasiCache, ReadOnlyTransactionRuntime
from repro.core import make_validator
from repro.server import BroadcastServer
from repro.sim import SimulationConfig, run_simulation

X, Y, Z = 0, 1, 2


def mechanism_demo() -> None:
    print("-- mechanism: cached reads validate like off-air reads --")
    server = BroadcastServer(num_objects=3, protocol="f-matrix")
    cache = QuasiCache(default_currency_bound=10_000.0)

    b1 = server.begin_cycle(1)
    cache.insert(b1, X, now=0.0)  # prefetch X from cycle 1 at t=0
    cache.insert(b1, Y, now=0.0)  # prefetch Y too
    print("cached X and Y from cycle 1 (values + their matrix columns)")

    # Server commits during cycle 1: X updated, then Z derived *from* the
    # new X (reads X, writes Z).
    server.commit_update("u1", read_set=[], writes={X: "x'"}, cycle=1)
    server.commit_update("u2", read_set=[X], writes={Z: "z'"}, cycle=1)

    b2 = server.begin_cycle(2)

    # Transaction 1: fresh Z (cycle 2) — whose value depends on the *new*
    # X — then the cached, pre-update X.  Mixing them would be circular
    # (Z says X is newer than what we'd return); the backward condition on
    # the retained column catches it and the cached read is rejected.
    t1 = ReadOnlyTransactionRuntime("t1", [Z, X], make_validator("f-matrix"))
    t1.deliver(b2)
    entry = cache.lookup(X, now=100.0)
    assert entry is not None
    outcome = t1.deliver(entry.as_broadcast())
    print(f"t1: fresh Z then cached X -> ok={outcome.ok}  (stale dependency, rejected)")

    # Transaction 2: cached Y first, then fresh Z.  The old Y is
    # independent of the new Z, so the pair is a perfectly consistent
    # (if less current) view.
    t2 = ReadOnlyTransactionRuntime("t2", [Y, Z], make_validator("f-matrix"))
    entry = cache.lookup(Y, now=200.0)
    assert entry is not None
    ok_cached = t2.deliver(entry.as_broadcast()).ok
    ok_fresh = t2.deliver(b2).ok
    print(f"t2: cached Y then fresh Z -> ok={ok_cached and ok_fresh}  (weakly current, consistent)")

    # After the currency bound passes, the entry self-invalidates locally.
    assert cache.lookup(Y, now=50_000.0) is None
    print("after T elapses the entry expires locally — no invalidation traffic\n")


def quantify_demo() -> None:
    print("-- quantification: response time vs currency bound T --")
    base = SimulationConfig(
        protocol="f-matrix",
        num_objects=100,
        client_txn_length=6,
        num_client_transactions=150,
        seed=11,
    )
    cycle = base.cycle_bits
    print(f"(cycle = {cycle} bit-units)")
    for bound_cycles in (0, 1, 4, 16):
        cfg = base.replace(
            cache_currency_bound=bound_cycles * cycle if bound_cycles else None
        )
        result = run_simulation(cfg)
        hits = result.metrics.cache_hits
        print(
            f"T = {bound_cycles:>2} cycles: response "
            f"{result.response_time.mean / 1e6:7.3f}M bit-units, "
            f"restarts {result.restart_ratio.mean:5.2f}, cache hits {hits}"
        )


if __name__ == "__main__":
    mechanism_demo()
    quantify_demo()
