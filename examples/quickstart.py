#!/usr/bin/env python
"""Quickstart: the two faces of the library in ~60 lines.

1. The **theory layer**: check histories against serializability, APPROX
   and update-consistency legality — here on the paper's Example 1, a
   history that is *not* serializable yet perfectly consistent for
   broadcast clients.
2. The **system layer**: run a small broadcast-disk simulation under the
   F-Matrix protocol and print the metrics the paper reports.

Run:  python examples/quickstart.py
"""

from repro.core import (
    approx_accepts,
    is_conflict_serializable,
    is_legal,
    parse_history,
)
from repro.sim import SimulationConfig, run_simulation


def theory_demo() -> None:
    # Paper Example 1: two stock-reading clients (t1, t3) interleaved with
    # two server updates (t2 on IBM, t4 on Sun).
    history = parse_history(
        "r1[IBM] w2[IBM] c2 r3[IBM] r3[Sun] w4[Sun] c4 r1[Sun] c1 c3"
    )
    print("Example 1 history:", history)
    print("  conflict serializable?     ", is_conflict_serializable(history))
    print("  accepted by APPROX?        ", approx_accepts(history))
    print("  legal (update consistent)? ", is_legal(history))
    print()
    print("Serializability would force an abort here; update consistency")
    print("lets both read-only clients commit without ever contacting the")
    print("server — each sees a consistent (if different) serial order.")
    print()


def simulation_demo() -> None:
    config = SimulationConfig(
        protocol="f-matrix",
        num_objects=100,
        num_client_transactions=100,
        client_txn_length=6,
        seed=1,
    )
    print(
        f"Simulating {config.num_client_transactions} client transactions "
        f"({config.client_txn_length} reads each) over "
        f"{config.num_objects} objects under {config.protocol} ..."
    )
    print(
        f"  broadcast cycle: {config.cycle_bits} bit-units, of which "
        f"{config.control_overhead_fraction:.1%} is control information"
    )
    result = run_simulation(config)
    print(f"  mean response time : {result.response_time.mean / 1e6:.3f}M bit-units")
    print(f"  95% CI half-width  : {result.response_time.ci_halfwidth / 1e6:.3f}M")
    print(f"  restart ratio      : {result.restart_ratio.mean:.2f} restarts/txn")
    print(f"  server commits seen: {result.metrics.server_commits}")
    print(f"  simulated time     : {result.sim_time / 1e6:.1f}M bit-units")


if __name__ == "__main__":
    theory_demo()
    simulation_demo()
