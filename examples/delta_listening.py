#!/usr/bin/env python
"""Delta transmission of the control matrix (Sec. 3.2.1's sketch, live).

The F-Matrix control information is worst-case incompressible (Theorem
8), but real workloads touch few entries per cycle, so the paper
suggests broadcasting *deltas*.  The catch it also names: a client must
then listen to **every** cycle (battery) and can desynchronise.  This
example runs the encoder/decoder pair over control matrices produced by
a live server and shows all three phenomena:

* per-cycle delta frames are a small fraction of the dense matrix;
* a late joiner decodes nothing until the next anchor frame;
* a client that misses one frame detects the gap and resynchronises.

Run:  python examples/delta_listening.py
"""

from repro.broadcast.delta import DeltaDecoder, DeltaEncoder, DesyncError
from repro.server.server import BroadcastServer
from repro.server.workload import ServerWorkload

import numpy as np

N = 60
CYCLES = 12
ANCHOR_EVERY = 6


def main() -> None:
    server = BroadcastServer(N, "f-matrix")
    workload = ServerWorkload(N, length=8, read_probability=0.5, seed=2)
    encoder = DeltaEncoder(N, anchor_every=ANCHOR_EVERY)
    steady_client = DeltaDecoder(N)
    late_client = DeltaDecoder(N)
    flaky_client = DeltaDecoder(N)

    dense_bits = N * N * encoder.timestamp_bits
    print(f"{N} objects; dense matrix = {dense_bits} bits per cycle; "
          f"anchor every {ANCHOR_EVERY} cycles\n")

    frames = []
    for cycle in range(1, CYCLES + 1):
        # a few server commits per cycle
        for _ in range(3):
            spec = workload.next_transaction()
            if spec.write_set:
                server.commit_update(
                    spec.tid, spec.read_set,
                    {o: spec.tid for o in spec.write_set}, cycle=cycle,
                )
        broadcast = server.begin_cycle(cycle)
        frame = encoder.encode(cycle, np.asarray(broadcast.snapshot.matrix))
        frames.append(frame)

        decoded = steady_client.apply(frame)
        assert decoded is not None and np.array_equal(
            decoded, broadcast.snapshot.matrix
        )

        if cycle >= 4:  # the late joiner tunes in at cycle 4
            got = late_client.apply(frame)
            note = "synchronised" if got is not None else "waiting for anchor"
        else:
            note = "-"
        print(
            f"cycle {cycle:>2}: {frame.kind:<6} {frame.size_bits():>7} bits "
            f"({frame.size_bits() / dense_bits:6.1%} of dense)   late joiner: {note}"
        )

    print("\nflaky client hears cycles 1-2, sleeps through 3, wakes at 4:")
    flaky_client.apply(frames[0])
    flaky_client.apply(frames[1])
    try:
        flaky_client.apply(frames[3])
    except DesyncError as error:
        print(f"  desync detected: {error}")
    resumed = None
    for frame in frames[4:]:
        try:
            resumed = flaky_client.apply(frame)
        except DesyncError:
            continue
        if resumed is not None:
            print(f"  resynchronised at the cycle-{frame.cycle} anchor")
            break
    assert resumed is not None

    total_delta = sum(f.size_bits() for f in frames)
    print(
        f"\ntotal control traffic: {total_delta} bits delta-encoded vs "
        f"{dense_bits * CYCLES} dense ({total_delta / (dense_bits * CYCLES):.1%})"
    )


if __name__ == "__main__":
    main()
