#!/usr/bin/env python
"""Road-traffic dissemination: hot arterials on a multi-speed disk.

The paper's introduction names "next generation road traffic management
systems" among the applications.  Model: a city broadcasts per-segment
congestion records; navigation clients read the few segments of a route
as one read-only transaction (a route must be *mutually consistent* — no
mixing of pre- and post-incident states across segments); sensor feeds
commit updates at the server.  Most queries hit the arterial 10% of
segments, which a two-speed broadcast disk spins 6× faster.

This example exercises the extension surface of the library on one
realistic scenario:

* multi-speed layout + skewed client access,
* F-Matrix consistency off the air,
* replicated runs with honest cross-replication confidence intervals,
* the tuning-time (battery) metric,
* an ASCII chart of the sweep.

Run:  python examples/road_traffic.py
"""

from repro.experiments.plotting import render_chart
from repro.experiments.sweeps import ExperimentResult, Point, Series
from repro.sim import SimulationConfig, replicate, run_simulation

SEGMENTS = 150          # city road segments in the broadcast
ARTERIAL_FRACTION = 0.1 # the hot 10%
ROUTE_LENGTH = 5        # segments per navigation query


def base_config(**overrides) -> SimulationConfig:
    params = dict(
        protocol="f-matrix",
        num_objects=SEGMENTS,
        client_txn_length=ROUTE_LENGTH,
        server_txn_length=6,          # one sensor batch touches 6 segments
        server_txn_interval=400_000.0,
        object_size_bits=2048,        # a congestion record
        num_client_transactions=120,
        client_access_skew=0.85,      # most queries on arterials
        hot_fraction=ARTERIAL_FRACTION,
        seed=7,
    )
    params.update(overrides)
    return SimulationConfig(**params)


def main() -> None:
    print(f"{SEGMENTS} road segments, {ROUTE_LENGTH}-segment route queries,")
    print("85% of reads on the arterial 10% of segments\n")

    result = ExperimentResult("road-traffic", "hot-disk speed-up")
    series = Series("f-matrix")
    for frequency in (1, 2, 4, 6):
        if frequency == 1:
            cfg = base_config()
        else:
            cfg = base_config(layout_kind="multi-disk", hot_frequency=frequency)
        pooled = replicate(cfg, replications=3)
        one = run_simulation(cfg)
        series.points.append(
            Point(
                float(frequency),
                pooled.response_time,
                pooled.restart_ratio,
                one.sim_time,
                one.events,
            )
        )
        print(
            f"hot disk x{frequency}: route response "
            f"{pooled.response_time.mean / 1e6:6.3f}M ± "
            f"{pooled.response_time.ci_halfwidth / 1e6:5.3f}M bit-units "
            f"(3 replications), listening/route "
            f"{one.metrics.mean_listening_per_commit():8.0f} bits"
        )
    result.series["f-matrix"] = series

    print()
    print(render_chart(result, height=10, width=48))
    fastest = series.points[-1].response_time.mean
    flat = series.points[0].response_time.mean
    print(
        f"spinning arterials 6x faster cuts route latency "
        f"{flat / fastest:.1f}x — and every route stays update consistent."
    )


if __name__ == "__main__":
    main()
