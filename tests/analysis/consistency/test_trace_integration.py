"""End-to-end: simulator traces through the certifier.

One small seeded run per protocol; the reconstructed sessioned history
must certify the paper's update-consistency guarantee, and Datacycle's
single-snapshot-point semantics must additionally certify full
serializability of the global history.
"""

import pytest

from repro.analysis.consistency import (
    LEVELS,
    certify,
    certify_update_consistency,
)
from repro.sim import SimulationConfig, run_simulation

PROTOCOLS = ("f-matrix", "r-matrix", "datacycle")


def run(protocol, **overrides):
    config = SimulationConfig(
        protocol=protocol,
        num_objects=15,
        num_client_transactions=12,
        seed=7,
        audit=True,
        **overrides,
    )
    return run_simulation(config)


@pytest.fixture(scope="module")
def transactional_histories():
    out = {}
    for protocol in PROTOCOLS:
        result = run(protocol)
        out[protocol] = result.trace.transactional_history(
            result.server.database
        )
    return out


class TestUpdateConsistency:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_protocol_certifies(self, transactional_histories, protocol):
        report = certify_update_consistency(transactional_histories[protocol])
        assert report.ok, report.format()
        assert report.reader_verdicts  # the run committed readers

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_weak_levels_hold_on_full_history(
        self, transactional_histories, protocol
    ):
        report = certify(
            transactional_histories[protocol],
            ["read-committed", "read-atomic", "causal"],
        )
        assert report.ok, report.format()


class TestDatacycleGlobalSerializability:
    def test_all_six_levels_pass(self, transactional_histories):
        report = certify(transactional_histories["datacycle"], LEVELS)
        assert report.ok, report.format()
        assert report.verdict("serializability").order


class TestSessionRecording:
    def test_sessions_cover_client_commits(self, transactional_histories):
        th = transactional_histories["f-matrix"]
        session_members = {tid for session in th.sessions for tid in session}
        client_tids = {tid for tid in th.tids if tid.startswith("cl")}
        # every committed client transaction sits in exactly one session
        assert session_members <= client_tids
        for session in th.sessions:
            assert len(set(session)) == len(session)

    def test_modulo_run_certifies_too(self):
        result = run("f-matrix", modulo_timestamps=True)
        th = result.trace.transactional_history(result.server.database)
        assert certify_update_consistency(th).ok
