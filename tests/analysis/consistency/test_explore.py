"""Tests for the small-scope schedule model checker."""

import json

from repro.analysis.consistency.explore import (
    EXPLORED_PROTOCOLS,
    SCOPES,
    explore_scope,
    main,
)


class TestSmallestScope:
    def test_every_protocol_certifies(self):
        result = explore_scope(SCOPES["smallest"])
        assert result.ok, [
            v.describe() if hasattr(v, "describe") else v
            for s in result.stats
            for v in s.violations
        ]

    def test_covers_every_protocol_in_both_modes(self):
        result = explore_scope(SCOPES["smallest"])
        seen = {(s.protocol, s.mode) for s in result.stats}
        assert seen == {
            (protocol, mode)
            for protocol in EXPLORED_PROTOCOLS
            for mode in ("paced", "faulty")
        }

    def test_sweeps_are_nonempty(self):
        result = explore_scope(SCOPES["smallest"])
        for stats in result.stats:
            assert stats.executions > 0
            assert stats.committed_readers > 0

    def test_fmatrix_accepts_globally_non_serializable_schedules(self):
        # update consistency is weaker than serializability: F-Matrix
        # legitimately commits readers whose LIVE sets diverge, so some
        # unpaced executions have no single global serialization — the
        # certifier must still accept every one of them (ok above)
        result = explore_scope(SCOPES["smallest"])
        fmatrix_faulty = next(
            s for s in result.stats
            if s.protocol == "f-matrix" and s.mode == "faulty"
        )
        assert fmatrix_faulty.global_non_serializable > 0

    def test_datacycle_is_globally_serializable_everywhere(self):
        result = explore_scope(SCOPES["smallest"])
        for stats in result.stats:
            if stats.protocol == "datacycle":
                assert stats.global_non_serializable == 0


class TestMain:
    def test_exit_zero_and_json_output(self, tmp_path, capsys):
        out = tmp_path / "explore.json"
        assert main(["--scope", "smallest", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["results"]
        assert "smallest" in capsys.readouterr().out

    def test_unknown_scope_is_usage_error(self):
        try:
            main(["--scope", "galactic"])
        except SystemExit as exc:
            assert exc.code == 2
        else:  # pragma: no cover
            raise AssertionError("expected SystemExit")
