"""Tests for the ⟨T, so, wr⟩ adapter and cycle-number session recovery."""

from repro.analysis.consistency.histories import (
    TransactionalHistory,
    decode_commit_cycles,
    derive_sessions,
)
from repro.core.cycles import ModuloCycles
from repro.core.model import parse_history


class TestTransactionalHistory:
    def test_wr_pairs_positional(self):
        th = TransactionalHistory(parse_history("w1[x] c1 r2[x] w2[y] c2"))
        assert ("t1", "t2", "x") in th.wr_pairs()

    def test_initial_reads_attributed_to_t0(self):
        th = TransactionalHistory(parse_history("r1[x] c1 w2[x] c2"))
        assert ("t0", "t1", "x") in th.wr_pairs()

    def test_aborted_transactions_dropped(self):
        th = TransactionalHistory(parse_history("w1[x] a1 w2[x] c2"))
        assert th.tids == ("t2",)

    def test_writers_of_in_first_write_order(self):
        th = TransactionalHistory(parse_history("w1[x] c1 w2[x] w2[y] c2"))
        assert th.writers_of()["x"] == ("t1", "t2")

    def test_read_events_in_program_order(self):
        th = TransactionalHistory(
            parse_history("w1[x] w1[y] c1 r2[y] r2[x] c2")
        )
        assert th.read_events("t2") == (("y", "t1"), ("x", "t1"))

    def test_restrict_projects_sessions(self):
        th = TransactionalHistory(
            parse_history("w1[x] c1 r2[x] c2 r3[x] c3"),
            [["t1", "t2", "t3"]],
        )
        sub = th.restrict(["t1", "t3"])
        assert sub.tids == ("t1", "t3")
        assert sub.so_edges() == (("t1", "t3"),)

    def test_single_member_sessions_contribute_nothing(self):
        th = TransactionalHistory(parse_history("w1[x] c1"), [["t1"]])
        assert th.sessions == ()
        assert th.so_pairs() == frozenset()


class TestDecodeCommitCycles:
    def test_absolute_cycles_pass_through(self):
        cycles = decode_commit_cycles(parse_history("w1[x] c1@7 w2[x] c2@9"))
        assert cycles == {"t1": 7, "t2": 9}

    def test_residues_anchor_walk_across_wrap(self):
        # window 8: residues 6, 1 decode to absolute 6, 9 (wrapping once)
        history = parse_history("w1[x] c1@6 w2[x] c2@1")
        cycles = decode_commit_cycles(history, ModuloCycles(3))
        assert cycles == {"t1": 6, "t2": 9}

    def test_equal_residue_means_same_cycle(self):
        history = parse_history("w1[x] c1@5 w2[x] c2@5")
        cycles = decode_commit_cycles(history, ModuloCycles(3))
        assert cycles == {"t1": 5, "t2": 5}

    def test_unannotated_commits_omitted(self):
        cycles = decode_commit_cycles(parse_history("w1[x] c1 w2[x] c2@3"))
        assert cycles == {"t2": 3}


class TestDeriveSessions:
    def test_groups_by_client_prefix(self):
        history = parse_history(
            "wA[x] cA@1 rcl0.a[x] ccl0.a@2 wcl1.b[y] ccl1.b@3 rcl0.c[y] ccl0.c@4"
        )
        sessions = derive_sessions(history)
        assert sessions == (("cl0.a", "cl0.c"),)

    def test_cycle_numbers_order_members(self):
        history = parse_history(
            "wcl0.b[x] ccl0.b@9 wcl0.a[y] ccl0.a@4"
        )
        # history position says b first, commit cycles say a first
        assert derive_sessions(history) == (("cl0.a", "cl0.b"),)

    def test_modulo_residues_do_not_scramble_sessions(self):
        history = parse_history(
            "wcl0.a[x] ccl0.a@6 wcl0.b[y] ccl0.b@1"
        )
        # residue 1 decodes to absolute 9 under window 8: a stays first
        assert derive_sessions(history, ModuloCycles(3)) == (("cl0.a", "cl0.b"),)
