"""Property-based cross-checks for the consistency certifier.

Three oracles keep the checkers honest:

* a **brute-force permutation oracle** for serializability — enumerate
  every total order of the transactions, accept iff one extends
  ``so ∪ wr`` and respects every write-read fact (no third writer lands
  between a version's writer and its reader).  The polygraph-based
  checker must agree exactly on small random histories.
* the **level lattice** — SER ⟹ SI ⟹ PC ⟹ CC ⟹ RA ⟹ RC.  A random
  history passing a stronger level must pass every weaker one.
* :mod:`repro.core.legality` — for simulator-shaped histories (serial
  updates plus read-only readers), the certifier's update-consistency
  verdict must match the legality engine's per-reader polygraph verdict.
"""

from itertools import permutations

from hypothesis import given, settings, strategies as st

from repro.analysis.consistency import certify_update_consistency
from repro.analysis.consistency.checkers import (
    LEVELS,
    check_level,
    check_serializability,
)
from repro.analysis.consistency.histories import TransactionalHistory
from repro.core.legality import legality_report
from repro.core.model import History, T0, commit, read, write

MAX_TXNS = 5
OBJECTS = ("x", "y", "z")


# ----------------------------------------------------------------------
# history generation: per-transaction ops, then a random interleaving
# ----------------------------------------------------------------------
@st.composite
def histories(draw):
    num_txns = draw(st.integers(min_value=2, max_value=MAX_TXNS))
    tids = [f"t{i + 1}" for i in range(num_txns)]
    ops = []
    for tid in tids:
        body = draw(
            st.lists(
                st.tuples(st.booleans(), st.sampled_from(OBJECTS)),
                min_size=1,
                max_size=3,
            )
        )
        txn_ops = [
            write(tid, obj) if is_write else read(tid, obj)
            for is_write, obj in body
        ]
        txn_ops.append(commit(tid))
        ops.append(txn_ops)
    # random interleaving that keeps each transaction's program order
    merged = []
    queues = [list(txn_ops) for txn_ops in ops]
    while any(queues):
        alive = [i for i, q in enumerate(queues) if q]
        pick = draw(st.sampled_from(alive))
        merged.append(queues[pick].pop(0))
    return History(merged, strict=False)


@st.composite
def sessioned_histories(draw):
    history = draw(histories())
    tids = list(history.transaction_ids)
    session = draw(
        st.lists(st.sampled_from(tids), max_size=len(tids), unique=True)
    )
    sessions = [session] if len(session) > 1 else []
    return TransactionalHistory(history, sessions)


# ----------------------------------------------------------------------
# the brute-force serializability oracle
# ----------------------------------------------------------------------
def brute_force_serializable(th: TransactionalHistory) -> bool:
    tids = list(th.tids)
    wr = th.wr_pairs()
    so = th.so_pairs()
    writers = th.writers_of()
    for order in permutations(tids):
        position = {tid: i for i, tid in enumerate(order)}
        position[T0] = -1
        if any(position[a] >= position[b] for a, b in so):
            continue
        ok = True
        for writer, reader, obj in wr:
            if position[writer] >= position[reader]:
                ok = False
                break
            for other in writers.get(obj, ()):
                if other in (writer, reader):
                    continue
                if position[writer] < position[other] < position[reader]:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return True
    return False


class TestBruteForceOracle:
    @settings(max_examples=120, deadline=None)
    @given(sessioned_histories())
    def test_ser_checker_matches_permutation_oracle(self, th):
        assert check_serializability(th).ok == brute_force_serializable(th)

    @settings(max_examples=120, deadline=None)
    @given(sessioned_histories())
    def test_ser_pass_order_is_accepted_by_oracle_criteria(self, th):
        verdict = check_serializability(th)
        if not verdict.ok:
            return
        position = {tid: i for i, tid in enumerate(verdict.order)}
        position[T0] = -1
        for a, b in th.so_pairs():
            assert position[a] < position[b]
        writers = th.writers_of()
        for writer, reader, obj in th.wr_pairs():
            assert position[writer] < position[reader]
            for other in writers.get(obj, ()):
                if other not in (writer, reader):
                    assert not (
                        position[writer] < position[other] < position[reader]
                    )


class TestLevelLattice:
    @settings(max_examples=120, deadline=None)
    @given(sessioned_histories())
    def test_stronger_level_implies_weaker(self, th):
        results = [check_level(th, level).ok for level in LEVELS]
        # LEVELS is ordered weakest → strongest: once a level fails,
        # every stronger level must fail too
        for weaker, stronger in zip(results, results[1:]):
            assert weaker or not stronger


# ----------------------------------------------------------------------
# cross-engine: certifier vs the legality checker's reader polygraphs
# ----------------------------------------------------------------------
@st.composite
def broadcast_shaped_histories(draw):
    """Serial committed updates, then read-only readers with positional reads."""
    num_updates = draw(st.integers(min_value=1, max_value=4))
    ops = []
    for i in range(num_updates):
        tid = f"u{i + 1}"
        for obj in draw(
            st.lists(st.sampled_from(OBJECTS), min_size=1, max_size=2, unique=True)
        ):
            ops.append(write(tid, obj))
        ops.append(commit(tid))
    # insert each reader's reads at random points between update blocks
    num_readers = draw(st.integers(min_value=1, max_value=2))
    commits = [i for i, op in enumerate(ops) if op.is_commit]
    for j in range(num_readers):
        tid = f"r{j + 1}"
        objs = draw(
            st.lists(st.sampled_from(OBJECTS), min_size=1, max_size=3, unique=True)
        )
        inserts = sorted(
            (draw(st.sampled_from(commits)) + 1 for _ in objs), reverse=True
        )
        for obj, at in zip(objs, inserts):
            ops.insert(at, read(tid, obj))
        ops.append(commit(tid))
    return History(ops, strict=False)


class TestLegalityCrossCheck:
    @settings(max_examples=100, deadline=None)
    @given(broadcast_shaped_histories())
    def test_update_consistency_matches_legality_engine(self, history):
        report = certify_update_consistency(TransactionalHistory(history))
        assert report.ok == legality_report(history).legal

    @settings(max_examples=100, deadline=None)
    @given(broadcast_shaped_histories())
    def test_rejected_readers_agree(self, history):
        ours = certify_update_consistency(TransactionalHistory(history))
        theirs = legality_report(history)
        assert {tid for tid, v in ours.reader_verdicts if not v.ok} == set(
            theirs.rejected_readers
        )


class TestSeededAnomalyFixture:
    """The ISSUE's seeded non-serializable run: reject with a real witness."""

    #: two readers observing two independent writes in opposite orders —
    #: accepted by nothing at prefix level or above
    LONG_FORK = History(
        [
            read("r2", "x"),
            write("u1", "x"),
            commit("u1"),
            read("r1", "x"),
            read("r1", "y"),
            commit("r1"),
            write("u2", "y"),
            commit("u2"),
            read("r2", "y"),
            commit("r2"),
        ],
        strict=False,
    )

    def test_rejected_at_ser_and_si_with_witness(self):
        th = TransactionalHistory(self.LONG_FORK)
        for level in ("serializability", "snapshot-isolation", "prefix"):
            verdict = check_level(th, level)
            assert not verdict.ok, level
            assert verdict.witness is not None
            assert set(verdict.witness.transactions) & {"r1", "r2"}

    def test_update_subhistory_alone_is_fine(self):
        report = certify_update_consistency(TransactionalHistory(self.LONG_FORK))
        # each reader individually embeds into a serialization of its
        # perceived updates — the long fork is invisible per reader,
        # which is exactly why update consistency is weaker than SER
        assert report.ok
