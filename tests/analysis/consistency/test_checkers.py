"""Unit tests for the isolation-level checkers (classic anomalies).

Each fixture is a textbook anomaly; the table below says which levels
must reject it.  Reads are positional (a read observes the latest commit
before it), so "stale" observations are encoded by placing the read
*before* the ignored commit.

==================  ======================================================
fixture             fails at
==================  ======================================================
serial              nothing
fractured read      read-atomic and everything stronger
causal violation    causal and everything stronger
long fork           prefix, snapshot-isolation, serializability
lost update         snapshot-isolation, serializability
write skew          serializability only
==================  ======================================================
"""

import pytest

from repro.analysis.consistency import LEVELS, check_level
from repro.analysis.consistency.checkers import (
    check_causal,
    check_prefix,
    check_read_atomic,
    check_read_committed,
    check_serializability,
    check_snapshot_isolation,
)
from repro.analysis.consistency.histories import TransactionalHistory
from repro.core.model import parse_history

SERIAL = "w1[x] c1 r2[x] w2[y] c2 r3[x] r3[y] c3"

#: t2 sees t1's x but the initial y — t1's writes arrive fractured
FRACTURED_READ = "r2[y] w1[x] w1[y] c1 r2[x] c2"

#: t3 sees y (written after t2 read t1's x) but not t1's causally-earlier x
CAUSAL_VIOLATION = "r3[x] w1[x] c1 r2[x] w2[y] c2 r3[y] c3"

#: t3 and t4 see the two independent writes in opposite orders
LONG_FORK = "r4[x] w1[x] c1 r3[x] r3[y] c3 w2[y] c2 r4[y] c4"

#: t1 and t2 both read initial x, both write x — one update is lost
LOST_UPDATE = "r1[x] r2[x] w1[x] c1 w2[x] c2"

#: disjoint writes based on mutually-stale reads — SI's hallmark anomaly
WRITE_SKEW = "r1[x] r2[y] w1[y] c1 w2[x] c2"


def verdicts(text):
    th = TransactionalHistory(parse_history(text))
    return {level: check_level(th, level) for level in LEVELS}


def failing_levels(text):
    return {level for level, v in verdicts(text).items() if not v.ok}


class TestClassicAnomalies:
    def test_serial_history_passes_everything(self):
        assert failing_levels(SERIAL) == set()

    def test_fractured_read(self):
        assert failing_levels(FRACTURED_READ) == {
            "read-atomic",
            "causal",
            "prefix",
            "snapshot-isolation",
            "serializability",
        }

    def test_causal_violation(self):
        assert failing_levels(CAUSAL_VIOLATION) == {
            "causal",
            "prefix",
            "snapshot-isolation",
            "serializability",
        }

    def test_long_fork(self):
        assert failing_levels(LONG_FORK) == {
            "prefix",
            "snapshot-isolation",
            "serializability",
        }

    def test_lost_update(self):
        assert failing_levels(LOST_UPDATE) == {
            "snapshot-isolation",
            "serializability",
        }

    def test_write_skew_distinguishes_si_from_ser(self):
        assert failing_levels(WRITE_SKEW) == {"serializability"}


class TestWitnesses:
    def test_fail_verdict_carries_witness(self):
        th = TransactionalHistory(parse_history(WRITE_SKEW))
        verdict = check_serializability(th)
        assert not verdict.ok
        witness = verdict.witness
        assert witness is not None
        assert witness.level == "serializability"
        assert set(witness.transactions) >= {"t1", "t2"}
        assert witness.format()  # renders without error
        payload = witness.to_dict()
        assert payload["level"] == "serializability"
        assert payload["transactions"]

    def test_polynomial_fail_witness_has_cycle_and_edges(self):
        th = TransactionalHistory(parse_history(FRACTURED_READ))
        verdict = check_read_atomic(th)
        assert not verdict.ok
        assert verdict.witness is not None
        assert verdict.witness.cycle
        assert verdict.witness.edges
        # every cycle step is a labelled ordering fact src --kind--> dst
        for edge in verdict.witness.edges:
            assert "-->" in edge.format()

    def test_pass_verdict_carries_certifying_order(self):
        th = TransactionalHistory(parse_history(SERIAL))
        for checker in (
            check_serializability,
            check_prefix,
            check_snapshot_isolation,
        ):
            verdict = checker(th)
            assert verdict.ok
            assert set(verdict.order) == {"t1", "t2", "t3"}

    def test_ser_pass_order_is_a_valid_serialization(self):
        th = TransactionalHistory(parse_history(SERIAL))
        order = check_serializability(th).order
        position = {tid: i for i, tid in enumerate(order)}
        for writer, reader, _obj in th.wr_pairs():
            if writer != "t0":
                assert position[writer] < position[reader]


class TestSessions:
    def test_session_order_can_break_causal(self):
        # t2 overwrites x after reading t1's version, so t1 → t2 is causal;
        # a session that observes t2's version and *then* t1's makes the
        # stale second read a causal violation
        text = "w1[x] c1 r3[x] r2[x] w2[x] c2 r4[x] c3 c4"
        history = parse_history(text)
        free = TransactionalHistory(history)
        assert check_causal(free).ok
        sessioned = TransactionalHistory(history, [["t4", "t3"]])
        assert not check_causal(sessioned).ok

    def test_session_order_feeds_read_committed(self):
        th = TransactionalHistory(parse_history(SERIAL), [["t1", "t2", "t3"]])
        assert check_read_committed(th).ok

    def test_sessions_drop_uncommitted_members(self):
        th = TransactionalHistory(
            parse_history(SERIAL), [["t1", "ghost", "t2", "t3"]]
        )
        assert th.so_edges() == (("t1", "t2"), ("t2", "t3"))

    def test_repeated_session_member_rejected(self):
        with pytest.raises(ValueError):
            TransactionalHistory(parse_history(SERIAL), [["t1", "t2", "t1"]])


class TestCheckLevel:
    def test_unknown_level_raises(self):
        th = TransactionalHistory(parse_history(SERIAL))
        with pytest.raises(ValueError):
            check_level(th, "linearizability")

    def test_all_levels_dispatch(self):
        th = TransactionalHistory(parse_history(SERIAL))
        for level in LEVELS:
            assert check_level(th, level).level == level
