"""Property-based tests: the auditor accepts exactly what certify accepts.

``repro.analysis.audit_history`` (the history-level invariants) must pass
a history iff :func:`repro.core.certify.certify_history` produces a
certificate — i.e. iff APPROX accepts.  Random histories in the paper's
model (reads-then-writes per transaction, arbitrary interleavings) pin
the equivalence.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import audit_history
from repro.core.certify import CertificationError, certify_history
from repro.core.model import History, commit, read, write

NUM_OBJECTS = 3


@st.composite
def histories(draw, max_txns: int = 4):
    """Random committed histories (reads before writes per transaction)."""
    num_txns = draw(st.integers(1, max_txns))
    blocks = []
    for t in range(1, num_txns + 1):
        objs = list(range(NUM_OBJECTS))
        reads = draw(st.lists(st.sampled_from(objs), max_size=2, unique=True))
        writes = draw(st.lists(st.sampled_from(objs), max_size=2, unique=True))
        if not reads and not writes:
            reads = [draw(st.sampled_from(objs))]
        ops = [read(f"t{t}", str(o)) for o in reads]
        ops += [write(f"t{t}", str(o)) for o in writes]
        ops.append(commit(f"t{t}"))
        blocks.append(list(reversed(ops)))
    ops_out = []
    live = [b for b in blocks if b]
    while live:
        index = draw(st.integers(0, len(live) - 1))
        ops_out.append(live[index].pop())
        live = [b for b in live if b]
    return History(ops_out)


@settings(max_examples=120, deadline=None)
@given(histories())
def test_auditor_agrees_with_certification(history):
    try:
        certify_history(history)
        certified = True
    except CertificationError:
        certified = False
    report = audit_history(history)
    assert report.ok == certified, (
        f"auditor ok={report.ok} but certify={certified} on "
        f"{history.to_notation()!r}: "
        + "; ".join(d.format() for d in report.diagnostics)
    )


@settings(max_examples=60, deadline=None)
@given(histories())
def test_rejections_carry_structured_diagnostics(history):
    report = audit_history(history)
    if report.ok:
        return
    for diag in report.diagnostics:
        assert diag.invariant in report.checked
        assert diag.message
        # every soundness rejection names the offending transactions
        if diag.invariant == "validation-soundness":
            assert diag.transactions
