"""Integration: the auditor on real (seeded) simulation runs.

Every shipped protocol, plus the modulo-timestamp wire format and the
quasi-cache, must produce runs with zero invariant violations; the report
must carry the config fingerprint, and building a context from a
trace-less run must fail with actionable guidance.
"""

import pytest

from repro.analysis import audit_simulation, context_from_simulation
from repro.core.validators import PROTOCOL_NAMES
from repro.sim import SimulationConfig, run_simulation

SMALL = dict(num_objects=30, num_client_transactions=12, client_txn_length=3)


def small_config(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return SimulationConfig(audit=True, **params)


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_NAMES))
def test_every_protocol_audits_clean(protocol):
    config = small_config(
        protocol=protocol, num_groups=3 if protocol == "group-matrix" else 1
    )
    result = run_simulation(config)
    report = result.audit_report
    assert report is not None
    assert report.ok, report.format()
    assert report.config_hash == config.fingerprint()
    assert set(report.checked) == {
        "control-monotonicity",
        "control-agreement",
        "wrap-gap-safety",
        "validation-soundness",
        "read-coherence",
        "delta-coherence",
        "update-serializability",
        "commit-log-order",
    }


def test_modulo_timestamps_audit_clean():
    result = run_simulation(small_config(modulo_timestamps=True))
    assert result.audit_report is not None and result.audit_report.ok


def test_cached_run_audits_clean():
    result = run_simulation(small_config(cache_currency_bound=2_000_000.0))
    assert result.audit_report is not None and result.audit_report.ok


def test_audit_records_cycles():
    result = run_simulation(small_config())
    assert result.trace is not None
    assert result.trace.cycles, "audit runs must record broadcast images"
    cycles = [b.cycle for b in result.trace.cycles]
    assert cycles == list(range(1, len(cycles) + 1))


def test_plain_run_does_not_record_cycles():
    config = SimulationConfig(audit=False, **SMALL)
    result = run_simulation(config, collect_trace=True)
    assert result.audit_report is None
    assert result.trace is not None and not result.trace.cycles
    # collect_trace still supports post-hoc auditing (minus cycle checks)
    report = audit_simulation(result)
    assert report.ok, report.format()


def test_traceless_run_raises_with_guidance():
    result = run_simulation(SimulationConfig(audit=False, **SMALL))
    assert result.trace is None
    with pytest.raises(ValueError, match="audit=True"):
        context_from_simulation(result)


def test_fingerprint_is_stable_and_field_sensitive():
    a = SimulationConfig(**SMALL)
    b = SimulationConfig(**SMALL)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != a.replace(seed=a.seed + 1).fingerprint()
