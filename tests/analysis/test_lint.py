"""Tests for the repo-specific lint pass (repro.analysis.lint).

Fixture files live outside the package tree, so every rule applies to
them (scope rules only narrow inside ``repro/``); each fixture violates
exactly one rule and declares ``__all__`` so REP005 stays quiet.
"""

import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import collect_files, lint_file, lint_paths, main
from repro.analysis.rules import RULES

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src" / "repro")

FIXTURES = {
    "REP001": '''\
__all__ = []
import time

def stamp():
    return time.time()
''',
    "REP002": '''\
__all__ = []
import random

def pick():
    return random.random()
''',
    "REP003": '''\
__all__ = []

def poke(matrix):
    matrix._c[0, 0] = 99
''',
    "REP004": '''\
__all__ = []

def close_enough(x):
    return x == 0.25
''',
    "REP005": '''\
def helper():
    return 1
''',
    "REP006": '''\
__all__ = []

class Tick:
    pass

def process(sim):
    while True:
        yield Tick()
''',
    "REP008": '''\
__all__ = []

def snapshot(self):
    return [c.state for c in self.clients]
''',
    "REP009": '''\
__all__ = []

def fan_out(pool, simulation):
    return pool.submit(run_one, simulation)
''',
    "REP010": '''\
__all__ = []

def debug(state):
    print(state)
''',
}


def write_fixture(tmp_path: Path, name: str, source: str) -> str:
    path = tmp_path / name
    path.write_text(source)
    return str(path)


#: fixtures that trip more than their own rule: out-of-tree files are in
#: scope for every rule, REP007 is REP002 widened to the whole tree, and
#: REP010 re-reports REP001's wall-clock reads (plus print) in its scopes
EXPECTED_RULES = {
    "REP001": {"REP001", "REP010"},
    "REP002": {"REP002", "REP007"},
}


class TestRules:
    def test_each_fixture_trips_exactly_its_rule(self, tmp_path):
        for rule_id, source in FIXTURES.items():
            path = write_fixture(tmp_path, f"fixture_{rule_id.lower()}.py", source)
            findings = lint_file(path)
            expected = EXPECTED_RULES.get(rule_id, {rule_id})
            assert {f.rule for f in findings} == expected, (
                f"{rule_id}: got {[f.format() for f in findings]}"
            )

    def test_findings_are_structured(self, tmp_path):
        path = write_fixture(tmp_path, "wallclock.py", FIXTURES["REP001"])
        finding = lint_file(path)[0]
        assert finding.rule == "REP001"
        assert finding.path == path
        assert finding.line == 5
        assert "time.time" in finding.message
        assert finding.format().startswith(f"{path}:5:")

    def test_numpy_global_rng_flagged(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "nprng.py",
            "__all__ = []\nimport numpy as np\n\n\ndef draw():\n"
            "    return np.random.rand(3)\n",
        )
        assert {f.rule for f in lint_file(path)} == {"REP002", "REP007"}

    def test_seeded_rng_not_flagged(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "seeded.py",
            "__all__ = []\nimport random\nimport numpy as np\n\n\n"
            "def draw(seed):\n"
            "    rng = random.Random(seed)\n"
            "    gen = np.random.default_rng(seed)\n"
            "    return rng.random() + gen.random()\n",
        )
        assert lint_file(path) == []

    def test_owned_private_attribute_not_flagged(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "owned.py",
            "__all__ = []\n\n\nclass Box:\n"
            "    def __init__(self):\n"
            "        self._items = []\n\n"
            "    def copy(self):\n"
            "        out = Box()\n"
            "        out._items = list(self._items)\n"
            "        return out\n",
        )
        assert lint_file(path) == []

    def test_noqa_suppresses_specific_rule(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "suppressed.py",
            "__all__ = []\nimport time\n\n\ndef stamp():\n"
            "    return time.time()  # noqa: REP001,REP010\n",
        )
        assert lint_file(path) == []

    def test_noqa_other_rule_does_not_suppress(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "wrongnoqa.py",
            "__all__ = []\nimport time\n\n\ndef stamp():\n"
            "    return time.time()  # noqa: REP004\n",
        )
        assert {f.rule for f in lint_file(path)} == {"REP001", "REP010"}

    def test_allow_alloc_suppresses_hot_loop_allocation(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_alloc.py",
            "__all__ = []\n\n\nclass Tick:\n    pass\n\n\n"
            "def process(sim):\n"
            "    while True:\n"
            "        yield Tick()  # rep: allow-alloc\n",
        )
        assert lint_file(path) == []

    def test_hoisted_event_not_flagged(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "hoisted.py",
            "__all__ = []\n\n\nclass Tick:\n    pass\n\n\n"
            "def process(sim):\n"
            "    tick = Tick()\n"
            "    while True:\n"
            "        yield tick\n",
        )
        assert lint_file(path) == []

    def test_non_generator_loop_not_flagged(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "plain_loop.py",
            "__all__ = []\n\n\nclass Tick:\n    pass\n\n\n"
            "def spin():\n"
            "    while True:\n"
            "        t = Tick()\n"
            "        if t:\n"
            "            return t\n",
        )
        assert lint_file(path) == []

    def test_raised_exception_in_hot_loop_not_flagged(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "raising.py",
            "__all__ = []\n\n\n"
            "def process(sim):\n"
            "    while True:\n"
            "        yield sim.step()\n"
            "        if sim.done:\n"
            "            raise RuntimeError('done')\n",
        )
        assert lint_file(path) == []

    def test_scoped_rules_skip_out_of_scope_package_files(self):
        wallclock = next(r for r in RULES if r.rule_id == "REP001")
        assert wallclock.applies_to("src/repro/sim/engine.py")
        assert not wallclock.applies_to("src/repro/experiments/cli.py")
        assert wallclock.applies_to("tests/analysis/fixture.py")

    def test_rep007_covers_tree_outside_kernel_scopes(self):
        anywhere = next(r for r in RULES if r.rule_id == "REP007")
        # REP002's kernel scopes stay REP002's: no double-reporting
        assert not anywhere.applies_to("src/repro/sim/processes.py")
        assert not anywhere.applies_to("src/repro/core/model.py")
        # ...but the rest of the tree is now covered
        assert anywhere.applies_to("src/repro/experiments/figures.py")
        assert anywhere.applies_to("src/repro/analysis/consistency/explore.py")
        assert anywhere.applies_to("tests/analysis/fixture.py")

    def test_allow_unseeded_suppresses_rep007_only(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_unseeded.py",
            "__all__ = []\nimport random\n\n\ndef pick():\n"
            "    return random.random()  # rep: allow-unseeded\n",
        )
        # the escape comment quiets REP007; REP002 still reports the draw
        assert {f.rule for f in lint_file(path)} == {"REP002"}

    def test_rep010_scoped_to_sim_and_server(self):
        side_channel = next(r for r in RULES if r.rule_id == "REP010")
        assert side_channel.applies_to("src/repro/sim/processes.py")
        assert side_channel.applies_to("src/repro/server/engine.py")
        # the obs layer is the sanctioned home for wall-clock reads, and
        # the CLIs/benchmarks legitimately print
        assert not side_channel.applies_to("src/repro/obs/profiler.py")
        assert not side_channel.applies_to("src/repro/experiments/cli.py")
        assert side_channel.applies_to("tests/analysis/fixture.py")

    def test_allow_wallclock_suppresses_rep010_only(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_wallclock.py",
            "__all__ = []\nimport time\n\n\ndef stamp():\n"
            "    return time.time()  # rep: allow-wallclock\n",
        )
        # the escape comment quiets REP010; REP001 still reports the read
        assert {f.rule for f in lint_file(path)} == {"REP001"}

    def test_rep010_flags_print_with_escape(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_print.py",
            "__all__ = []\n\n\ndef debug(state):\n"
            "    print(state)  # rep: allow-wallclock\n",
        )
        assert lint_file(path) == []

    def test_rep008_scoped_to_shard_hot_paths(self):
        population = next(r for r in RULES if r.rule_id == "REP008")
        assert population.applies_to("src/repro/sim/cohort.py")
        assert population.applies_to("src/repro/sim/shard.py")
        assert population.applies_to("src/repro/sim/analytic.py")
        assert not population.applies_to("src/repro/sim/processes.py")
        assert not population.applies_to("src/repro/experiments/bench.py")
        assert population.applies_to("tests/analysis/fixture.py")

    def test_rep008_generator_expressions_stream(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "streaming.py",
            "__all__ = []\n\n\ndef total(members):\n"
            "    return sum(m.cost for m in members)\n",
        )
        assert lint_file(path) == []

    def test_rep008_non_population_iterables_ignored(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "bounded.py",
            "__all__ = []\n\n\ndef widths(columns):\n"
            "    return [len(c) for c in columns]\n",
        )
        assert lint_file(path) == []

    def test_rep008_flags_dict_and_set_comps_and_attributes(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "percohort.py",
            "__all__ = []\n\n\ndef index(self, survivors):\n"
            "    ids = {c.client_id for c in survivors}\n"
            "    by_id = {c.client_id: c for c in self.readers}\n"
            "    return ids, by_id\n",
        )
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["REP008", "REP008"]
        assert "survivors" in findings[0].message
        assert "readers" in findings[1].message

    def test_allow_client_loop_escape(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_loop.py",
            "__all__ = []\n\n\ndef snapshot(self):\n"
            "    # rep: allow-client-loop — startup scan, runs once\n"
            "    return [c.state for c in self.clients]\n",
        )
        assert lint_file(path) == []

    def test_allow_client_loop_on_same_line(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_inline.py",
            "__all__ = []\n\n\ndef pick(members):\n"
            "    return [m for m in members]  # rep: allow-client-loop\n",
        )
        assert lint_file(path) == []

    def test_rep009_applies_to_the_whole_tree(self):
        pickling = next(r for r in RULES if r.rule_id == "REP009")
        assert pickling.applies_to("src/repro/sim/shard.py")
        assert pickling.applies_to("src/repro/sim/batch.py")
        assert pickling.applies_to("src/repro/experiments/sweeps.py")
        assert pickling.applies_to("tests/analysis/fixture.py")

    def test_rep009_configs_and_handles_may_cross(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "clean_boundary.py",
            "__all__ = []\n\n\ndef fan_out(pool, config, handle, jobs):\n"
            "    futures = [pool.submit(run_one, (config, handle))]\n"
            "    return futures, list(pool.map(run_one, jobs))\n",
        )
        findings = [f for f in lint_file(path) if f.rule == "REP009"]
        assert findings == []

    def test_rep009_catches_state_inside_containers(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "smuggled.py",
            "__all__ = []\nimport pickle\n\n\n"
            "def ship(self, pool, config):\n"
            "    pool.submit(run_one, (config, self.server))\n"
            "    return pickle.dumps(self.state)\n",
        )
        findings = [f for f in lint_file(path) if f.rule == "REP009"]
        assert len(findings) == 2
        assert "server" in findings[0].message
        assert "state" in findings[1].message

    def test_rep009_catches_stateful_class_names(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "classcross.py",
            "__all__ = []\n\n\ndef ship(pool, config):\n"
            "    return pool.submit(run_one, BroadcastSimulation(config))\n",
        )
        findings = [f for f in lint_file(path) if f.rule == "REP009"]
        assert len(findings) == 1
        assert "BroadcastSimulation" in findings[0].message

    def test_allow_pickle_escape(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "allowed_pickle.py",
            "__all__ = []\nimport pickle\n\n\n"
            "def archive(server):\n"
            "    # rep: allow-pickle — quiesced, run already finished\n"
            "    return pickle.dumps(server)\n",
        )
        assert [f for f in lint_file(path) if f.rule == "REP009"] == []


class TestDriver:
    def test_repo_source_is_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], [f.format() for f in findings]

    def test_collect_files_deterministic(self):
        files = collect_files([REPO_SRC])
        assert files == sorted(files)
        assert all(
            f.endswith((".py", ".yaml", ".yml", ".json")) for f in files
        )

    def test_collect_files_includes_scenario_library(self):
        files = collect_files([REPO_SRC])
        yaml_files = [f for f in files if f.endswith((".yaml", ".yml"))]
        assert yaml_files, "scenario library files must be collected"
        assert all("scenarios" in f for f in yaml_files)

    def test_collect_files_skips_data_outside_scenarios(self, tmp_path):
        (tmp_path / "notes.yaml").write_text("a: 1\n")
        (tmp_path / "mod.py").write_text("__all__ = []\n")
        files = collect_files([str(tmp_path)])
        assert files == [str(tmp_path / "mod.py")]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = write_fixture(tmp_path, "clean.py", "__all__ = []\n")
        assert main([clean]) == 0
        dirty = write_fixture(tmp_path, "dirty.py", FIXTURES["REP004"])
        assert main([dirty]) == 1
        out = capsys.readouterr().out
        assert "REP004" in out
        assert main([str(tmp_path / "missing.py")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out

    def test_json_output(self, tmp_path, capsys):
        dirty = write_fixture(tmp_path, "dirty.py", FIXTURES["REP001"])
        assert main(["--json", dirty]) == 1
        out = capsys.readouterr().out
        assert '"rule": "REP001"' in out

    def test_module_invocation_on_repo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", REPO_SRC],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout


GOOD_SCENARIO = """\
format_version: 1
name: lint-fixture
description: a valid scenario for the lint tests
seed: 3
protocols: [f-matrix]
config:
  num_objects: 20
  num_client_transactions: 2
"""

UNSEEDED_SCENARIO = """\
format_version: 1
name: lint-fixture
protocols: [f-matrix]
"""


class TestScenarioFileRule:
    """REP011: scenario data files must validate and name a seed."""

    def _scenario_file(self, tmp_path, text, name="fixture.yaml"):
        root = tmp_path / "scenarios"
        root.mkdir(exist_ok=True)
        path = root / name
        path.write_text(text)
        return str(path)

    def test_valid_scenario_is_clean(self, tmp_path):
        path = self._scenario_file(tmp_path, GOOD_SCENARIO)
        assert lint_file(path) == []

    def test_missing_seed_flagged_at_top(self, tmp_path):
        path = self._scenario_file(tmp_path, UNSEEDED_SCENARIO)
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["REP011"]
        assert "seed" in findings[0].message

    def test_seed_line_is_pinpointed(self, tmp_path):
        bad = GOOD_SCENARIO.replace("seed: 3", 'seed: "three"')
        path = self._scenario_file(tmp_path, bad)
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["REP011"]
        assert findings[0].line == 4  # the seed: line
        assert findings[0].format().startswith(f"{path}:4:")

    def test_unparseable_yaml_flagged(self, tmp_path):
        path = self._scenario_file(tmp_path, "format_version: [unclosed\n")
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["REP011"]

    def test_invalid_json_scenario_flagged(self, tmp_path):
        path = self._scenario_file(tmp_path, "{not json", name="bad.json")
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["REP011"]
        assert "JSON" in findings[0].message

    def test_schema_violation_flagged(self, tmp_path):
        bad = GOOD_SCENARIO + "wokload: {}\n"
        path = self._scenario_file(tmp_path, bad)
        findings = lint_file(path)
        assert [f.rule for f in findings] == ["REP011"]
        assert "unknown top-level key" in findings[0].message

    def test_noqa_suppresses_in_yaml(self, tmp_path):
        bad = UNSEEDED_SCENARIO.replace(
            "name: lint-fixture", "name: lint-fixture  # noqa: REP011"
        )
        # the finding is pinned to line 1 (no seed line to point at);
        # suppress there instead
        bad = "# noqa: REP011\n" + bad
        path = self._scenario_file(tmp_path, bad)
        assert lint_file(path) == []

    def test_main_exit_codes_for_scenario_dirs(self, tmp_path, capsys):
        self._scenario_file(tmp_path, UNSEEDED_SCENARIO)
        assert main([str(tmp_path / "scenarios")]) == 1
        assert "REP011" in capsys.readouterr().out

    def test_shipped_library_is_clean(self):
        library = str(
            Path(REPO_SRC) / "scenarios" / "library"
        )
        findings = lint_paths([library])
        assert findings == [], [f.format() for f in findings]

    def test_python_files_in_scenarios_package_unaffected(self, tmp_path):
        root = tmp_path / "scenarios"
        root.mkdir()
        clean = root / "mod.py"
        clean.write_text("__all__ = []\n")
        assert lint_file(str(clean)) == []
