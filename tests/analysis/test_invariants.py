"""Regression tests: each invariant fires on a hand-built violating trace.

Every test corrupts exactly one aspect of an otherwise-plausible audit
context and asserts that exactly the targeted invariant produces a
structured diagnostic — with the right invariant id, cycle, objects and a
human-readable witness.
"""

import numpy as np
import pytest

from repro.analysis import AuditContext, audit_context, audit_history, invariant_ids
from repro.broadcast.program import BroadcastCycle, ObjectVersion
from repro.core.cycles import ModuloCycles
from repro.core.model import parse_history
from repro.core.validators import ControlSnapshot
from repro.server.database import CommitRecord
from repro.sim.trace import ClientCommitRecord

#: a genuinely inconsistent reader: t4 reads x from t2 (forcing t2 < t4 in
#: every update serialization), yet read-only t1 observes x before t2's
#: write and y after t4's — no position for t1 exists
INCONSISTENT_READER = "r1[x] w2[x] c2 r4[x] w4[y] c4 r1[y] c1"

N = 3  # objects in the synthetic traces


def matrix_cycle(cycle: int, matrix: np.ndarray, writers=None) -> BroadcastCycle:
    """A broadcast image whose slot commit-cycles match the matrix diagonal."""
    versions = tuple(
        ObjectVersion(
            obj=i,
            value=f"v{i}",
            writer=(writers or {}).get(i, "t0" if matrix[i, i] == 0 else f"t{i}"),
            commit_cycle=int(matrix[i, i]),
        )
        for i in range(matrix.shape[0])
    )
    return BroadcastCycle(cycle, versions, ControlSnapshot(cycle, matrix=matrix))


def healthy_matrices():
    """Two consecutive, internally consistent F-Matrix snapshots."""
    m1 = np.zeros((N, N), dtype=np.int64)
    m1[0, 0] = 1  # t-a wrote object 0 at cycle 1
    m2 = m1.copy()
    m2[1, 1] = 2  # t-b wrote object 1 at cycle 2
    m2[0, 1] = 1  # ... having read object 0's current version
    return m1, m2


class TestControlMonotonicity:
    def test_clean_pair_passes(self):
        m1, m2 = healthy_matrices()
        ctx = AuditContext(
            num_objects=N,
            broadcasts=(matrix_cycle(2, m1), matrix_cycle(3, m2)),
        )
        report = audit_context(ctx, invariants=["control-monotonicity"])
        assert report.ok

    def test_corrupted_cell_produces_witnessed_diagnostic(self):
        """Corrupting one control-matrix cell must yield a monotonicity
        diagnostic naming the object and carrying a witness."""
        m1, m2 = healthy_matrices()
        m3 = m2.copy()
        m3[1, 1] = 1  # corruption: object 1's last write regresses 2 -> 1
        ctx = AuditContext(
            num_objects=N,
            broadcasts=(
                matrix_cycle(2, m1),
                matrix_cycle(3, m2),
                matrix_cycle(4, m3),
            ),
        )
        report = audit_context(ctx, invariants=["control-monotonicity"])
        assert not report.ok
        diag = report.violations_of("control-monotonicity")[0]
        assert diag.cycle == 4
        assert 1 in diag.objects
        assert diag.witness is not None
        assert "object 1" in diag.witness
        assert "cycle 2" in diag.witness and "cycle 1" in diag.witness

    def test_future_timestamp_flagged(self):
        m1, _ = healthy_matrices()
        m1[2, 2] = 7  # snapshot frozen at cycle 2 cannot know cycle 7
        ctx = AuditContext(num_objects=N, broadcasts=(matrix_cycle(2, m1),))
        report = audit_context(ctx, invariants=["control-monotonicity"])
        assert not report.ok
        diag = report.violations_of("control-monotonicity")[0]
        assert diag.witness is not None and "7" in diag.witness

    def test_column_must_be_dominated_by_diagonal(self):
        m1, _ = healthy_matrices()
        # C(2,0)=1 > C(0,0) is fine; make C(2,0) exceed the column owner
        m1[2, 0] = 1
        m1[2, 2] = 1
        m1[0, 0] = 0  # now column 0 has an entry above its diagonal
        ctx = AuditContext(num_objects=N, broadcasts=(matrix_cycle(2, m1),))
        report = audit_context(ctx, invariants=["control-monotonicity"])
        assert any(
            "diagonal" in d.message
            for d in report.violations_of("control-monotonicity")
        )

    def test_modulo_encoded_snapshots_are_reanchored(self):
        arithmetic = ModuloCycles(timestamp_bits=3)  # window 8
        m1, m2 = healthy_matrices()
        ctx = AuditContext(
            num_objects=N,
            arithmetic=arithmetic,
            broadcasts=(
                matrix_cycle(2, m1 % 8),
                matrix_cycle(3, m2 % 8),
            ),
        )
        # residues decode back to the absolute cycles: no false violation
        report = audit_context(ctx, invariants=["control-monotonicity"])
        assert report.ok


class TestControlAgreement:
    def test_slot_commit_cycle_must_match_control_info(self):
        m1, _ = healthy_matrices()
        broadcast = matrix_cycle(2, m1)
        # rewrite slot 0 to claim a commit cycle the matrix does not show
        tampered = broadcast.versions[:0] + (
            ObjectVersion(0, "v0", "t-a", commit_cycle=0),
        ) + broadcast.versions[1:]
        ctx = AuditContext(
            num_objects=N,
            broadcasts=(BroadcastCycle(2, tampered, broadcast.snapshot),),
        )
        report = audit_context(ctx, invariants=["control-agreement"])
        assert not report.ok
        diag = report.violations_of("control-agreement")[0]
        assert diag.cycle == 2 and 0 in diag.objects
        assert diag.witness is not None and "object 0" in diag.witness

    def test_vector_protocols_checked_too(self):
        vector = np.array([1, 0, 0], dtype=np.int64)
        versions = (
            ObjectVersion(0, "v", "t-a", commit_cycle=1),
            ObjectVersion(1, "v", "t0", commit_cycle=0),
            ObjectVersion(2, "v", "t0", commit_cycle=4),  # disagrees
        )
        broadcast = BroadcastCycle(5, versions, ControlSnapshot(5, vector=vector))
        ctx = AuditContext(num_objects=N, broadcasts=(broadcast,))
        report = audit_context(ctx, invariants=["control-agreement"])
        assert not report.ok
        assert 2 in report.violations_of("control-agreement")[0].objects


class TestValidationSoundness:
    def test_inconsistent_reader_rejected_with_witness(self):
        history = parse_history(INCONSISTENT_READER)
        report = audit_history(history)
        assert not report.ok
        diag = report.violations_of("validation-soundness")[0]
        assert "t1" in diag.transactions
        assert diag.witness is not None
        # this anomaly is genuine, not APPROX conservatism
        assert "genuinely inconsistent" in diag.message

    def test_example1_is_update_consistent(self):
        # the paper's Example 1 is not globally serializable, yet each
        # read-only transaction fits its own serial order: audit passes
        example_1 = "r1[IBM] w2[IBM] c2 r3[IBM] r3[Sun] w4[Sun] c4 r1[Sun] c1 c3"
        assert audit_history(parse_history(example_1)).ok

    def test_serializable_history_accepted(self):
        history = parse_history("w1[x] c1 r2[x] w2[y] c2 r3[x] r3[y] c3")
        assert audit_history(history).ok


class TestReadCoherence:
    def _client(self, versions, reads, tid="cl0.c1"):
        return ClientCommitRecord(tid=tid, versions=tuple(versions), reads=tuple(reads))

    def test_version_from_the_future_flagged(self):
        client = self._client(
            [ObjectVersion(0, "v", "t-a", commit_cycle=5)], [(0, 3)]
        )
        ctx = AuditContext(num_objects=N, client_commits=(client,))
        report = audit_context(ctx, invariants=["read-coherence"])
        assert not report.ok
        diag = report.violations_of("read-coherence")[0]
        assert diag.witness is not None and "cycle 3" in diag.witness

    def test_unknown_writer_flagged(self):
        log = (CommitRecord("t-a", 1, 1, (0,), ((0, "v"),)),)
        client = self._client(
            [ObjectVersion(0, "v", "t-ghost", commit_cycle=1)], [(0, 2)]
        )
        ctx = AuditContext(num_objects=N, commit_log=log, client_commits=(client,))
        report = audit_context(ctx, invariants=["read-coherence"])
        assert not report.ok
        assert "t-ghost" in report.violations_of("read-coherence")[0].transactions

    def test_phantom_version_contradicting_broadcast_flagged(self):
        m1, _ = healthy_matrices()
        broadcast = matrix_cycle(2, m1, writers={0: "t-a"})
        client = self._client(
            [ObjectVersion(0, "v", "t-other", commit_cycle=1)], [(0, 2)]
        )
        ctx = AuditContext(
            num_objects=N, broadcasts=(broadcast,), client_commits=(client,)
        )
        report = audit_context(ctx, invariants=["read-coherence"])
        assert not report.ok
        assert any(
            "never broadcast" in d.message
            for d in report.violations_of("read-coherence")
        )

    def test_backwards_read_cycles_require_a_cache(self):
        client = self._client(
            [
                ObjectVersion(0, "v", "t0", commit_cycle=0),
                ObjectVersion(1, "v", "t0", commit_cycle=0),
            ],
            [(0, 5), (1, 4)],
        )
        uncached = AuditContext(num_objects=N, client_commits=(client,))
        report = audit_context(uncached, invariants=["read-coherence"])
        assert not report.ok
        cached = AuditContext(
            num_objects=N, client_commits=(client,), cache_enabled=True
        )
        assert audit_context(cached, invariants=["read-coherence"]).ok


class TestDeltaCoherence:
    def test_gap_in_recorded_cycles_restarts_the_stream(self):
        m1, m2 = healthy_matrices()
        # cycle 2 recorded, cycle 4 recorded, cycle 3 is a crash outage's
        # dead air: the revived server's encoder restarts with an anchor
        # and the receiver re-synchronises, so the audit stays clean
        ctx = AuditContext(
            num_objects=N,
            broadcasts=(matrix_cycle(2, m1), matrix_cycle(4, m2)),
        )
        assert audit_context(ctx, invariants=["delta-coherence"]).ok

    def test_consecutive_cycles_roundtrip(self):
        m1, m2 = healthy_matrices()
        ctx = AuditContext(
            num_objects=N,
            broadcasts=(matrix_cycle(2, m1), matrix_cycle(3, m2)),
        )
        assert audit_context(ctx, invariants=["delta-coherence"]).ok


class TestUpdateSerializability:
    def test_cyclic_update_subhistory_witnessed(self):
        history = parse_history("r1[x] r2[y] w1[y] w2[x] c1 c2")
        ctx = AuditContext(history=history)
        report = audit_context(ctx, invariants=["update-serializability"])
        assert not report.ok
        diag = report.violations_of("update-serializability")[0]
        assert {"t1", "t2"} <= set(diag.transactions)
        assert diag.witness is not None


class TestCommitLogOrder:
    def test_duplicate_commit_flagged(self):
        log = (
            CommitRecord("t-a", 1, 1, (), ((0, "v"),)),
            CommitRecord("t-a", 2, 2, (), ((1, "v"),)),
        )
        report = audit_context(
            AuditContext(commit_log=log), invariants=["commit-log-order"]
        )
        assert not report.ok
        assert "t-a" in report.violations_of("commit-log-order")[0].transactions

    def test_backwards_cycles_flagged(self):
        log = (
            CommitRecord("t-a", 5, 1, (), ((0, "v"),)),
            CommitRecord("t-b", 3, 2, (), ((1, "v"),)),
        )
        report = audit_context(
            AuditContext(commit_log=log), invariants=["commit-log-order"]
        )
        assert not report.ok

    def test_non_increasing_seq_flagged(self):
        log = (
            CommitRecord("t-a", 1, 2, (), ((0, "v"),)),
            CommitRecord("t-b", 1, 2, (), ((1, "v"),)),
        )
        report = audit_context(
            AuditContext(commit_log=log), invariants=["commit-log-order"]
        )
        assert not report.ok


class TestRegistry:
    def test_all_expected_invariants_registered(self):
        assert set(invariant_ids()) == {
            "control-monotonicity",
            "control-agreement",
            "wrap-gap-safety",
            "validation-soundness",
            "read-coherence",
            "delta-coherence",
            "update-serializability",
            "commit-log-order",
        }

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            audit_context(AuditContext(), invariants=["no-such-check"])

    def test_report_format_mentions_config_hash(self):
        report = audit_context(AuditContext(), config_hash="abc123def456")
        assert report.ok
        assert "abc123def456" in report.format()


class TestWrapGapSafety:
    def _commit(self, tid, read_cycles):
        return ClientCommitRecord(tid, (), tuple((0, c) for c in read_cycles))

    def test_commit_across_a_wrap_gap_flagged(self):
        ctx = AuditContext(
            arithmetic=ModuloCycles(2),  # window 4
            client_commits=(self._commit("c1", [10, 14]),),
        )
        report = audit_context(ctx, invariants=["wrap-gap-safety"])
        assert not report.ok
        diag = report.violations_of("wrap-gap-safety")[0]
        assert diag.transactions == ("c1",)
        assert "wrap gap" in diag.message
        assert "10..14" in (diag.witness or "")

    def test_span_up_to_window_minus_one_passes(self):
        ctx = AuditContext(
            arithmetic=ModuloCycles(2),  # window 4: spans <= 3 are legal
            client_commits=(self._commit("c1", [10, 13]),),
        )
        assert audit_context(ctx, invariants=["wrap-gap-safety"]).ok

    def test_unbounded_arithmetic_is_vacuous(self):
        ctx = AuditContext(
            client_commits=(self._commit("c1", [1, 5000]),),
        )
        assert audit_context(ctx, invariants=["wrap-gap-safety"]).ok

    def test_modulo_audited_run_checks_it(self):
        # end-to-end: committed spans in a healthy modulo run stay
        # inside the window, so the invariant reports clean
        from repro.sim.config import SimulationConfig
        from repro.sim.simulation import run_simulation

        result = run_simulation(
            SimulationConfig(
                num_objects=20,
                num_client_transactions=20,
                modulo_timestamps=True,
                timestamp_bits=8,
                audit=True,
                seed=5,
            )
        )
        report = result.audit_report
        assert report is not None and "wrap-gap-safety" in report.checked
        assert report.ok


class TestModuloControlChecks:
    def test_residue_mismatch_flagged(self):
        m1, _ = healthy_matrices()
        broadcast = matrix_cycle(2, m1 % 4)
        bad = np.array(broadcast.snapshot.matrix)
        bad[0, 0] = (bad[0, 0] + 1) % 4  # residue no longer matches slot
        corrupted = BroadcastCycle(
            2, broadcast.versions, ControlSnapshot(2, matrix=bad)
        )
        ctx = AuditContext(
            num_objects=N,
            arithmetic=ModuloCycles(2),
            broadcasts=(corrupted,),
        )
        report = audit_context(ctx, invariants=["control-agreement"])
        assert not report.ok
        diag = report.violations_of("control-agreement")[0]
        assert "residue" in diag.message

    def test_version_regression_flagged_under_modulo(self):
        # a recovered server resurrecting an older version: the data
        # slots' absolute commit cycles regress even though every
        # residue stays in range
        m1, m2 = healthy_matrices()
        ctx = AuditContext(
            num_objects=N,
            arithmetic=ModuloCycles(2),
            broadcasts=(matrix_cycle(2, m2 % 4), matrix_cycle(3, m1 % 4)),
        )
        report = audit_context(ctx, invariants=["control-monotonicity"])
        assert not report.ok
        diag = report.violations_of("control-monotonicity")[0]
        assert "decreased" in diag.message

    def test_long_small_window_run_not_false_flagged(self):
        # the regression the modulo-aware checks fix: entries older than
        # one window alias under anchored decoding, which used to
        # produce false violations on long runs with small windows
        arith = ModuloCycles(2)  # window 4
        cycles = []
        m = np.zeros((N, N), dtype=np.int64)
        m[0, 0] = 1  # written once at cycle 1, then never again
        for cycle in range(2, 12):  # ten cycles: far beyond the window
            cycles.append(matrix_cycle(cycle, m % 4))
        ctx = AuditContext(
            num_objects=N, arithmetic=arith, broadcasts=tuple(cycles)
        )
        report = audit_context(
            ctx, invariants=["control-monotonicity", "control-agreement"]
        )
        assert report.ok, report.format()
