"""Tests for the quasi-cache (repro.client.cache)."""

import pytest

from repro.client.cache import QuasiCache
from repro.server.server import BroadcastServer


@pytest.fixture
def broadcast():
    server = BroadcastServer(4, "f-matrix")
    return server.begin_cycle(1)


class TestLookup:
    def test_hit_within_bound(self, broadcast):
        cache = QuasiCache(1000.0)
        cache.insert(broadcast, 0, now=0.0)
        entry = cache.lookup(0, now=500.0)
        assert entry is not None
        assert entry.version.obj == 0
        assert cache.hits == 1

    def test_miss_when_absent(self, broadcast):
        cache = QuasiCache(1000.0)
        assert cache.lookup(0, now=0.0) is None
        assert cache.misses == 1

    def test_expiry_is_local(self, broadcast):
        cache = QuasiCache(1000.0)
        cache.insert(broadcast, 0, now=0.0)
        assert cache.lookup(0, now=1500.0) is None
        assert 0 not in cache

    def test_per_object_bound(self, broadcast):
        cache = QuasiCache(1000.0)
        cache.set_currency_bound(1, 10.0)
        cache.insert(broadcast, 0, now=0.0)
        cache.insert(broadcast, 1, now=0.0)
        assert cache.lookup(0, now=500.0) is not None
        assert cache.lookup(1, now=500.0) is None

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            QuasiCache(-1.0)
        cache = QuasiCache(1.0)
        with pytest.raises(ValueError):
            cache.set_currency_bound(0, -5.0)


class TestEvictionAndCapacity:
    def test_capacity_drops_expired_before_fresh(self, broadcast):
        """Regression: a dead entry must not outlive a fresh one.

        Object 0 carries a tight per-object bound and is long expired by
        the time the cache fills; the old policy still evicted by oldest
        ``cached_at`` — dropping the *fresh* object 0's neighbour is
        wrong when a dead entry is present.
        """
        cache = QuasiCache(1e9, capacity=2)
        cache.set_currency_bound(1, 10.0)
        cache.insert(broadcast, 0, now=0.0)   # fresh forever (default bound)
        cache.insert(broadcast, 1, now=5.0)   # expired after t=15
        cache.insert(broadcast, 2, now=100.0)  # at capacity: 1 is dead
        # the dead entry goes; object 0 — the *oldest* cached_at, which the
        # old policy wrongly evicted — survives
        assert 1 not in cache
        assert 0 in cache and 2 in cache

    def test_capacity_mixed_bounds_evicts_stalest_fresh(self, broadcast):
        """With no expired entry present the old policy still applies."""
        cache = QuasiCache(1e9, capacity=2)
        cache.set_currency_bound(0, 500.0)
        cache.insert(broadcast, 0, now=0.0)
        cache.insert(broadcast, 1, now=10.0)
        cache.insert(broadcast, 2, now=100.0)  # both fresh: oldest goes
        assert 0 not in cache
        assert 1 in cache and 2 in cache

    def test_capacity_evicts_stalest(self, broadcast):
        cache = QuasiCache(1e9, capacity=2)
        cache.insert(broadcast, 0, now=0.0)
        cache.insert(broadcast, 1, now=10.0)
        cache.insert(broadcast, 2, now=20.0)  # evicts object 0
        assert 0 not in cache and 1 in cache and 2 in cache

    def test_reinsert_does_not_evict(self, broadcast):
        cache = QuasiCache(1e9, capacity=2)
        cache.insert(broadcast, 0, now=0.0)
        cache.insert(broadcast, 1, now=10.0)
        cache.insert(broadcast, 0, now=20.0)  # refresh in place
        assert len(cache) == 2 and 1 in cache

    def test_explicit_evict(self, broadcast):
        cache = QuasiCache(1e9)
        cache.insert(broadcast, 0, now=0.0)
        assert cache.evict(0)
        assert not cache.evict(0)

    def test_expire_sweep(self, broadcast):
        cache = QuasiCache(100.0)
        cache.insert(broadcast, 0, now=0.0)
        cache.insert(broadcast, 1, now=50.0)
        assert cache.expire(now=120.0) == 1  # only object 0 is stale
        assert 1 in cache


class TestEntryAsBroadcast:
    def test_presents_cached_cycle(self, broadcast):
        cache = QuasiCache(1e9)
        entry = cache.insert(broadcast, 2, now=0.0)
        bc = entry.as_broadcast()
        assert bc.cycle == 1
        assert bc.version(2).obj == 2
        assert entry.cached_cycle == 1

    def test_other_objects_inaccessible(self, broadcast):
        cache = QuasiCache(1e9)
        entry = cache.insert(broadcast, 2, now=0.0)
        bc = entry.as_broadcast()
        with pytest.raises(Exception):
            _ = bc.version(3)

    def test_objects_below_cached_id_raise_index_error(self, broadcast):
        """Regression: ids below the cached one were padded with ``None``.

        The documented contract is ``IndexError`` at access time; the
        padding used to hand ``None`` back silently, failing later with
        an opaque ``AttributeError`` far from the mis-indexed read.
        """
        cache = QuasiCache(1e9)
        entry = cache.insert(broadcast, 2, now=0.0)
        bc = entry.as_broadcast()
        with pytest.raises(IndexError, match="holds only object 2"):
            bc.version(0)
        with pytest.raises(IndexError, match="read off the air"):
            bc.version(1)

    def test_objects_above_cached_id_raise_index_error(self, broadcast):
        cache = QuasiCache(1e9)
        entry = cache.insert(broadcast, 1, now=0.0)
        with pytest.raises(IndexError, match="holds only object 1"):
            entry.as_broadcast().version(3)
