"""Tests for the high-level client session API (repro.client.session)."""

import pytest

from repro.client.cache import QuasiCache
from repro.client.session import ClientSession, ConsistencyAbort
from repro.core.validators import make_validator
from repro.server.server import BroadcastServer


@pytest.fixture
def server():
    return BroadcastServer(4, "f-matrix")


def session_for(server, cycle=1, protocol="f-matrix", cache=None):
    session = ClientSession(make_validator(protocol), cache=cache)
    session.observe(server.begin_cycle(cycle))
    return session


class TestReadOnly:
    def test_commit_on_clean_exit(self, server):
        session = session_for(server)
        with session.read_only("t") as txn:
            assert txn.read(0) == 0
            assert txn.read(1) == 0
        assert txn.committed and not txn.aborted

    def test_repeat_read_returns_same_value(self, server):
        session = session_for(server)
        with session.read_only() as txn:
            first = txn.read(2)
            assert txn.read(2) == first
        assert len(txn.reads) == 1

    def test_exception_marks_aborted(self, server):
        session = session_for(server)
        bad = session.read_only("bad")
        with pytest.raises(ValueError):
            with bad:
                bad.read(0)
                raise ValueError("application error")
        assert bad.aborted and not bad.committed

    def test_write_rejected_on_read_only(self, server):
        session = session_for(server)
        with session.read_only() as txn:
            txn.read(0)
            with pytest.raises(RuntimeError):
                txn.write(0, 1)

    def test_finished_transaction_is_closed(self, server):
        session = session_for(server)
        with session.read_only() as txn:
            txn.read(0)
        with pytest.raises(RuntimeError):
            txn.read(1)

    def test_requires_observed_broadcast(self):
        session = ClientSession(make_validator("f-matrix"))
        with pytest.raises(RuntimeError):
            with session.read_only() as txn:
                txn.read(0)


class TestConsistencyAbortScenario:
    def test_mixed_generations_rejected(self, server):
        """Read object 0 in cycle 1, then its dependant in cycle 2."""
        session = session_for(server)  # cycle 1
        txn = session.read_only("t")
        txn._validator.begin()
        assert txn.read(0) == 0
        server.commit_update("u1", [], {0: "x"}, cycle=1)
        server.commit_update("u2", [0], {1: "y"}, cycle=1)
        session.observe(server.begin_cycle(2))
        with pytest.raises(ConsistencyAbort):
            txn.read(1)


class TestUpdate:
    def test_submission_roundtrip(self, server):
        session = session_for(server)
        with session.update("bid") as txn:
            current = txn.read(0)
            txn.write(0, (current or 0) + 5)
        outcome = server.submit_client_update(txn.submission())
        assert outcome.committed
        assert server.database.committed(0).value == 5

    def test_read_your_writes(self, server):
        session = session_for(server)
        with session.update() as txn:
            txn.write(3, "local")
            assert txn.read(3) == "local"

    def test_read_only_has_no_submission(self, server):
        session = session_for(server)
        with session.read_only() as txn:
            txn.read(0)
        with pytest.raises(RuntimeError):
            txn.submission()


class TestRetries:
    def test_retry_until_fresh_cycle(self, server):
        session = session_for(server)  # cycle 1

        state = {"cycle": 1, "poisoned": False}

        def body(txn):
            value = txn.read(0)
            if not state["poisoned"]:
                # poison mid-transaction: commit a dependency chain and
                # move the session to the next cycle before the 2nd read
                server.commit_update("u1", [], {0: "x"}, cycle=state["cycle"])
                server.commit_update("u2", [0], {1: "y"}, cycle=state["cycle"])
                state["cycle"] += 1
                session.observe(server.begin_cycle(state["cycle"]))
                state["poisoned"] = True
            return (value, txn.read(1))

        result = session.run_with_retries(body)
        assert session.restarts == 1
        assert result == ("x", "y")  # the retry reads the new generation

    def test_gives_up_eventually(self, server):
        session = session_for(server)

        def body(txn):
            raise ConsistencyAbort("t", 0)

        with pytest.raises(RuntimeError):
            session.run_with_retries(body, max_attempts=3)
        assert session.restarts == 3


class TestWithCache:
    def test_prefetched_read_comes_from_cache(self, server):
        cache = QuasiCache(1e12)
        session = session_for(server, cache=cache)
        session.prefetch(2)
        server.commit_update("u", [], {2: "new"}, cycle=1)
        session.observe(server.begin_cycle(2))
        with session.read_only() as txn:
            # served from the cycle-1 cache entry, not the new broadcast
            assert txn.read(2) == 0
        assert cache.hits == 1

    def test_prefetch_requires_cache(self, server):
        session = session_for(server)
        with pytest.raises(RuntimeError):
            session.prefetch(0)
