"""Tests for client transaction runtimes (repro.client.runtime)."""

import pytest

from repro.client.runtime import (
    ClientUpdateTransactionRuntime,
    ReadOnlyTransactionRuntime,
    TransactionAborted,
)
from repro.core.validators import make_validator
from repro.server.server import BroadcastServer


@pytest.fixture
def server():
    s = BroadcastServer(3, "f-matrix")
    return s


class TestReadOnlyRuntime:
    def test_happy_path(self, server):
        bc = server.begin_cycle(1)
        txn = ReadOnlyTransactionRuntime("t", [0, 2], make_validator("f-matrix"))
        assert txn.next_object == 0
        assert txn.deliver(bc).ok
        assert txn.next_object == 2
        assert txn.deliver(bc).ok
        assert txn.is_done
        assert txn.commit() == ((0, 1), (2, 1))
        assert txn.values == {0: 0, 2: 0}

    def test_needs_objects(self):
        with pytest.raises(ValueError):
            ReadOnlyTransactionRuntime("t", [], make_validator("f-matrix"))

    def test_abort_and_restart(self, server):
        bc1 = server.begin_cycle(1)
        txn = ReadOnlyTransactionRuntime("t", [0, 1], make_validator("f-matrix"))
        txn.deliver(bc1)
        server.commit_update("u1", [], {0: "x"}, cycle=1)
        server.commit_update("u2", [0], {1: "y"}, cycle=1)
        bc2 = server.begin_cycle(2)
        outcome = txn.deliver(bc2)
        assert not outcome.ok and txn.aborted
        assert txn.next_object is None
        with pytest.raises(TransactionAborted):
            txn.commit()
        txn.restart()
        assert txn.attempt == 1
        assert not txn.aborted and txn.next_object == 0
        # fresh attempt succeeds within one cycle
        assert txn.deliver(bc2).ok and txn.deliver(bc2).ok
        assert txn.is_done

    def test_deliver_or_raise(self, server):
        bc1 = server.begin_cycle(1)
        txn = ReadOnlyTransactionRuntime("t", [0, 1], make_validator("f-matrix"))
        txn.deliver_or_raise(bc1)
        server.commit_update("u1", [], {0: "x"}, cycle=1)
        server.commit_update("u2", [0], {1: "y"}, cycle=1)
        bc2 = server.begin_cycle(2)
        with pytest.raises(TransactionAborted):
            txn.deliver_or_raise(bc2)

    def test_no_pending_read_errors(self, server):
        bc = server.begin_cycle(1)
        txn = ReadOnlyTransactionRuntime("t", [0], make_validator("f-matrix"))
        txn.deliver(bc)
        with pytest.raises(RuntimeError):
            txn.deliver(bc)

    def test_commit_requires_all_reads(self, server):
        server.begin_cycle(1)
        txn = ReadOnlyTransactionRuntime("t", [0, 1], make_validator("f-matrix"))
        with pytest.raises(RuntimeError):
            txn.commit()

    def test_versions_carry_provenance(self, server):
        server.commit_update("writer", [], {0: 42}, cycle=0)
        bc = server.begin_cycle(1)
        txn = ReadOnlyTransactionRuntime("t", [0], make_validator("f-matrix"))
        txn.deliver(bc)
        (version,) = txn.versions
        assert version.writer == "writer" and version.value == 42


class TestClientUpdateRuntime:
    def test_submission_roundtrip(self, server):
        bc = server.begin_cycle(1)
        txn = ClientUpdateTransactionRuntime("u", [0, 1], make_validator("f-matrix"))
        txn.deliver(bc)
        txn.deliver(bc)
        txn.write(0, "newval")
        sub = txn.submission()
        assert sub.txn == "u"
        assert sub.reads == ((0, 1), (1, 1))
        assert sub.writes == ((0, "newval"),)
        outcome = server.submit_client_update(sub)
        assert outcome.committed
        assert server.database.committed(0).value == "newval"

    def test_submission_requires_reads_done(self, server):
        server.begin_cycle(1)
        txn = ClientUpdateTransactionRuntime("u", [0], make_validator("f-matrix"))
        with pytest.raises(RuntimeError):
            txn.submission()

    def test_write_after_abort_raises(self, server):
        bc1 = server.begin_cycle(1)
        txn = ClientUpdateTransactionRuntime("u", [0, 1], make_validator("f-matrix"))
        txn.deliver(bc1)
        server.commit_update("w1", [], {0: "x"}, cycle=1)
        server.commit_update("w2", [0], {1: "y"}, cycle=1)
        bc2 = server.begin_cycle(2)
        txn.deliver(bc2)
        assert txn.aborted
        with pytest.raises(TransactionAborted):
            txn.write(0, "v")

    def test_restart_discards_local_writes(self, server):
        bc = server.begin_cycle(1)
        txn = ClientUpdateTransactionRuntime("u", [0], make_validator("f-matrix"))
        txn.deliver(bc)
        txn.write(0, "local")
        txn.restart()
        assert txn.writes == {}


class TestStalenessGuard:
    def _runtime(self, window=4):
        return ReadOnlyTransactionRuntime(
            "t", [0, 1], make_validator("f-matrix"), staleness_window=window
        )

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            self._runtime(window=0)

    def test_gap_within_window_commits(self, server):
        txn = self._runtime(window=4)
        txn.deliver(server.begin_cycle(1))
        txn.deliver(server.begin_cycle(4))  # heard-gap 3 < window
        assert txn.is_done and not txn.aborted

    def test_rejoin_after_long_doze_aborts_stale(self, server):
        txn = self._runtime(window=4)
        outcome = txn.deliver(server.begin_cycle(1))
        assert outcome.ok and not outcome.stale
        # the radio was off for >= window cycles: the re-anchored control
        # entries are ambiguous relative to the in-flight first read
        stale = txn.deliver(server.begin_cycle(6))
        assert not stale.ok and stale.stale and txn.aborted

    def test_span_beyond_window_aborts_even_if_heard(self, server):
        txn = self._runtime(window=4)
        txn.deliver(server.begin_cycle(1))
        for cycle in range(2, 6):
            server.begin_cycle(cycle)
        # the client heard every cycle (no doze gap), so only the
        # transaction's total span trips the guard
        txn.last_heard_cycle = 5
        out = txn.deliver(server.begin_cycle(6))
        assert not out.ok and out.stale

    def test_no_in_flight_reads_never_stale(self, server):
        txn = self._runtime(window=4)
        # first delivery after a long silence: nothing validated yet, so
        # nothing can be stale — the read proceeds
        server.begin_cycle(1)
        out = txn.deliver(server.begin_cycle(9))
        assert out.ok and not out.stale

    def test_last_heard_survives_restart(self, server):
        txn = self._runtime(window=4)
        txn.deliver(server.begin_cycle(1))
        stale = txn.deliver(server.begin_cycle(6))
        assert stale.stale
        txn.restart()
        assert txn.last_heard_cycle == 6
        # the restarted attempt reads fresh state and commits
        out = txn.deliver(server.begin_cycle(7))
        assert out.ok

    def test_disabled_by_default(self, server):
        txn = ReadOnlyTransactionRuntime("t", [0, 1], make_validator("f-matrix"))
        txn.deliver(server.begin_cycle(1))
        out = txn.deliver(server.begin_cycle(500))
        assert out.ok and not out.stale
