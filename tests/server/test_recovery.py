"""Recovery regressions (repro.server.recovery, BroadcastServer.restore_from).

The core OCC-replay equivalence lives in tests/server/test_occ.py; this
file pins the crash-recovery behaviours the fault injection relies on:
quiescent cycles surviving recovery, the durable cycle mark, and
swapping a revived server's state into the live object.
"""

import numpy as np
import pytest

from repro.server.database import Database
from repro.server.recovery import recover_server
from repro.server.server import BroadcastServer


def _crashed_server(protocol="f-matrix"):
    server = BroadcastServer(5, protocol)
    server.begin_cycle(1)
    server.commit_update("s1", [0], {1: "a", 2: "b"})
    server.begin_cycle(2)
    server.commit_update("s2", [1], {0: "c"})
    # cycles 3-5 are quiescent: broadcast happened, nothing committed
    for cycle in (3, 4, 5):
        server.begin_cycle(cycle)
    return server


class TestQuiescentCycleRecovery:
    def test_database_source_restores_quiescent_cycles(self):
        crashed = _crashed_server()
        revived = recover_server(crashed.database, 5, "f-matrix")
        # the regression: defaulting to the last *commit* cycle (2) would
        # make the revived server re-issue cycles 3-5
        assert revived.current_cycle == 5
        with pytest.raises(ValueError):
            revived.begin_cycle(5)
        revived.begin_cycle(6)

    def test_bare_log_falls_back_to_last_commit_cycle(self):
        crashed = _crashed_server()
        revived = recover_server(crashed.database.commit_log, 5)
        assert revived.current_cycle == 2  # documented lossy fallback

    def test_explicit_cycle_wins_over_database_mark(self):
        crashed = _crashed_server()
        revived = recover_server(crashed.database, 5, current_cycle=9)
        assert revived.current_cycle == 9

    def test_recovered_database_carries_the_cycle_mark(self):
        crashed = _crashed_server()
        revived = recover_server(crashed.database, 5, "f-matrix")
        assert revived.database.last_broadcast_cycle == 5
        # a second crash+recovery of the revived server loses nothing
        again = recover_server(revived.database, 5, "f-matrix")
        assert again.current_cycle == 5


class TestBroadcastCycleMark:
    def test_begin_cycle_records_the_mark(self):
        server = BroadcastServer(3, "r-matrix")
        assert server.database.last_broadcast_cycle == 0
        server.begin_cycle(1)
        server.begin_cycle(2)
        assert server.database.last_broadcast_cycle == 2

    def test_mark_may_not_regress(self):
        database = Database(3)
        database.record_broadcast_cycle(4)
        database.record_broadcast_cycle(4)  # idempotent re-record is fine
        with pytest.raises(ValueError):
            database.record_broadcast_cycle(3)


class TestRestoreFrom:
    def test_adopts_revived_state_in_place(self):
        crashed = _crashed_server()
        revived = recover_server(crashed.database, 5, "f-matrix")
        live = BroadcastServer(5, "f-matrix")  # stands in for the dead one
        live.restore_from(revived)
        assert live.current_cycle == 5
        assert np.array_equal(live.matrix.array, crashed.matrix.array)
        b1 = crashed.begin_cycle(6)
        b2 = live.begin_cycle(6)
        assert np.array_equal(b1.snapshot.matrix, b2.snapshot.matrix)
        assert b1.versions == b2.versions

    def test_protocol_mismatch_rejected(self):
        live = BroadcastServer(5, "f-matrix")
        other = BroadcastServer(5, "r-matrix")
        with pytest.raises(ValueError, match="cannot restore"):
            live.restore_from(other)

    def test_size_mismatch_rejected(self):
        live = BroadcastServer(5, "f-matrix")
        other = BroadcastServer(6, "f-matrix")
        with pytest.raises(ValueError, match="objects"):
            live.restore_from(other)
