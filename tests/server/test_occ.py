"""Tests for the OCC executor (repro.server.occ) and recovery
(repro.server.recovery)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.serialgraph import conflict_graph, is_conflict_serializable
from repro.server.database import Database
from repro.server.occ import OCCExecutor
from repro.server.recovery import recover_server
from repro.server.server import BroadcastServer
from repro.server.twopl import TransactionProgram, TwoPLExecutor


def program(tid, *steps):
    return TransactionProgram(tid, tuple(steps))


class TestOCCBasics:
    def test_single_transaction(self):
        db = Database(2)
        result = OCCExecutor(db).run([program("t1", ("r", 0), ("w", 1))])
        assert result.commit_order == ("t1",)
        assert db.committed(1).writer == "t1"

    def test_own_writes_visible(self):
        db = Database(1)
        executor = OCCExecutor(db, value_fn=lambda t, o, a: "mine")
        result = executor.run([program("t1", ("w", 0), ("r", 0))])
        assert result.read_values["t1"][0] == "mine"

    def test_stale_reader_restarts(self):
        # t1 reads 0 then waits; t2 blind-writes 0 and commits first;
        # round-robin makes t1 validate after t2's commit -> restart
        db = Database(2)
        result = OCCExecutor(db).run(
            [
                program("t1", ("r", 0), ("r", 1)),
                program("t2", ("w", 0)),
            ]
        )
        assert result.restarts["t1"] >= 1
        assert set(result.commit_order) == {"t1", "t2"}

    def test_blind_writers_never_restart(self):
        db = Database(3)
        result = OCCExecutor(db).run(
            [program(f"t{k}", ("w", k % 3)) for k in range(5)]
        )
        assert all(r == 0 for r in result.restarts.values())

    def test_duplicate_tids_rejected(self):
        with pytest.raises(ValueError):
            OCCExecutor(Database(1)).run(
                [program("t", ("r", 0)), program("t", ("r", 0))]
            )


class TestOCCSerializability:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_interleavings_serializable(self, seed):
        rng = random.Random(seed)
        db = Database(4)
        programs = [
            program(f"t{t}", *[
                ("r" if rng.random() < 0.5 else "w", obj)
                for obj in rng.sample(range(4), rng.randint(1, 4))
            ])
            for t in range(5)
        ]
        result = OCCExecutor(db).run(programs, rng=rng)
        assert is_conflict_serializable(result.history)
        assert len(result.commit_order) == 5

    @pytest.mark.parametrize("seed", range(8))
    def test_commit_order_is_serialization_order(self, seed):
        rng = random.Random(seed + 50)
        db = Database(3)
        programs = [
            program(f"t{t}", *[
                ("r" if rng.random() < 0.5 else "w", obj)
                for obj in rng.sample(range(3), rng.randint(1, 3))
            ])
            for t in range(4)
        ]
        result = OCCExecutor(db).run(programs, rng=rng)
        graph = conflict_graph(result.history)
        position = {tid: i for i, tid in enumerate(result.commit_order)}
        for src, dst in graph.edges:
            assert position[src] < position[dst]

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_property_occ_vs_twopl_same_guarantee(self, data):
        num_objects = data.draw(st.integers(2, 4))
        programs = []
        for t in range(data.draw(st.integers(2, 4))):
            objs = data.draw(
                st.lists(st.integers(0, num_objects - 1), min_size=1,
                         max_size=3, unique=True)
            )
            steps = tuple(
                ("r" if data.draw(st.booleans()) else "w", obj) for obj in objs
            )
            programs.append(TransactionProgram(f"t{t}", steps))
        seed = data.draw(st.integers(0, 1000))
        for executor_cls in (OCCExecutor, TwoPLExecutor):
            result = executor_cls(Database(num_objects)).run(
                programs, rng=random.Random(seed)
            )
            assert is_conflict_serializable(result.history)


class TestRecovery:
    def _crashed_server(self, protocol="f-matrix"):
        server = BroadcastServer(5, protocol)
        server.begin_cycle(1)
        server.commit_update("s1", [0], {1: "a", 2: "b"})
        server.begin_cycle(2)
        server.commit_update("s2", [1], {0: "c"})
        server.commit_update("s3", [], {4: "d"})
        server.begin_cycle(3)
        return server

    def test_state_identical_after_replay(self):
        crashed = self._crashed_server()
        revived = recover_server(
            crashed.database.commit_log, 5, "f-matrix",
            current_cycle=crashed.current_cycle,
        )
        assert np.array_equal(revived.matrix.array, crashed.matrix.array)
        assert np.array_equal(revived.vector.array, crashed.vector.array)
        for obj in range(5):
            assert revived.database.committed(obj) == crashed.database.committed(obj)
        assert revived.current_cycle == crashed.current_cycle

    def test_snapshots_identical_after_recovery(self):
        crashed = self._crashed_server()
        revived = recover_server(
            crashed.database.commit_log, 5, "f-matrix",
            current_cycle=crashed.current_cycle,
        )
        b1 = crashed.begin_cycle(4)
        b2 = revived.begin_cycle(4)
        assert np.array_equal(b1.snapshot.matrix, b2.snapshot.matrix)
        assert b1.versions == b2.versions

    def test_default_cycle_is_last_commit(self):
        crashed = self._crashed_server()
        revived = recover_server(crashed.database.commit_log, 5)
        assert revived.current_cycle == 2  # s2/s3 committed in cycle 2

    def test_vector_protocol_recovery(self):
        crashed = self._crashed_server(protocol="r-matrix")
        revived = recover_server(crashed.database.commit_log, 5, "r-matrix")
        assert np.array_equal(revived.vector.array, crashed.vector.array)

    def test_commit_log_preserved_through_recovery(self):
        crashed = self._crashed_server()
        revived = recover_server(crashed.database.commit_log, 5)
        assert [r.txn for r in revived.database.commit_log] == ["s1", "s2", "s3"]
