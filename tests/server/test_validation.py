"""Tests for client-update validation (repro.server.validation)."""

from repro.core.group_matrix import LastWriteVector
from repro.server.validation import BackwardValidator, UpdateSubmission


def submission(txn="u1", reads=(), writes=((0, "v"),)):
    return UpdateSubmission(txn, tuple(reads), tuple(writes))


class TestBackwardValidator:
    def test_fresh_reads_commit(self):
        vec = LastWriteVector(3)
        validator = BackwardValidator(vec)
        outcome = validator.validate(
            submission(reads=((0, 1), (1, 1))), current_cycle=1
        )
        assert outcome.committed and outcome.conflicts == ()

    def test_stale_read_rejected(self):
        vec = LastWriteVector(3)
        vec.apply_commit(2, [], [0])  # object 0 overwritten at cycle 2
        validator = BackwardValidator(vec)
        outcome = validator.validate(
            submission(reads=((0, 2), (1, 2))), current_cycle=3
        )
        assert not outcome.committed
        assert outcome.conflicts == (0,)

    def test_same_cycle_overwrite_rejected(self):
        """A commit during the cycle the client read from is invisible to
        the client — the read is stale even though the cycles match."""
        vec = LastWriteVector(1)
        vec.apply_commit(5, [], [0])
        validator = BackwardValidator(vec)
        outcome = validator.validate(submission(reads=((0, 5),)), current_cycle=5)
        assert not outcome.committed

    def test_blind_writer_always_commits(self):
        vec = LastWriteVector(1)
        vec.apply_commit(9, [], [0])
        validator = BackwardValidator(vec)
        outcome = validator.validate(submission(reads=()), current_cycle=9)
        assert outcome.committed

    def test_all_conflicts_reported(self):
        vec = LastWriteVector(3)
        vec.apply_commit(4, [], [0, 2])
        validator = BackwardValidator(vec)
        outcome = validator.validate(
            submission(reads=((0, 3), (1, 3), (2, 3))), current_cycle=4
        )
        assert outcome.conflicts == (0, 2)


class TestUpdateSubmission:
    def test_sets(self):
        sub = submission(reads=((3, 1), (5, 2)), writes=((3, "a"), (7, "b")))
        assert sub.read_set == (3, 5)
        assert sub.write_set == (3, 7)
