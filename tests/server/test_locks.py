"""Tests for the lock manager (repro.server.locks)."""

import pytest

from repro.server.locks import DeadlockError, LockManager, LockMode

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


class TestGranting:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.acquire("a", 1, S)
        assert lm.acquire("b", 1, S)
        assert lm.holds("a", 1, S) and lm.holds("b", 1, S)

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        assert lm.acquire("a", 1, X)
        assert not lm.acquire("b", 1, S)

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        assert lm.acquire("a", 1, S)
        assert not lm.acquire("b", 1, X)

    def test_reentrant(self):
        lm = LockManager()
        assert lm.acquire("a", 1, X)
        assert lm.acquire("a", 1, X)
        assert lm.acquire("a", 1, S)  # X covers S

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        assert lm.acquire("a", 1, S)
        assert lm.acquire("a", 1, X)
        assert lm.holds("a", 1, X)

    def test_upgrade_blocked_by_other_sharer(self):
        lm = LockManager()
        assert lm.acquire("a", 1, S)
        assert lm.acquire("b", 1, S)
        assert not lm.acquire("a", 1, X)

    def test_fifo_fairness(self):
        # b queued for X; c's later S request must not starve b
        lm = LockManager()
        assert lm.acquire("a", 1, S)
        assert not lm.acquire("b", 1, X)
        assert not lm.acquire("c", 1, S)
        granted = lm.release_all("a")
        assert ("b", 1) in granted
        assert lm.holds("b", 1, X)
        assert not lm.holds("c", 1, S)


class TestRelease:
    def test_release_grants_waiters(self):
        lm = LockManager()
        lm.acquire("a", 1, X)
        lm.acquire("b", 1, S)
        lm.acquire("c", 1, S)
        granted = lm.release_all("a")
        assert set(granted) == {("b", 1), ("c", 1)}  # both sharers drain

    def test_release_clears_queue_entries(self):
        lm = LockManager()
        lm.acquire("a", 1, X)
        lm.acquire("b", 1, X)
        lm.release_all("b")  # b gives up while queued
        granted = lm.release_all("a")
        assert granted == []

    def test_release_unknown_txn_harmless(self):
        lm = LockManager()
        assert lm.release_all("ghost") == []


class TestDeadlock:
    def test_simple_cycle_detected(self):
        lm = LockManager()
        lm.acquire("a", 1, X)
        lm.acquire("b", 2, X)
        assert not lm.acquire("a", 2, X)  # a waits on b
        with pytest.raises(DeadlockError) as err:
            lm.acquire("b", 1, X)  # b waits on a: cycle
        assert {err.value.victim} <= {"a", "b"}

    def test_victim_is_youngest(self):
        lm = LockManager()
        lm.register("a")  # older
        lm.register("b")
        lm.acquire("a", 1, X)
        lm.acquire("b", 2, X)
        lm.acquire("a", 2, X)
        with pytest.raises(DeadlockError) as err:
            lm.acquire("b", 1, X)
        assert err.value.victim == "b"

    def test_three_way_cycle(self):
        lm = LockManager()
        for txn, obj in (("a", 1), ("b", 2), ("c", 3)):
            lm.acquire(txn, obj, X)
        lm.acquire("a", 2, X)
        lm.acquire("b", 3, X)
        with pytest.raises(DeadlockError) as err:
            lm.acquire("c", 1, X)
        assert len(set(err.value.cycle)) == 3

    def test_no_false_positives(self):
        lm = LockManager()
        lm.acquire("a", 1, X)
        assert not lm.acquire("b", 1, X)
        assert not lm.acquire("c", 1, X)  # chain, not cycle
        graph = lm.waits_for()
        assert "a" not in graph
