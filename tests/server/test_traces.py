"""Tests for recordable workload traces (repro.server.traces)."""

import pytest

from repro.server.traces import TraceWorkload, WorkloadTrace, record_trace
from repro.server.workload import ClientWorkload


class TestWorkloadTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadTrace(0, ((0,),))
        with pytest.raises(ValueError):
            WorkloadTrace(4, ())
        with pytest.raises(ValueError):
            WorkloadTrace(4, ((),))
        with pytest.raises(ValueError):
            WorkloadTrace(4, ((0, 0),))
        with pytest.raises(ValueError):
            WorkloadTrace(4, ((5,),))

    def test_save_load_roundtrip(self, tmp_path):
        trace = WorkloadTrace(6, ((0, 1), (3, 2, 5)), description="demo")
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded == trace
        assert loaded.description == "demo"

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError):
            WorkloadTrace.load(path)


class TestRecordTrace:
    def test_records_generator_output(self):
        generator = ClientWorkload(10, length=3, seed=4)
        trace = record_trace(generator, 5)
        assert len(trace) == 5
        assert trace.num_objects == 10
        # replaying from the same seed reproduces the recorded sets
        again = ClientWorkload(10, length=3, seed=4)
        for read_set in trace.read_sets:
            assert read_set == tuple(again.next_transaction()[1])

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            record_trace(ClientWorkload(10), 0)


class TestTraceWorkload:
    def test_replays_in_order(self):
        trace = WorkloadTrace(6, ((0, 1), (2, 3), (4, 5)))
        replay = TraceWorkload(trace)
        assert replay.next_read_set() == (0, 1)
        assert replay.next_read_set() == (2, 3)
        tid, objs = replay.next_transaction()
        assert objs == (4, 5) and tid == "c3"

    def test_wraps_around(self):
        trace = WorkloadTrace(4, ((0,), (1,)))
        replay = TraceWorkload(trace)
        seen = [replay.next_read_set() for _ in range(5)]
        assert seen == [(0,), (1,), (0,), (1,), (0,)]
        assert replay.wraps == 2

    def test_fair_cross_protocol_comparison(self):
        """The point of traces: identical read sequences across protocols."""
        from repro.sim.config import SimulationConfig
        from repro.sim.simulation import BroadcastSimulation

        generator = ClientWorkload(30, length=3, seed=9)
        trace = record_trace(generator, 15)
        results = {}
        for protocol in ("datacycle", "f-matrix"):
            cfg = SimulationConfig(
                protocol=protocol,
                num_objects=30,
                num_client_transactions=15,
                client_txn_length=3,
                server_txn_length=4,
                object_size_bits=512,
                seed=9,
            )
            sim = BroadcastSimulation(
                cfg,
                collect_trace=True,
                client_workloads=[TraceWorkload(trace)],
            )
            results[protocol] = sim.run()
        # both protocols processed the same transactions' read sets
        for a, b in zip(
            results["datacycle"].trace.client_commits,
            results["f-matrix"].trace.client_commits,
        ):
            assert tuple(v.obj for v in a.versions) == tuple(
                v.obj for v in b.versions
            )

    def test_workload_count_validated(self):
        from repro.sim.config import SimulationConfig
        from repro.sim.simulation import BroadcastSimulation

        cfg = SimulationConfig(
            num_objects=10,
            num_client_transactions=3,
            client_txn_length=2,
            server_txn_length=2,
            num_clients=2,
            object_size_bits=256,
        )
        trace = WorkloadTrace(10, ((0, 1),))
        with pytest.raises(ValueError):
            BroadcastSimulation(cfg, client_workloads=[TraceWorkload(trace)])
