"""Tests for the versioned store (repro.server.database)."""

import pytest

from repro.core.model import T0
from repro.server.database import Database


class TestDatabase:
    def test_initial_versions_from_t0(self):
        db = Database(3, initial_value="init")
        v = db.committed(1)
        assert v.value == "init" and v.writer == T0 and v.commit_cycle == 0

    def test_commit_installs_versions(self):
        db = Database(2)
        db.apply_commit("t1", 3, [0], {1: "new"})
        assert db.committed(1).value == "new"
        assert db.committed(1).writer == "t1"
        assert db.committed(1).commit_cycle == 3
        assert db.committed(0).writer == T0  # read did not change it

    def test_commit_log_in_order(self):
        db = Database(2)
        db.apply_commit("a", 1, [], {0: 1})
        db.apply_commit("b", 1, [0], {1: 2})
        log = db.commit_log
        assert [r.txn for r in log] == ["a", "b"]
        assert log[1].commit_seq == 2
        assert log[1].read_set == (0,)
        assert log[1].writes == ((1, 2),)

    def test_two_version_semantics(self):
        """Committed version broadcast while a newer write is staged."""
        db = Database(1)
        db.apply_commit("t1", 1, [], {0: "committed"})
        db.stage_write("t2", 0, "working")
        assert db.committed(0).value == "committed"
        assert db.last_written(0) == ("working", "t2")
        db.apply_commit("t2", 2, [], {0: "working"})
        assert db.committed(0).value == "working"
        assert db.last_written(0) == ("working", "t2")

    def test_discard_writes(self):
        db = Database(1)
        db.stage_write("t1", 0, "dirty")
        db.discard_writes("t1", [0])
        assert db.last_written(0)[1] == T0

    def test_discard_only_own_writes(self):
        db = Database(1)
        db.stage_write("t1", 0, "mine")
        db.discard_writes("t2", [0])
        assert db.last_written(0) == ("mine", "t1")

    def test_snapshot_is_stable(self):
        db = Database(2)
        snap = db.committed_snapshot()
        db.apply_commit("t1", 1, [], {0: "x"})
        assert snap[0].writer == T0

    def test_bounds_checked(self):
        db = Database(2)
        with pytest.raises(IndexError):
            db.stage_write("t", 2, 0)
        with pytest.raises(IndexError):
            db.apply_commit("t", 1, [], {5: 0})
        with pytest.raises(ValueError):
            Database(0)
