"""Tests for workload generators (repro.server.workload)."""

import itertools

import pytest

from repro.server.workload import (
    ClientUpdateWorkload,
    ClientWorkload,
    ServerWorkload,
)


class TestServerWorkload:
    def test_length_and_uniqueness(self):
        wl = ServerWorkload(20, length=8, seed=1)
        for spec in itertools.islice(wl, 50):
            accessed = spec.read_set + spec.write_set
            assert len(accessed) == 8
            assert len(set(accessed)) == 8  # no repeats

    def test_read_probability_extremes(self):
        all_reads = ServerWorkload(10, length=4, read_probability=1.0, seed=2)
        spec = all_reads.next_transaction()
        assert not spec.write_set and not spec.is_update
        all_writes = ServerWorkload(10, length=4, read_probability=0.0, seed=2)
        spec = all_writes.next_transaction()
        assert not spec.read_set and spec.is_update

    def test_read_probability_roughly_respected(self):
        wl = ServerWorkload(40, length=10, read_probability=0.5, seed=3)
        reads = sum(len(s.read_set) for s in itertools.islice(wl, 200))
        assert 800 < reads < 1200  # ~1000 expected

    def test_deterministic_by_seed(self):
        a = [ServerWorkload(10, seed=7).next_transaction() for _ in range(3)]
        b = [ServerWorkload(10, seed=7).next_transaction() for _ in range(3)]
        # fresh generators with the same seed agree
        a2 = ServerWorkload(10, seed=7)
        b2 = ServerWorkload(10, seed=7)
        assert [a2.next_transaction() for _ in range(3)] == [
            b2.next_transaction() for _ in range(3)
        ]

    def test_ids_unique(self):
        wl = ServerWorkload(10, seed=0)
        tids = {wl.next_transaction().tid for _ in range(10)}
        assert len(tids) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerWorkload(4, length=5)
        with pytest.raises(ValueError):
            ServerWorkload(4, length=0)
        with pytest.raises(ValueError):
            ServerWorkload(4, read_probability=1.5)


class TestClientWorkload:
    def test_read_sets(self):
        wl = ClientWorkload(10, length=4, seed=1)
        for _ in range(20):
            tid, objs = wl.next_transaction()
            assert len(objs) == 4 and len(set(objs)) == 4
            assert all(0 <= o < 10 for o in objs)

    def test_uniform_coverage(self):
        wl = ClientWorkload(5, length=1, seed=2)
        seen = {wl.next_read_set()[0] for _ in range(200)}
        assert seen == set(range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientWorkload(3, length=4)
        with pytest.raises(ValueError):
            ClientWorkload(10, access_skew=1.5)
        with pytest.raises(ValueError):
            ClientWorkload(10, hot_fraction=0.0)

    def test_skewed_access_prefers_hot_set(self):
        wl = ClientWorkload(100, length=4, seed=5, access_skew=0.9, hot_fraction=0.1)
        assert wl.hot_set_size == 10
        hot_reads = 0
        total = 0
        for _ in range(200):
            for obj in wl.next_read_set():
                total += 1
                if obj < wl.hot_set_size:
                    hot_reads += 1
        assert hot_reads / total > 0.6  # ~0.9 requested, minus exhaustion

    def test_skewed_reads_still_unique(self):
        wl = ClientWorkload(20, length=5, seed=6, access_skew=0.9, hot_fraction=0.1)
        for _ in range(50):
            objs = wl.next_read_set()
            assert len(set(objs)) == len(objs) == 5

    def test_skew_exhausts_hot_set_gracefully(self):
        # hot set smaller than the transaction length: falls back to cold
        wl = ClientWorkload(10, length=5, seed=7, access_skew=1.0, hot_fraction=0.1)
        objs = wl.next_read_set()
        assert len(set(objs)) == 5


class TestClientUpdateWorkload:
    def test_writes_subset_of_reads_plus_blind(self):
        wl = ClientUpdateWorkload(10, length=4, write_fraction=0.5, seed=1)
        for _ in range(20):
            spec = wl.next_transaction()
            non_blind = [w for w in spec.write_set if w in spec.read_set]
            assert len(non_blind) >= 1

    def test_blind_writes_optional(self):
        wl = ClientUpdateWorkload(
            10, length=2, blind_write_probability=1.0, seed=3
        )
        spec = wl.next_transaction()
        blind = [w for w in spec.write_set if w not in spec.read_set]
        assert len(blind) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientUpdateWorkload(10, write_fraction=0.0)
